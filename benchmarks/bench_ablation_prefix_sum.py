"""Ablation: prefix-sum ("dense datacube") wavelet input (Section 3.2).

The paper states that decomposing the prefix sum of the frequency
signal "significantly improves the accuracy of range-sum queries" over
decomposing the raw sparse frequencies.  This bench builds both
variants from the same sorted value stream at equal budgets and
measures accuracy per query shape.  The effect is exactly where the
paper locates it: on *range-sum* queries (Random / HalfOpen) the
prefix-sum encoding wins by orders of magnitude, while on very narrow
ranges the raw encoding is merely competitive.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.common import make_distribution, make_query_generator
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.synopses.wavelet.raw import RawFrequencyWaveletBuilder
from repro.synopses.wavelet.synopsis import WaveletBuilder
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

BUDGETS = [16, 64, 256]
QUERY_SHAPES = [QueryType.FIXED_LENGTH, QueryType.RANDOM, QueryType.HALF_OPEN]


def _run(scale):
    distribution = make_distribution(
        scale, SpreadDistribution.ZIPF_RANDOM, FrequencyDistribution.ZIPF
    )
    domain = scale.domain
    sorted_values = []
    for value, frequency in zip(distribution.values, distribution.frequencies):
        sorted_values.extend([value] * frequency)

    rows = []
    for budget in BUDGETS:
        prefix_builder = WaveletBuilder(domain, budget)
        raw_builder = RawFrequencyWaveletBuilder(domain, budget)
        for value in sorted_values:
            prefix_builder.add(value)
            raw_builder.add(value)
        prefix_synopsis = prefix_builder.build()
        raw_synopsis = raw_builder.build()
        for query_type in QUERY_SHAPES:
            queries = list(
                make_query_generator(scale, budget).generate(
                    query_type, scale.queries_per_cell, 128
                )
            )
            prefix_errors = ErrorAccumulator(distribution.total_records)
            raw_errors = ErrorAccumulator(distribution.total_records)
            for query in queries:
                true_count = distribution.true_range_count(query.lo, query.hi)
                prefix_errors.add(
                    true_count, prefix_synopsis.estimate(query.lo, query.hi)
                )
                raw_errors.add(true_count, raw_synopsis.estimate(query.lo, query.hi))
            rows.append(
                {
                    "budget": budget,
                    "query_type": query_type.value,
                    "prefix_sum_l1": prefix_errors.metrics().l1_error,
                    "raw_frequency_l1": raw_errors.metrics().l1_error,
                }
            )
    return rows


def bench_ablation_prefix_sum(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))

    # On range-sum shapes the prefix-sum encoding must win at every
    # budget -- and by a wide margin at small budgets.
    for row in rows:
        if row["query_type"] in ("Random", "HalfOpen"):
            assert row["prefix_sum_l1"] < row["raw_frequency_l1"]
    small_budget_wide = [
        r
        for r in rows
        if r["budget"] == BUDGETS[0] and r["query_type"] in ("Random", "HalfOpen")
    ]
    for row in small_budget_wide:
        assert row["prefix_sum_l1"] * 5 < row["raw_frequency_l1"]

    (results_dir / "ablation_prefix_sum.txt").write_text(
        format_table(
            ["budget", "query type", "prefix-sum L1", "raw-frequency L1"],
            [
                [
                    r["budget"],
                    r["query_type"],
                    r["prefix_sum_l1"],
                    r["raw_frequency_l1"],
                ]
                for r in rows
            ],
            title="Ablation — prefix-sum vs. raw-frequency wavelet input",
        )
    )
