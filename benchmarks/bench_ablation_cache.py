"""Ablation: the merged-synopsis cache (Algorithm 2's fast path).

Ingests under NoMerge so dozens of per-component synopses accumulate,
then measures estimator latency cold (cache cleared before every query,
i.e. the per-component combination path) vs. warm (cache retained).
For mergeable types the warm path must be much cheaper; equi-height
histograms cannot be merged, so caching cannot help them -- exactly the
trade-off of Section 3.5.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.common import make_distribution, make_query_generator
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.synopses import SynopsisType
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

NUM_FLUSHES = 32


def _run(scale):
    distribution = make_distribution(
        scale, SpreadDistribution.ZIPF, FrequencyDistribution.ZIPF
    )
    lab = AccuracyLab(
        distribution,
        memtable_capacity=-(-scale.total_records // NUM_FLUSHES),
        seed=scale.seed,
    )
    setups = {
        synopsis_type: lab.add_config(synopsis_type, 256)
        for synopsis_type in (
            SynopsisType.EQUI_WIDTH,
            SynopsisType.EQUI_HEIGHT,
            SynopsisType.WAVELET,
        )
    }
    lab.ingest()
    queries = list(
        make_query_generator(scale).generate(
            QueryType.FIXED_LENGTH, scale.queries_per_cell, 128
        )
    )
    rows = []
    for synopsis_type, setup in setups.items():
        cold = lab.estimation_overhead(setup, queries, cold=True)
        warm = lab.estimation_overhead(setup, queries, cold=False)
        rows.append(
            {
                "synopsis": synopsis_type.value,
                "components": lab.component_count,
                "cold_ms": cold * 1e3,
                "warm_ms": warm * 1e3,
            }
        )
    return rows


def bench_ablation_cache(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))
    by_type = {r["synopsis"]: r for r in rows}
    # Mergeable types answer from the cached merged synopsis: much cheaper.
    for mergeable in ("equi_width", "wavelet"):
        assert by_type[mergeable]["warm_ms"] * 2 < by_type[mergeable]["cold_ms"]
    # Equi-height cannot merge, so the cache cannot shortcut it.
    equi_height = by_type["equi_height"]
    assert equi_height["warm_ms"] > equi_height["cold_ms"] * 0.5

    (results_dir / "ablation_cache.txt").write_text(
        format_table(
            ["synopsis", "components", "cold (ms/query)", "warm (ms/query)"],
            [
                [r["synopsis"], r["components"], r["cold_ms"], r["warm_ms"]]
                for r in rows
            ],
            title="Ablation — merged-synopsis cache (Algorithm 2 fast path)",
        )
    )
