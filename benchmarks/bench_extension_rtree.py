"""Extension bench: the LSM-ified R-tree index (paper §5 future work).

The driver lives in ``repro.eval.experiments.extensions``; this bench
runs it under timing and asserts the two properties the spatial index
exists for: MBR descent prunes the vast majority of pages a full scan
touches, and 2-D statistics piggybacked on the R-tree's component
streams stay accurate through flushes and merges.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.extensions import format_rtree_results, run_rtree


def bench_extension_rtree(benchmark, bench_scale, results_dir):
    row = run_once(benchmark, lambda: run_rtree(bench_scale))
    # MBR descent must prune the vast majority of pages.
    assert row["search_pages_per_query"] * 5 < row["full_scan_pages_per_query"]
    # And the piggybacked 2-D statistics stay accurate.
    assert row["stats_l1_error"] < 0.01

    (results_dir / "extension_rtree.txt").write_text(format_rtree_results(row))
