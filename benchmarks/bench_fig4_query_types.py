"""Figure 4: estimation accuracy across the four query types.

Zipf frequencies, budget 256.  Shape assertion: averaged over spreads
and synopsis types, errors order Point <= FixedLength <= max(HalfOpen,
Random) -- wider ranges return a larger fraction of the dataset, which
the normalised L1 metric emphasises (the paper plots this on a log
scale for the same reason).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig4


def _mean_error(rows, query_type):
    subset = [r for r in rows if r["query_type"] == query_type]
    return sum(r["l1_error"] for r in subset) / len(subset)


def bench_fig4_query_types(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig4.run(bench_scale))
    assert len(rows) == 6 * 3 * 4  # spreads x synopses x query types

    point = _mean_error(rows, "Point")
    fixed = _mean_error(rows, "FixedLength")
    half_open = _mean_error(rows, "HalfOpen")
    random_error = _mean_error(rows, "Random")
    wide = max(half_open, random_error)
    assert point <= fixed + 1e-9
    assert fixed <= wide + 1e-9
    # The gap is orders of magnitude (log-scale in the paper).
    assert point * 10 < wide

    (results_dir / "fig4_query_types.txt").write_text(fig4.format_results(rows))
