"""Figure 6: accuracy (6a) and estimation overhead (6b) vs. the number
of LSM components, at fixed total statistics space.

Uniform frequencies; component counts 8 -> 128; per-component budget =
total budget / K.  Shape assertions: (a) accuracy degrades only mildly
as K grows -- the mean error at K=128 stays within a small multiple of
K=8 rather than exploding; (b) estimation overhead grows with K (more
synopses consulted) but stays sub-millisecond.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig6


def _mean(rows, key, **filters):
    subset = [
        r for r in rows if all(r[k] == v for k, v in filters.items())
    ]
    return sum(r[key] for r in subset) / len(subset)


def bench_fig6_components(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig6.run(bench_scale))
    counts = sorted({r["target_components"] for r in rows})
    assert counts == fig6.DEFAULT_COMPONENT_COUNTS
    # The memtable sizing realises the target count to within one flush.
    for row in rows:
        assert abs(row["components"] - row["target_components"]) <= 1

    # (b) More components -> more per-query combination work.
    overhead_few = _mean(rows, "overhead_ms", target_components=counts[0])
    overhead_many = _mean(rows, "overhead_ms", target_components=counts[-1])
    assert overhead_many > overhead_few
    assert overhead_many < 50.0  # still cheap in absolute terms

    # (a) Accuracy degrades gracefully, not catastrophically.
    error_few = _mean(rows, "l1_error", target_components=counts[0])
    error_many = _mean(rows, "l1_error", target_components=counts[-1])
    assert error_many < max(error_few * 20, 0.05)

    (results_dir / "fig6_components.txt").write_text(fig6.format_results(rows))
