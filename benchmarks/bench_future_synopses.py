"""Extension bench: the paper's future-work synopses in the framework.

Section 5 names two directions this repository implements end to end:
sketch-based summaries for attributes without a sorted order, and
sampling-based statistics.  This bench runs GK sketches and reservoir
samples through the full LSM pipeline on a *non-indexed* attribute --
something the paper's shipped histograms/wavelets cannot do at all --
and reports their accuracy against the ground truth, alongside the
element-budget cost.
"""

from __future__ import annotations

from conftest import run_once

from repro.core import StatisticsConfig, StatisticsManager
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.eval.truth import FrequencyIndex
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads.queries import QueryType, QueryWorkloadGenerator

ATTRIBUTE_DOMAIN = Domain(0, 9_999)
BUDGET = 256
FUTURE_TYPES = [SynopsisType.GK_SKETCH, SynopsisType.RESERVOIR_SAMPLE]


def _documents(total):
    for pk in range(total):
        # `score` is not indexed; its values arrive in PK order, i.e.
        # unsorted by score.
        yield {
            "id": pk,
            "value": pk % 1000,
            "score": (pk * 7919 + pk * pk * 31) % 10_000,
        }


def _run(scale):
    total = scale.total_records
    rows = []
    for synopsis_type in FUTURE_TYPES:
        dataset = Dataset(
            "scores",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**62),
            indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
            memtable_capacity=max(64, total // 16),
        )
        manager = StatisticsManager(StatisticsConfig(synopsis_type, BUDGET))
        manager.attach(dataset)
        manager.register_attribute(dataset, "score", ATTRIBUTE_DOMAIN)
        documents = list(_documents(total))
        for document in documents:
            dataset.insert(document)
        dataset.flush()

        truth = FrequencyIndex(doc["score"] for doc in documents)
        generator = QueryWorkloadGenerator(ATTRIBUTE_DOMAIN, seed=scale.seed)
        for query_type, label in [
            (QueryType.FIXED_LENGTH, "FixedLength(512)"),
            (QueryType.RANDOM, "Random"),
        ]:
            errors = ErrorAccumulator(total)
            for query in generator.generate(
                query_type, scale.queries_per_cell, 512
            ):
                estimate = manager.estimate_attribute(
                    dataset, "score", query.lo, query.hi
                )
                errors.add(truth.count(query.lo, query.hi), estimate)
            rows.append(
                {
                    "synopsis": synopsis_type.value,
                    "query_type": label,
                    "l1_error": errors.metrics().l1_error,
                }
            )
    return rows


def bench_future_synopses(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))
    # Both order-insensitive families must produce usable estimates on
    # the unsorted attribute: single-digit-percent normalised error.
    for row in rows:
        assert row["l1_error"] < 0.05, row

    (results_dir / "future_synopses.txt").write_text(
        format_table(
            ["synopsis", "query type", "normalized L1 error"],
            [[r["synopsis"], r["query_type"], r["l1_error"]] for r in rows],
            title=(
                "Extension — future-work synopses on a NON-indexed "
                f"attribute (budget {BUDGET})"
            ),
        )
    )
