"""Ablation: rebuild-on-merge vs. merging old synopses (Section 3.5).

When components merge, the paper rebuilds the synopsis from scratch
over the merge cursor's stream instead of merging the inputs' synopses,
"alleviat[ing] the propagation of estimation errors during a long chain
of merge operations, where a multiplier effect could be triggered".
This bench simulates a chain of C pairwise merges at a small budget:

* **recompute** -- one synopsis built over the full sorted stream (what
  the merge cursor feeds the builder);
* **chained merge** -- per-chunk synopses combined with ``merge_with``
  step by step, re-thresholding (and losing coefficients) at each step.

Recompute must be at least as accurate.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.common import make_distribution, make_query_generator
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.synopses.wavelet.synopsis import WaveletBuilder
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

CHAIN_LENGTHS = [2, 8, 32]
BUDGET = 32  # small enough that re-thresholding actually loses mass


def _build(domain, values, budget=BUDGET):
    builder = WaveletBuilder(domain, budget)
    for value in values:
        builder.add(value)
    return builder.build()


def _run(scale):
    distribution = make_distribution(
        scale, SpreadDistribution.ZIPF_RANDOM, FrequencyDistribution.ZIPF_RANDOM
    )
    domain = scale.domain
    record_values = sorted(distribution.record_values())
    queries = list(
        make_query_generator(scale).generate(
            QueryType.FIXED_LENGTH, scale.queries_per_cell, 128
        )
    )
    rows = []
    for chain in CHAIN_LENGTHS:
        # Chunks are key ranges, as successive flushed components of a
        # value-ordered load would be after hash partitioning's shuffle
        # is undone by the merge cursor.
        chunk_size = -(-len(record_values) // chain)
        chunks = [
            record_values[i : i + chunk_size]
            for i in range(0, len(record_values), chunk_size)
        ]
        recomputed = _build(domain, record_values)
        chained = _build(domain, chunks[0])
        for chunk in chunks[1:]:
            chained = chained.merge_with(_build(domain, chunk))

        recompute_errors = ErrorAccumulator(distribution.total_records)
        chained_errors = ErrorAccumulator(distribution.total_records)
        for query in queries:
            true_count = distribution.true_range_count(query.lo, query.hi)
            recompute_errors.add(true_count, recomputed.estimate(query.lo, query.hi))
            chained_errors.add(true_count, chained.estimate(query.lo, query.hi))
        rows.append(
            {
                "chain_length": chain,
                "recompute_l1": recompute_errors.metrics().l1_error,
                "chained_merge_l1": chained_errors.metrics().l1_error,
            }
        )
    return rows


def bench_ablation_merge_recompute(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))
    for row in rows:
        # Rebuilding from the merge cursor never loses to chained merging.
        assert row["recompute_l1"] <= row["chained_merge_l1"] + 1e-9
    # And the chained error grows with the chain length (the paper's
    # "multiplier effect").
    assert rows[-1]["chained_merge_l1"] >= rows[0]["chained_merge_l1"]

    (results_dir / "ablation_merge_recompute.txt").write_text(
        format_table(
            ["merge chain", "recompute L1", "chained-merge L1"],
            [
                [r["chain_length"], r["recompute_l1"], r["chained_merge_l1"]]
                for r in rows
            ],
            title=(
                "Ablation — rebuild-on-merge vs. synopsis merging "
                f"(budget {BUDGET})"
            ),
        )
    )
