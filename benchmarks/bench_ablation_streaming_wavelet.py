"""Ablation: streaming (Algorithm 1) vs. classic wavelet decomposition.

The classic algorithm allocates and processes arrays as long as the
domain; Algorithm 1 is O(n logM) in the number of *distinct values*.
On sparse signals over growing domains the classic transform's cost
explodes while the streaming transform's stays flat -- the reason the
paper's framework can summarise 64-bit key domains at all.  Both must
produce identical coefficients, which is asserted on every run.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.eval.reporting import format_table
from repro.synopses.wavelet.classic import classic_decompose, prefix_sum_signal
from repro.synopses.wavelet.streaming import StreamingWaveletTransform

NUM_TUPLES = 500
DOMAIN_LEVELS = [12, 16, 20]


def _sparse_tuples(levels, count=NUM_TUPLES):
    length = 1 << levels
    step = max(1, length // count)
    return [(position, float(position % 7 + 1)) for position in range(0, length, step)]


def _run():
    rows = []
    for levels in DOMAIN_LEVELS:
        tuples = _sparse_tuples(levels)

        started = time.perf_counter()
        transform = StreamingWaveletTransform(levels)
        for position, frequency in tuples:
            transform.add(position, frequency)
        streaming_coefficients = {c.index: c.value for c in transform.finish()}
        streaming_seconds = time.perf_counter() - started

        started = time.perf_counter()
        frequencies = [0.0] * (1 << levels)
        for position, frequency in tuples:
            frequencies[position] = frequency
        classic_coefficients = classic_decompose(
            prefix_sum_signal(frequencies, 1 << levels)
        )
        classic_seconds = time.perf_counter() - started

        # Bit-for-bit agreement between the two algorithms.
        assert streaming_coefficients.keys() == classic_coefficients.keys()
        for index, value in streaming_coefficients.items():
            assert abs(value - classic_coefficients[index]) < 1e-6 * max(
                1.0, abs(value)
            )
        rows.append(
            {
                "domain": 1 << levels,
                "tuples": len(tuples),
                "streaming_ms": streaming_seconds * 1e3,
                "classic_ms": classic_seconds * 1e3,
            }
        )
    return rows


def bench_ablation_streaming_wavelet(benchmark, results_dir):
    rows = run_once(benchmark, _run)
    # Classic cost grows ~linearly with the domain (256x here); the
    # streaming cost must grow far slower (O(n logM), so < ~2x ideally;
    # allow generous scheduler noise).
    classic_growth = rows[-1]["classic_ms"] / rows[0]["classic_ms"]
    streaming_growth = rows[-1]["streaming_ms"] / max(rows[0]["streaming_ms"], 0.1)
    assert classic_growth > 10
    assert streaming_growth < classic_growth / 3
    # At the largest domain the streaming transform must win outright.
    assert rows[-1]["streaming_ms"] < rows[-1]["classic_ms"]

    (results_dir / "ablation_streaming_wavelet.txt").write_text(
        format_table(
            ["domain size", "distinct tuples", "streaming (ms)", "classic (ms)"],
            [
                [r["domain"], r["tuples"], r["streaming_ms"], r["classic_ms"]]
                for r in rows
            ],
            title="Ablation — Algorithm 1 vs. classic full-array decomposition",
        )
    )
