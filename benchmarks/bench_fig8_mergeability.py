"""Figure 8: query-time overhead, Bulkload vs. NoMerge ingestion.

Zipf frequencies, budget 256.  Shape assertions: (1) the NoMerge
configuration answers from many per-component synopses and costs
consistently more estimator time than Bulkload's single synopsis;
(2) both stay sub-millisecond-scale; (3) the bigger effect of
(non-)mergeability is catalog *space* -- NoMerge's catalog is larger by
roughly the component ratio (Section 4.3.5's conclusion).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig8


def bench_fig8_mergeability(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig8.run(bench_scale))
    synopses = sorted({r["synopsis"] for r in rows})
    assert synopses == ["equi_height", "equi_width", "wavelet"]

    for synopsis in synopses:
        subset = [r for r in rows if r["synopsis"] == synopsis]
        bulk = [r for r in subset if r["mode"] == "Bulkload"]
        nomerge = [r for r in subset if r["mode"] == "NoMerge"]
        mean = lambda rows_, key: sum(r[key] for r in rows_) / len(rows_)
        # (1) More components -> more estimator work.
        assert all(r["components"] == 1 for r in bulk)
        assert all(r["components"] > 1 for r in nomerge)
        assert mean(nomerge, "overhead_ms") > mean(bulk, "overhead_ms")
        # (2) Still cheap in absolute terms.
        assert mean(nomerge, "overhead_ms") < 50.0
        # (3) The space effect dominates: catalog grows ~linearly with
        # the component count.
        assert mean(nomerge, "catalog_bytes") > 5 * mean(bulk, "catalog_bytes")

    (results_dir / "fig8_mergeability.txt").write_text(fig8.format_results(rows))
