"""Figure 3: estimation accuracy while varying the synopsis size.

Full grid: {Uniform, Zipf, ZipfRandom} frequencies x six spread
distributions x three synopsis types x budgets 16 -> 1024, FixedLength
(128) queries.  Shape assertions: (1) smooth-CDF cells (Uniform
frequencies x non-random spreads) estimate nearly exactly; (2) wavelet
accuracy improves with budget on skewed spreads; (3) at the largest
budget, wavelets beat or match histograms on the skewed Zipf-family
spreads on average -- the paper's headline accuracy finding.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig3


def _cell(rows, **filters):
    matches = [
        r for r in rows if all(r[key] == value for key, value in filters.items())
    ]
    assert len(matches) == 1, (filters, len(matches))
    return matches[0]


def bench_fig3_synopsis_size(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig3.run(bench_scale))
    assert len(rows) == 3 * 6 * 3 * len(fig3.DEFAULT_BUDGETS)

    # (1) Smooth CDFs are easy even for small synopses.
    for spread in ("Uniform", "Zipf", "ZipfIncreasing"):
        easy = _cell(
            rows,
            frequency="Uniform",
            spread=spread,
            synopsis="wavelet",
            budget=1024,
        )
        assert easy["l1_error"] < 2e-3

    # (2) Error falls with budget for wavelets on skewed spreads.
    for spread in ("Zipf", "CuspMin", "CuspMax", "ZipfRandom"):
        small = _cell(
            rows, frequency="Zipf", spread=spread, synopsis="wavelet", budget=16
        )
        large = _cell(
            rows, frequency="Zipf", spread=spread, synopsis="wavelet", budget=1024
        )
        assert large["l1_error"] <= small["l1_error"] + 1e-9

    # (3) At budget 1024 wavelets match or beat histograms on average
    # over the skewed cells.
    skewed = [
        r
        for r in rows
        if r["budget"] == 1024
        and r["frequency"] == "Zipf"
        and r["spread"] in ("Zipf", "ZipfIncreasing", "CuspMin", "CuspMax")
    ]
    mean = lambda synopsis: sum(
        r["l1_error"] for r in skewed if r["synopsis"] == synopsis
    ) / max(1, sum(1 for r in skewed if r["synopsis"] == synopsis))
    assert mean("wavelet") <= mean("equi_width") + 1e-9
    assert mean("wavelet") <= mean("equi_height") + 1e-9

    (results_dir / "fig3_synopsis_size.txt").write_text(fig3.format_results(rows))
