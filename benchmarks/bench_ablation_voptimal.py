"""Ablation: why the framework excludes V-optimal / MaxDiff histograms.

The paper keeps only linear-time streaming algorithms on the ingestion
path, explicitly ruling out the accuracy-superior V-optimal and MaxDiff
histograms for their construction cost (Sections 1-2).  This bench
measures both sides of that trade-off on the same data:

* construction time as the number of distinct values grows -- the
  V-optimal DP must blow up super-linearly while the streaming
  builders stay near-linear;
* estimation accuracy at a fixed budget -- the offline baselines may
  beat the streaming histograms, which is exactly why excluding them
  is a *trade-off* and not a free lunch.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.eval.experiments.common import make_distribution, make_query_generator
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.synopses import SynopsisType, create_builder
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

BUDGET = 64
DISTINCT_COUNTS = [200, 800, 3200]
HISTOGRAM_FAMILIES = [
    SynopsisType.EQUI_WIDTH,
    SynopsisType.EQUI_HEIGHT,
    SynopsisType.V_OPTIMAL,
    SynopsisType.MAX_DIFF,
]


def _run(scale):
    rows = []
    for num_values in DISTINCT_COUNTS:
        cell_scale = scale.scaled(
            num_values=num_values, total_records=num_values * 20
        )
        distribution = make_distribution(
            cell_scale, SpreadDistribution.ZIPF_RANDOM, FrequencyDistribution.ZIPF
        )
        sorted_values = []
        for value, frequency in zip(distribution.values, distribution.frequencies):
            sorted_values.extend([value] * frequency)
        queries = list(
            make_query_generator(cell_scale).generate(
                QueryType.FIXED_LENGTH, cell_scale.queries_per_cell, 128
            )
        )
        for synopsis_type in HISTOGRAM_FAMILIES:
            builder = create_builder(
                synopsis_type, cell_scale.domain, BUDGET, len(sorted_values)
            )
            started = time.perf_counter()
            for value in sorted_values:
                builder.add(value)
            add_seconds = time.perf_counter() - started
            started = time.perf_counter()
            synopsis = builder.build()
            build_seconds = time.perf_counter() - started

            errors = ErrorAccumulator(distribution.total_records)
            for query in queries:
                errors.add(
                    distribution.true_range_count(query.lo, query.hi),
                    synopsis.estimate(query.lo, query.hi),
                )
            rows.append(
                {
                    "distinct_values": num_values,
                    "synopsis": synopsis_type.value,
                    "add_ms": add_seconds * 1e3,
                    "build_ms": build_seconds * 1e3,
                    "l1_error": errors.metrics().l1_error,
                }
            )
    return rows


def bench_ablation_voptimal(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))

    def cell(synopsis, distinct):
        (row,) = [
            r
            for r in rows
            if r["synopsis"] == synopsis and r["distinct_values"] == distinct
        ]
        return row

    small, large = DISTINCT_COUNTS[0], DISTINCT_COUNTS[-1]
    input_growth = large / small
    # The V-optimal DP (isolated in build()) grows super-linearly in
    # the number of distinct values...
    voptimal_growth = (
        cell("v_optimal", large)["build_ms"]
        / max(cell("v_optimal", small)["build_ms"], 1e-6)
    )
    assert voptimal_growth > 1.5 * input_growth
    # ...and dominates the streaming builders outright at the largest
    # size (total cost: streaming adds + finalisation).
    voptimal_total = (
        cell("v_optimal", large)["add_ms"] + cell("v_optimal", large)["build_ms"]
    )
    equi_height_total = (
        cell("equi_height", large)["add_ms"]
        + cell("equi_height", large)["build_ms"]
    )
    assert voptimal_total > 5 * equi_height_total

    # The accuracy side of the trade-off: V-optimal is at least
    # competitive with the streaming histograms on this skewed data.
    assert cell("v_optimal", large)["l1_error"] <= 2.0 * min(
        cell("equi_width", large)["l1_error"],
        cell("equi_height", large)["l1_error"],
    )

    (results_dir / "ablation_voptimal.txt").write_text(
        format_table(
            ["distinct values", "synopsis", "add (ms)", "build (ms)", "L1 error"],
            [
                [
                    r["distinct_values"],
                    r["synopsis"],
                    r["add_ms"],
                    r["build_ms"],
                    r["l1_error"],
                ]
                for r in rows
            ],
            title=(
                "Ablation — offline baselines (V-optimal, MaxDiff) vs. "
                f"streaming histograms (budget {BUDGET})"
            ),
        )
    )
