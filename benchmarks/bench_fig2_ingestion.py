"""Figure 2: ingestion overhead of statistics collection.

Reproduces both panels: (a) bulkload ingestion time and (b) feed-based
ingestion time (socket + file), each under NoStats / EquiWidth /
EquiHeight / Wavelet.  The paper's claim is *relative*: statistics
collection does not significantly slow ingestion.  The checkable core
of that claim -- statistics add zero data-path I/O -- is asserted
exactly on the simulated disk counters; wall-clock overhead is recorded
and must stay within a loose envelope (pure-Python synopsis arithmetic
is charged to the same interpreter as the data path, unlike the paper's
testbed where the disk dominates).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig2
from repro.eval.pipeline import IngestionMode


def _reports_by_label(reports, mode):
    return {r.stats_label: r for r in reports if r.mode is mode}


def bench_fig2a_bulkload(benchmark, bench_scale, results_dir):
    reports = run_once(
        benchmark, lambda: fig2.run(bench_scale, modes=[IngestionMode.BULKLOAD])
    )
    by_label = _reports_by_label(reports, IngestionMode.BULKLOAD)
    assert set(by_label) == {"NoStats", "equi_width", "equi_height", "wavelet"}
    baseline = by_label["NoStats"]
    for label, report in by_label.items():
        assert report.records == bench_scale.total_records
        # The mechanism of the paper's claim, checked exactly:
        # identical data-path I/O with and without statistics.
        assert report.disk_io.pages_written == baseline.disk_io.pages_written
    (results_dir / "fig2a_bulkload.txt").write_text(fig2.format_results(reports))


def bench_fig2b_feeds(benchmark, bench_scale, results_dir):
    reports = run_once(
        benchmark,
        lambda: fig2.run(
            bench_scale,
            modes=[IngestionMode.SOCKET_FEED, IngestionMode.FILE_FEED],
        ),
    )
    for mode in (IngestionMode.SOCKET_FEED, IngestionMode.FILE_FEED):
        by_label = _reports_by_label(reports, mode)
        baseline = by_label["NoStats"]
        assert baseline.stats_messages == 0
        for label, report in by_label.items():
            assert report.disk_io.pages_written == baseline.disk_io.pages_written
            assert report.disk_io.pages_read == baseline.disk_io.pages_read
            if label != "NoStats":
                assert report.stats_messages > 0  # synopses were shipped
    (results_dir / "fig2b_feeds.txt").write_text(fig2.format_results(reports))
