"""Figure 5: FixedLength-query accuracy as the range length grows.

Zipf frequencies, budget 256, lengths 8 -> 256.  Shape assertion: the
mean normalised error over all spreads and synopsis types grows
monotonically (modulo noise) with the query length.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig5


def bench_fig5_query_length(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig5.run(bench_scale))
    lengths = sorted({r["length"] for r in rows})
    assert lengths == fig5.DEFAULT_LENGTHS
    assert len(rows) == 6 * 3 * len(lengths)

    mean_by_length = {
        length: sum(r["l1_error"] for r in rows if r["length"] == length)
        / sum(1 for r in rows if r["length"] == length)
        for length in lengths
    }
    # Error grows with the range; endpoints must be clearly ordered.
    assert mean_by_length[lengths[0]] < mean_by_length[lengths[-1]]
    # And the overall trend is non-decreasing within 20% slack per step.
    for shorter, longer in zip(lengths, lengths[1:]):
        assert mean_by_length[longer] >= 0.8 * mean_by_length[shorter]

    (results_dir / "fig5_query_length.txt").write_text(fig5.format_results(rows))
