"""Ablation: the anti-matter twin synopsis (paper Section 3.3).

Runs the changeable workload at U = D = 0.3 and compares the paper's
design (regular estimate minus anti-synopsis estimate) against a naive
variant that sums only the regular per-component synopses.  The naive
variant never sees deletions, so its error must grow with churn while
the twin design stays flat -- quantifying what the 2x synopsis space
buys.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.common import make_distribution, make_query_generator
from repro.eval.lab import ChangeableWorkloadLab
from repro.eval.reporting import format_table
from repro.synopses import SynopsisType
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

RATIO = 0.3


def _run(scale):
    distribution = make_distribution(
        scale, SpreadDistribution.ZIPF_RANDOM, FrequencyDistribution.ZIPF_RANDOM
    )
    lab = ChangeableWorkloadLab(
        distribution, update_ratio=RATIO, delete_ratio=RATIO, seed=scale.seed
    )
    setups = {
        synopsis_type: lab.add_config(synopsis_type, 256)
        for synopsis_type in (
            SynopsisType.EQUI_WIDTH,
            SynopsisType.EQUI_HEIGHT,
            SynopsisType.WAVELET,
        )
    }
    lab.ingest()
    # Random (wide) ranges make the deleted mass visible: on narrow
    # ranges the few deleted records hide inside the baseline error.
    queries = list(
        make_query_generator(scale).generate(
            QueryType.RANDOM, scale.queries_per_cell
        )
    )
    rows = []
    for synopsis_type, setup in setups.items():
        with_twin = lab.evaluate(setup, queries).l1_error
        without_twin = lab.evaluate_ignoring_antimatter(setup, queries).l1_error
        rows.append(
            {
                "synopsis": synopsis_type.value,
                "with_anti_twin": with_twin,
                "ignoring_antimatter": without_twin,
            }
        )
    return rows


def bench_ablation_antimatter(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: _run(bench_scale))
    for row in rows:
        # Ignoring anti-matter systematically overestimates under churn;
        # the twin design must be strictly and substantially better.
        assert row["with_anti_twin"] < row["ignoring_antimatter"]
    mean_with = sum(r["with_anti_twin"] for r in rows) / len(rows)
    mean_without = sum(r["ignoring_antimatter"] for r in rows) / len(rows)
    assert mean_with * 2 < mean_without

    (results_dir / "ablation_antimatter.txt").write_text(
        format_table(
            ["synopsis", "L1 with anti-twin", "L1 ignoring anti-matter"],
            [
                [r["synopsis"], r["with_anti_twin"], r["ignoring_antimatter"]]
                for r in rows
            ],
            title=f"Ablation — anti-matter twin synopsis (U=D={RATIO})",
        )
    )
