"""Extension bench: NDV sketch accuracy vs precision and wire size.

The paper's Section 5 defers sketches for distinct-value counting to
future work.  The driver lives in ``repro.eval.experiments.ndv``; this
bench runs the precision/cardinality sweep under timing and asserts
the shape: measured relative error stays inside the 3-sigma band of
the HLL theory bound at the precisions the cluster actually uses, the
error shrinks as precision grows, and the HBS wire form is smaller
than the dense registers once the register file is large enough to be
worth compressing.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.ndv import format_ndv_results, run_ndv


def bench_extension_ndv(benchmark, bench_scale, results_dir):
    cells = run_once(benchmark, lambda: run_ndv(bench_scale))

    def mean_error(precision):
        errors = [
            c.mean_rel_error for c in cells if c.precision == precision
        ]
        return sum(errors) / len(errors)

    # The theory bound holds (with the standard 3-sigma allowance) at
    # every precision the cluster lanes default to.
    for cell in cells:
        if cell.precision >= 8:
            assert cell.mean_rel_error <= 3 * cell.theory_sigma
    # More registers, less error.
    assert mean_error(12) < mean_error(4)
    # HBS beats the dense form once the register file is non-trivial;
    # sparse-ish register files compress hardest.
    for cell in cells:
        if cell.precision >= 8:
            assert cell.compression_ratio > 1.0

    (results_dir / "extension_ndv.txt").write_text(
        format_ndv_results(cells)
    )
