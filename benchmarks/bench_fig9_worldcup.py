"""Figure 9: accuracy on the WorldCup-like dataset, per field x budget.

Feed ingestion under the Constant merge policy (5 components), six
indexed fields, budgets 16 -> 256.  Shape assertions mirror the paper's
findings: (1) equi-width histograms do not improve with budget on the
clustered int32 fields (all values in one domain-wide bucket); (2) the
adaptive synopses (equi-height, wavelet) beat equi-width on those
fields; (3) wavelets are the best family overall on this dataset.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig9

CLUSTERED_FIELDS = ("timestamp", "client_id", "object_id")


def _error(rows, **filters):
    matches = [
        r for r in rows if all(r[k] == v for k, v in filters.items())
    ]
    assert len(matches) == 1
    return matches[0]["l1_error"]


def bench_fig9_worldcup(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig9.run(bench_scale))
    assert len(rows) == 6 * 3 * len(fig9.DEFAULT_BUDGETS)

    # (1) Equi-width stuck on clustered fields: budget does not help.
    for field in CLUSTERED_FIELDS:
        small = _error(rows, field=field, synopsis="equi_width", budget=16)
        large = _error(rows, field=field, synopsis="equi_width", budget=256)
        assert abs(large - small) < max(0.5 * small, 1e-4)

    # (2) Adaptive synopses beat equi-width on the clustered fields at
    # the largest budget (averaged over the fields).
    def mean_over_clustered(synopsis):
        return sum(
            _error(rows, field=f, synopsis=synopsis, budget=256)
            for f in CLUSTERED_FIELDS
        ) / len(CLUSTERED_FIELDS)

    assert mean_over_clustered("wavelet") < mean_over_clustered("equi_width")
    assert mean_over_clustered("equi_height") < mean_over_clustered("equi_width")

    # (3) Wavelets win overall at budget 256.
    def overall(synopsis):
        subset = [
            r for r in rows if r["synopsis"] == synopsis and r["budget"] == 256
        ]
        return sum(r["l1_error"] for r in subset) / len(subset)

    assert overall("wavelet") <= overall("equi_width") + 1e-9
    assert overall("wavelet") <= overall("equi_height") + 1e-9

    (results_dir / "fig9_worldcup.txt").write_text(fig9.format_results(rows))
