"""Figure 7: accuracy under growing update/delete (anti-matter) ratios.

ZipfRandom frequencies; U = D swept 0 -> 0.3 with staged forced
flushes.  Shape assertion -- the paper's finding: increasing the
anti-matter fraction does *not* degrade estimation accuracy, because
the separate anti-synopsis reconciles deletions; the mean error at
U=D=0.3 stays comparable to U=D=0 rather than growing with the churn.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments import fig7


def _mean_error(rows, ratio):
    subset = [r for r in rows if r["ratio"] == ratio]
    return sum(r["l1_error"] for r in subset) / len(subset)


def bench_fig7_antimatter(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: fig7.run(bench_scale))
    ratios = sorted({r["ratio"] for r in rows})
    assert ratios == fig7.DEFAULT_RATIOS

    # Anti-matter actually materialised for every non-zero ratio.
    for row in rows:
        if row["ratio"] > 0:
            assert row["antimatter_records"] > 0
        else:
            assert row["antimatter_records"] == 0

    # Accuracy stays flat: the heaviest churn must not inflate the mean
    # error beyond a small factor of the churn-free baseline (plus an
    # absolute floor so near-zero baselines don't trip the ratio).
    baseline = _mean_error(rows, 0.0)
    heaviest = _mean_error(rows, 0.3)
    assert heaviest <= max(baseline * 3, 5e-3)

    (results_dir / "fig7_antimatter.txt").write_text(fig7.format_results(rows))
