"""Extension bench: 2-D synopses vs. the attribute-independence assumption.

The paper's Section 5 defers composite-key (multidimensional)
statistics to future work, citing the multidimensional histogram/
wavelet literature.  The driver lives in
``repro.eval.experiments.extensions``; this bench runs it under timing
and asserts the shape: at zero correlation all methods agree, and as
correlation grows the independence assumption's error explodes while
the 2-D synopses stay accurate.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval.experiments.extensions import (
    format_multidim_results,
    run_multidim,
)


def bench_extension_multidim(benchmark, bench_scale, results_dir):
    rows = run_once(benchmark, lambda: run_multidim(bench_scale))

    def error(method, correlation):
        (row,) = [
            r
            for r in rows
            if r["method"] == method and r["correlation"] == correlation
        ]
        return row["l1_error"]

    # Fully correlated attributes: the independence assumption must be
    # far worse than both 2-D synopses.
    for method in ("grid_2d", "wavelet_2d"):
        assert error(method, 1.0) * 3 < error("independence", 1.0)
    # And the independence error grows with correlation.
    assert error("independence", 1.0) > error("independence", 0.0)

    (results_dir / "extension_multidim.txt").write_text(
        format_multidim_results(rows)
    )
