"""Shared fixtures for the reproduction benchmarks.

Every figure benchmark runs its experiment once under pytest-benchmark
timing, asserts the result *shape* the paper reports, and writes the
formatted result table to ``benchmarks/results/`` so EXPERIMENTS.md can
reference concrete numbers.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default, minutes for the whole directory) or ``medium``
(closer to the paper's ratios).

Every bench session also dumps a metrics snapshot of the process-global
registry (``benchmarks/results/metrics_snapshot.json``) so throughput
numbers can be read next to the flush/merge/estimate counters that
produced them (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

import pytest

from repro.eval.experiments.common import (
    MEDIUM_SCALE,
    SMALL_SCALE,
    ExperimentScale,
)
from repro.obs.export import write_snapshot
from repro.obs.registry import get_registry

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The experiment scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name == "medium":
        return MEDIUM_SCALE
    if name == "small":
        return SMALL_SCALE
    raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r} (small|medium)")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the formatted result tables are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def metrics_snapshot_dump() -> Iterator[None]:
    """Write the session's metrics snapshot next to the result tables."""
    yield
    write_snapshot(get_registry(), RESULTS_DIR / "metrics_snapshot.json")


def run_once(benchmark, func):
    """Run an experiment exactly once under benchmark timing.

    The experiments are full pipelines (ingest + evaluate), so a single
    timed round is the meaningful measurement -- pytest-benchmark's
    default multi-round calibration would re-ingest dozens of times.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
