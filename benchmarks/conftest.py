"""Shared fixtures for the reproduction benchmarks.

Every figure benchmark runs its experiment once under pytest-benchmark
timing, asserts the result *shape* the paper reports, and writes the
formatted result table to ``benchmarks/results/`` so EXPERIMENTS.md can
reference concrete numbers.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default, minutes for the whole directory) or ``medium``
(closer to the paper's ratios).

Every bench session also dumps a metrics snapshot of the process-global
registry (``benchmarks/results/metrics_snapshot_<scale>.json``) so
throughput numbers can be read next to the flush/merge/estimate
counters that produced them (see docs/OBSERVABILITY.md).  The filename
is scale-suffixed and the payload stamped with the scale and the
session's collected-test count, so a small run no longer silently
clobbers a medium run's snapshot (and a partial ``-k`` session is
distinguishable from a full one).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import pytest

from repro.eval.experiments.common import (
    MEDIUM_SCALE,
    SMALL_SCALE,
    ExperimentScale,
)
from repro.obs.export import write_snapshot
from repro.obs.registry import get_registry

RESULTS_DIR = Path(__file__).parent / "results"


def _scale_name() -> str:
    """The (validated) scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in ("small", "medium"):
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r} (small|medium)")
    return name


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The experiment scale selected via REPRO_BENCH_SCALE."""
    return MEDIUM_SCALE if _scale_name() == "medium" else SMALL_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the formatted result tables are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def metrics_snapshot_dump(request: pytest.FixtureRequest) -> Iterator[None]:
    """Write the session's metrics snapshot next to the result tables.

    One file per scale (``metrics_snapshot_small.json`` / ``_medium``),
    stamped with the scale and this session's collected-test count, so
    runs at different scales coexist and partial sessions are visible.
    """
    yield
    scale = _scale_name()
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"metrics_snapshot_{scale}.json"
    write_snapshot(get_registry(), target)
    payload = json.loads(target.read_text())
    payload["bench_session"] = {
        "scale": scale,
        "tests_collected": request.session.testscollected,
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, func):
    """Run an experiment exactly once under benchmark timing.

    The experiments are full pipelines (ingest + evaluate), so a single
    timed round is the meaningful measurement -- pytest-benchmark's
    default multi-round calibration would re-ingest dozens of times.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
