"""Command-line harness for the reproduction experiments.

Regenerates any (or every) figure of the paper's evaluation section and
prints/saves the result tables::

    python -m repro list
    python -m repro run fig3 --scale small
    python -m repro run-all --scale medium --out results/

Scales: ``small`` (default; the whole suite takes a couple of minutes)
and ``medium`` (closer to the paper's ratios).

The ``stats`` subcommand exercises the observability layer: it drives a
scripted ingest (bulkload, flushes, merges, deletes, estimates) and
dumps the resulting metrics snapshot::

    python -m repro stats                  # JSON snapshot to stdout
    python -m repro stats --format text
    python -m repro stats --selfcheck      # validate against docs/OBSERVABILITY.md

The ``faultcheck`` subcommand runs a seeded chaos ingest (dropped,
duplicated, reordered and delayed statistics messages plus a master
outage window) and verifies the catalog converges bit-identically to a
fault-free run::

    python -m repro faultcheck
    python -m repro faultcheck --seed 7 --records 1024 --drop 0.2

The ``crashcheck`` subcommand kills the cluster at every registered
crash point (seeded), restarts and recovers it, and verifies that
partition contents, the statistics catalog and a sweep of estimates
are bit-identical to a crash-free run -- plus a WAL-disabled negative
control that must demonstrably lose acknowledged records::

    python -m repro crashcheck
    python -m repro crashcheck --seed 7 --records 1024

The ``racecheck`` subcommand sweeps seeds x scheduler modes: the same
scripted ingest runs with background flushes/merges on the
deterministic virtual scheduler and on real worker threads, and every
run must end bit-identical -- partition contents, statistics catalog
and a sweep of estimates -- to the synchronous baseline::

    python -m repro racecheck
    python -m repro racecheck --quick
    python -m repro racecheck --seed 7 --records 1024
    python -m repro racecheck --quick --paced  # with merge pacing armed
    python -m repro racecheck --quick --memory  # with a tight memory budget

The ``servecheck`` subcommand exercises the resilient serving layer:
a seeded changestream feed is killed mid-consumption and must resume
from its durable cursor bit-identically (with feed faults armed), and
a bounded concurrent estimate service is saturated and must shed load
with typed rejections -- no deadlocks, no unbounded queues::

    python -m repro servecheck
    python -m repro servecheck --seed 7 --records 1024

The ``bench`` subcommand runs the perf suite (ingest-throughput,
flush-latency, merge-throughput, estimate-latency, network-ship, the
multi-writer ``stability`` tail-latency scenario, ...), writes a
schema-versioned ``BENCH_<timestamp>.json`` report, and can gate
against a committed baseline (see docs/BENCHMARKING.md)::

    python -m repro bench --quick
    python -m repro bench --quick --compare benchmarks/baseline.json
    python -m repro bench --quick --suite stability
    python -m repro bench --quick --suite memory-budget

Exit codes for ``bench``: 0 on success, 1 when any metric regresses
beyond tolerance or an ingest stall window exceeds its budget, 2 when
a report or baseline is malformed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.eval.experiments import (
    MEDIUM_SCALE,
    SMALL_SCALE,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
)
from repro.eval.experiments import extensions, ndv
from repro.cluster.crashcheck import (
    format_report as format_crash_report,
    run_crashcheck,
)
from repro.cluster.faultcheck import format_report, run_faultcheck
from repro.cluster.racecheck import (
    DEFAULT_SEEDS,
    QUICK_SEEDS,
    format_report as format_race_report,
    run_racecheck,
)
from repro.cluster.servecheck import (
    format_report as format_serve_report,
    run_servecheck,
)
from repro.errors import ClusterError
from repro.eval.experiments.common import ExperimentScale
from repro.obs.export import render_json, render_text, write_snapshot
from repro.obs.selfcheck import run_scripted_ingest, selfcheck

__all__ = ["main", "EXPERIMENTS"]

_Descriptor = tuple[str, Callable[[ExperimentScale], Any], Callable[[Any], str]]

EXPERIMENTS: dict[str, _Descriptor] = {
    "fig2": (
        "Ingestion overhead: NoStats vs EquiWidth/EquiHeight/Wavelet "
        "(bulkload + feeds)",
        lambda scale: fig2.run(scale),
        fig2.format_results,
    ),
    "fig3": (
        "Accuracy vs synopsis size (16..1024), 3 frequency x 6 spread dists",
        lambda scale: fig3.run(scale),
        fig3.format_results,
    ),
    "fig4": (
        "Accuracy vs query type (Point/FixedLength/HalfOpen/Random)",
        lambda scale: fig4.run(scale),
        fig4.format_results,
    ),
    "fig5": (
        "Accuracy vs FixedLength query length (8..256)",
        lambda scale: fig5.run(scale),
        fig5.format_results,
    ),
    "fig6": (
        "Accuracy + query overhead vs number of LSM components (8..128)",
        lambda scale: fig6.run(scale),
        fig6.format_results,
    ),
    "fig7": (
        "Accuracy vs update/delete (anti-matter) ratio (0..0.3)",
        lambda scale: fig7.run(scale),
        fig7.format_results,
    ),
    "fig8": (
        "Query overhead: Bulkload (1 component) vs NoMerge (many)",
        lambda scale: fig8.run(scale),
        fig8.format_results,
    ),
    "fig9": (
        "Accuracy on the WorldCup-like dataset, 6 fields x budgets 16..256",
        lambda scale: fig9.run(scale),
        fig9.format_results,
    ),
    "ext-multidim": (
        "[extension] 2-D synopses vs the independence assumption on "
        "correlated attributes",
        lambda scale: extensions.run_multidim(scale),
        extensions.format_multidim_results,
    ),
    "ext-rtree": (
        "[extension] LSM-ified R-tree: MBR pruning + piggybacked 2-D stats",
        lambda scale: extensions.run_rtree(scale),
        extensions.format_rtree_results,
    ),
    "ndv-accuracy": (
        "[extension] NDV sketch error vs HLL precision p and HBS wire "
        "size (docs/SKETCHES.md)",
        lambda scale: ndv.run_ndv(scale),
        ndv.format_ndv_results,
    ),
}

_SCALES = {"small": SMALL_SCALE, "medium": MEDIUM_SCALE}


def _run_experiment(
    name: str, scale: ExperimentScale, out_dir: Path | None
) -> str:
    description, run, render = EXPERIMENTS[name]
    print(f"== {name}: {description}", file=sys.stderr)
    started = time.perf_counter()
    results = run(scale)
    elapsed = time.perf_counter() - started
    print(f"   done in {elapsed:.1f}s", file=sys.stderr)
    text = render(results)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return text


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's evaluation figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run_parser)

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    _add_common(all_parser)

    stats_parser = subparsers.add_parser(
        "stats",
        help="run a scripted ingest and dump the metrics snapshot",
    )
    stats_parser.add_argument(
        "--format",
        dest="fmt",
        choices=["json", "text"],
        default="json",
        help="snapshot rendering (default: json)",
    )
    stats_parser.add_argument(
        "--out",
        default=None,
        help="file to write the snapshot to (in addition to stdout)",
    )
    stats_parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="validate the snapshot against the documented metrics "
        "contract; exit non-zero on any violation",
    )

    fault_parser = subparsers.add_parser(
        "faultcheck",
        help="seeded chaos ingest: verify the statistics transport "
        "converges the catalog despite injected network faults",
    )
    fault_parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan RNG seed (default: 0)"
    )
    fault_parser.add_argument(
        "--records",
        type=int,
        default=512,
        help="documents to ingest per run (default: 512)",
    )
    fault_parser.add_argument(
        "--drop", type=float, default=0.10, help="per-send drop probability"
    )
    fault_parser.add_argument(
        "--duplicate",
        type=float,
        default=0.10,
        help="per-send duplication probability",
    )
    fault_parser.add_argument(
        "--reorder",
        type=float,
        default=0.10,
        help="per-send reordering probability",
    )
    fault_parser.add_argument(
        "--delay", type=float, default=0.05, help="per-send delay probability"
    )

    crash_parser = subparsers.add_parser(
        "crashcheck",
        help="seeded crash injection: verify node recovery restores "
        "contents, catalog and estimates bit-identically at every "
        "registered crash point",
    )
    crash_parser.add_argument(
        "--seed", type=int, default=0, help="crash-plan RNG seed (default: 0)"
    )
    crash_parser.add_argument(
        "--records",
        type=int,
        default=512,
        help="documents to ingest per run (default: 512)",
    )

    race_parser = subparsers.add_parser(
        "racecheck",
        help="seeded scheduler sweep: verify concurrent background "
        "flushes/merges (virtual and real threads) end bit-identical "
        "to synchronous maintenance",
    )
    race_parser.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        help="sweep seed (repeatable; default: the standard sweep "
        f"{list(DEFAULT_SEEDS)})",
    )
    race_parser.add_argument(
        "--records",
        type=int,
        default=512,
        help="documents to ingest per run (default: 512)",
    )
    race_parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI-sized sweep (seeds {list(QUICK_SEEDS)}); ignored when "
        "--seed is given",
    )
    race_parser.add_argument(
        "--paced",
        action="store_true",
        help="run every cluster (sync baseline included) with merge "
        "pacing enabled, proving pacing never changes what merges "
        "produce",
    )
    race_parser.add_argument(
        "--memory",
        action="store_true",
        help="run every cluster (sync baseline included) under a tight "
        "memory-arbiter budget, proving arbitration-triggered early "
        "flushes are image-neutral across scheduler modes",
    )

    serve_parser = subparsers.add_parser(
        "servecheck",
        help="seeded serving chaos: verify crash-resumable feeds "
        "converge from their durable cursors and the bounded estimate "
        "service sheds overload with typed rejections",
    )
    serve_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="feed/fault/kill RNG seed (default: 0)",
    )
    serve_parser.add_argument(
        "--records",
        type=int,
        default=512,
        help="changestream records per run (default: 512)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the perf suite, write a BENCH_<timestamp>.json report, "
        "optionally gate against a baseline",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-friendly scale (seconds instead of minutes)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed (default: 0)"
    )
    bench_parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the scale preset's repetition count",
    )
    bench_parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="run just this benchmark (repeatable); see docs/BENCHMARKING.md",
    )
    bench_parser.add_argument(
        "--suite",
        default=None,
        metavar="SUITE",
        help="run a named benchmark subset (e.g. 'stability', "
        "'memory-budget'); mutually exclusive with --only",
    )
    bench_parser.add_argument(
        "--out",
        default="benchmarks/results",
        help="directory for the BENCH_<timestamp>.json report "
        "(default: benchmarks/results)",
    )
    bench_parser.add_argument(
        "--no-report",
        action="store_true",
        help="skip writing the report file (print-only / compare-only)",
    )
    bench_parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline BENCH json to gate against; exit 1 on regression",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fractional regression tolerance for --compare (default: 0.25)",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (description, _run, _render) in sorted(EXPERIMENTS.items()):
            print(f"{name}: {description}")
        return 0

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "faultcheck":
        try:
            report = run_faultcheck(
                seed=args.seed,
                records=args.records,
                drop=args.drop,
                duplicate=args.duplicate,
                reorder=args.reorder,
                delay=args.delay,
            )
        except (ClusterError, ValueError) as exc:
            # A plan hostile enough that recovery cannot converge (e.g.
            # --drop 1.0), or invalid probabilities.
            print(f"faultcheck failed: {exc}", file=sys.stderr)
            return 1
        print(format_report(report))
        return 0 if report.converged else 1

    if args.command == "crashcheck":
        try:
            crash_report = run_crashcheck(seed=args.seed, records=args.records)
        except (ClusterError, ValueError) as exc:
            print(f"crashcheck failed: {exc}", file=sys.stderr)
            return 1
        print(format_crash_report(crash_report))
        return 0 if crash_report.converged else 1

    if args.command == "servecheck":
        try:
            serve_report = run_servecheck(
                seed=args.seed, records=args.records
            )
        except (ClusterError, ValueError) as exc:
            print(f"servecheck failed: {exc}", file=sys.stderr)
            return 1
        print(format_serve_report(serve_report))
        return 0 if serve_report.converged else 1

    if args.command == "racecheck":
        if args.seed is not None:
            seeds = tuple(args.seed)
        else:
            seeds = QUICK_SEEDS if args.quick else DEFAULT_SEEDS
        try:
            race_report = run_racecheck(
                seeds=seeds,
                records=args.records,
                paced=args.paced,
                memory=args.memory,
            )
        except (ClusterError, ValueError) as exc:
            print(f"racecheck failed: {exc}", file=sys.stderr)
            return 1
        print(format_race_report(race_report))
        return 0 if race_report.converged else 1

    scale = _SCALES[args.scale]
    out_dir = Path(args.out) if args.out else None
    names = [args.experiment] if args.command == "run" else sorted(EXPERIMENTS)
    for name in names:
        print(_run_experiment(name, scale, out_dir))
        print()
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """Handle ``repro stats``: scripted ingest, snapshot, selfcheck."""
    snapshot = run_scripted_ingest()
    rendered = (
        render_json(snapshot) if args.fmt == "json" else render_text(snapshot)
    )
    print(rendered)
    if args.out is not None:
        write_snapshot(snapshot, args.out, fmt=args.fmt)
        print(f"snapshot written to {args.out}", file=sys.stderr)
    if args.selfcheck:
        problems = selfcheck(snapshot)
        if problems:
            for problem in problems:
                print(f"selfcheck: {problem}", file=sys.stderr)
            return 1
        print("selfcheck: ok", file=sys.stderr)
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """Handle ``repro bench``: run suite, write report, gate baseline.

    Exit codes: 0 ok, 1 regression beyond tolerance or a stall-budget
    violation, 2 malformed report/baseline or invalid suite arguments.
    """
    # Imported here: the perf suite pulls in the cluster stack, which
    # `repro list` etc. should not pay for.
    from repro.errors import BenchmarkError
    from repro.eval import perfsuite

    only = tuple(args.only) if args.only else None
    if args.suite is not None:
        if only is not None:
            print(
                "bench failed: --suite and --only are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        suite = perfsuite.SUITES.get(args.suite)
        if suite is None:
            print(
                f"bench failed: unknown suite {args.suite!r}; known: "
                f"{sorted(perfsuite.SUITES)}",
                file=sys.stderr,
            )
            return 2
        only = suite
    try:
        report = perfsuite.run_suite(
            quick=args.quick,
            seed=args.seed,
            repetitions=args.repetitions,
            only=only,
        )
    except BenchmarkError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 2
    print(perfsuite.format_report(report))
    if not args.no_report:
        target = perfsuite.write_report(report, args.out)
        print(f"report written to {target}", file=sys.stderr)
    # The absolute stall-budget gate applies whenever the budgeted
    # metrics were measured, with or without a baseline.
    violations = perfsuite.check_budgets(report)
    for violation in violations:
        print(f"bench budget: {violation}", file=sys.stderr)
    if args.compare is None:
        return 1 if violations else 0
    try:
        baseline = perfsuite.load_report(args.compare)
        regressions = perfsuite.compare_reports(
            report, baseline, tolerance=args.tolerance
        )
    except BenchmarkError as exc:
        print(f"bench compare failed: {exc}", file=sys.stderr)
        return 2
    print(perfsuite.format_regressions(regressions))
    return 1 if regressions or violations else 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write the result tables into",
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
