"""Fixed-width integer types and value domains.

The paper (Section 3.1) defines synopsis construction only over the
fixed-length integer types of the AsterixDB data model -- int8, int16,
int32 and int64 -- because hierarchical synopses (wavelets) require the
input values to be drawn from a fixed-size universe whose size is a power
of two.  Values from any fixed-length domain are conceptually padded with
zeros up to the nearest power-of-two length; variable-length types such as
strings are reduced to this problem via dictionary encoding (see
:mod:`repro.workloads.dictionary`).

This module provides:

* :class:`IntType` -- the four supported fixed-width integer types.
* :class:`Domain` -- a bounded integer value domain with the power-of-two
  padding required by wavelet synopses, plus position/value mapping.
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass

from repro.errors import DomainError

__all__ = ["IntType", "Domain"]


class IntType(enum.Enum):
    """Fixed-width signed integer types supported for synopsis fields."""

    INT8 = 8
    INT16 = 16
    INT32 = 32
    INT64 = 64

    @property
    def bits(self) -> int:
        """Width of the type in bits."""
        return self.value

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        return (1 << (self.bits - 1)) - 1

    def validate(self, value: int) -> int:
        """Return ``value`` unchanged if representable, else raise."""
        if not self.min_value <= value <= self.max_value:
            raise DomainError(
                f"value {value} does not fit in {self.name.lower()}"
            )
        return value


def _next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (``n`` must be positive)."""
    if n <= 0:
        raise DomainError(f"length must be positive, got {n}")
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class Domain:
    """A bounded integer value domain ``[lo, hi]`` (both inclusive).

    Wavelet synopses operate on *positions* within the domain rather than
    raw values; the domain is padded up to the nearest power-of-two length
    so the Haar decomposition is well defined.  Histogram synopses use the
    unpadded ``length``.

    Attributes:
        lo: Smallest value in the domain (inclusive).
        hi: Largest value in the domain (inclusive).
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise DomainError(f"empty domain: lo={self.lo} > hi={self.hi}")

    @classmethod
    def of_type(cls, int_type: IntType) -> "Domain":
        """The full domain of a fixed-width integer type."""
        return cls(int_type.min_value, int_type.max_value)

    @property
    def length(self) -> int:
        """Number of distinct values in the domain."""
        return self.hi - self.lo + 1

    @property
    def padded_length(self) -> int:
        """Domain length padded to the nearest power of two.

        This is the universe size ``M`` used by the Haar decomposition;
        the paper pads fixed-length domains with zeros to the nearest
        power of two (Section 3.1).
        """
        return _next_power_of_two(self.length)

    @property
    def levels(self) -> int:
        """Height ``log2(M)`` of the Haar error tree over this domain."""
        return self.padded_length.bit_length() - 1

    def __contains__(self, value: object) -> bool:
        # numbers.Integral admits numpy integer scalars alongside int.
        return isinstance(value, numbers.Integral) and self.lo <= value <= self.hi

    def position(self, value: int) -> int:
        """Zero-based position of ``value`` within the domain."""
        if value not in self:
            raise DomainError(
                f"value {value} outside domain [{self.lo}, {self.hi}]"
            )
        return value - self.lo

    def value_at(self, position: int) -> int:
        """Inverse of :meth:`position` (positions in the padded tail are
        allowed so wavelet reconstruction can address them)."""
        if not 0 <= position < self.padded_length:
            raise DomainError(
                f"position {position} outside padded domain of length "
                f"{self.padded_length}"
            )
        return self.lo + position

    def clamp(self, value: int) -> int:
        """Clamp ``value`` into ``[lo, hi]``."""
        return min(max(value, self.lo), self.hi)

    def intersect(self, lo: int, hi: int) -> tuple[int, int] | None:
        """Intersect the closed range ``[lo, hi]`` with this domain.

        Returns ``None`` when the intersection is empty.
        """
        lo2, hi2 = max(lo, self.lo), min(hi, self.hi)
        if lo2 > hi2:
            return None
        return lo2, hi2
