"""Serving-layer chaos verification behind ``repro servecheck``.

Two legs, one seed:

**Resume leg.**  A seeded changestream feed is consumed into a durable
cluster twice: once uninterrupted, once killed mid-feed (``stop_after``
-- the consumer dies between cursor checkpoints, exactly as a crashed
process would) with feed faults armed (injected disconnects, partial
batches, duplicate deliveries).  The killed cluster is crash-restarted
(:meth:`~repro.cluster.cluster.LSMCluster.restart_nodes`), a fresh
consumer resumes from the durable cursor, replays the uncheckpointed
gap (at-least-once) and deduplicates it against the applied high-water
mark.  Both runs must end **bit-identical**: partition contents, master
catalog (uid-rank normalised) and a sweep of range estimates.  The leg
is vacuous unless the resume actually replayed records, so
``replayed == 0`` is itself a failure.

**Overload leg.**  A bounded :class:`~repro.cluster.serving.
EstimateService` is saturated deterministically (staged admissions past
the queue bound), then hammered by concurrent client threads.  The leg
verifies load is *shed, not queued*: at least one typed
:class:`~repro.errors.OverloadedError`, queue depth never exceeds its
bound, every client thread finishes (join with a deadline -- a stuck
thread is a deadlock verdict, not a hang of the harness), and the
degraded flavour answers from the possibly-stale cache with the
``degraded`` flag set.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any

from repro.cluster.cluster import LSMCluster
from repro.cluster.faultcheck import _catalog_image
from repro.cluster.faults import FeedFaultPlan, FeedFaults
from repro.cluster.feeds import (
    ChangestreamFeed,
    DatasetFeedAdapter,
    FeedCursorStore,
    FeedOperation,
    FeedRecord,
    ResumableFeedConsumer,
)
from repro.cluster.serving import EstimateService
from repro.core.config import StatisticsConfig
from repro.errors import OverloadedError
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain
from repro.util.retry import RetryPolicy

__all__ = ["ServeCheckReport", "run_servecheck", "format_report"]

_DATASET = "serve"
_CHECKPOINT_EVERY = 64
_FLUSH_EVERY = 48
_JOIN_DEADLINE_SECONDS = 30.0


@dataclass(frozen=True)
class ServeCheckReport:
    """Outcome of one seeded serving-resilience check."""

    seed: int
    records: int
    converged: bool
    kill_at: int
    replayed: int
    deduplicated: int
    disconnects: int
    reconnects: int
    partial_batches: int
    requests: int
    rejected: int
    degraded: int
    timeouts: int
    peak_queue_depth: int
    problems: tuple[str, ...]


def _feed_records(seed: int, count: int) -> list[FeedRecord]:
    """A seeded changestream: mostly inserts, with updates and deletes
    against already-inserted keys so replays exercise anti-matter."""
    rng = random.Random(f"servecheck:{seed}")
    records: list[FeedRecord] = []
    live: list[int] = []
    next_pk = 0
    for _ in range(count):
        roll = rng.random()
        if roll < 0.75 or not live:
            document = {"id": next_pk, "value": rng.randrange(1024)}
            live.append(next_pk)
            next_pk += 1
            records.append(FeedRecord(FeedOperation.INSERT, document))
        elif roll < 0.90:
            pk = live[rng.randrange(len(live))]
            records.append(
                FeedRecord(
                    FeedOperation.UPDATE,
                    {"id": pk, "value": rng.randrange(1024)},
                )
            )
        else:
            pk = live.pop(rng.randrange(len(live)))
            records.append(FeedRecord(FeedOperation.DELETE, {"id": pk}))
    return records


def _build_cluster(scheduler: str = "sync") -> LSMCluster:
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        retry_policy=RetryPolicy.immediate(max_attempts=3),
        durable=True,
        scheduler=scheduler,
    )
    cluster.create_dataset(
        _DATASET,
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=32,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    return cluster


def _consumer(
    cluster: LSMCluster,
    source: ChangestreamFeed,
) -> ResumableFeedConsumer:
    return ResumableFeedConsumer(
        source,
        DatasetFeedAdapter(cluster, _DATASET),
        # The cursor lives in node 0's superblock: one durable home per
        # feed, surviving the same crashes its data does.
        FeedCursorStore(cluster.nodes[0].disk),
        checkpoint_every=_CHECKPOINT_EVERY,
        retry_policy=RetryPolicy.immediate(max_attempts=5),
        flush_every=_FLUSH_EVERY,
    )


def _contents_image(cluster: LSMCluster) -> dict:
    """Reconciled per-partition scans as comparable plain data."""
    image: dict = {}
    for node in cluster.nodes:
        for partition_id in node.partition_ids:
            dataset = node.dataset(_DATASET, partition_id)
            image[(node.node_id, partition_id, "primary")] = tuple(
                (record.key, record.value["value"])
                for record in dataset.primary.scan()
            )
            image[(node.node_id, partition_id, "value_idx")] = tuple(
                record.key for record in dataset.scan_secondary("value_idx")
            )
    return image


def _estimate_sweep(cluster: LSMCluster) -> list[float]:
    return [
        cluster.estimate(_DATASET, "value_idx", lo, lo + width)
        for lo in range(0, 1024, 64)
        for width in (0, 15, 255)
    ]


def _images(cluster: LSMCluster) -> dict:
    return {
        "contents": _contents_image(cluster),
        "catalog": _catalog_image(cluster),
        "estimates": _estimate_sweep(cluster),
    }


def _settle(cluster: LSMCluster) -> None:
    cluster.drain_maintenance()
    cluster.recover_statistics()


def _compare(baseline: dict, resumed: dict) -> list[str]:
    problems: list[str] = []
    if baseline["contents"] != resumed["contents"]:
        diverged = sorted(
            key
            for key in baseline["contents"]
            if baseline["contents"][key] != resumed["contents"].get(key)
        )
        problems.append(f"partition contents diverged: {diverged[:4]}")
    expected, actual = baseline["catalog"], resumed["catalog"]
    if set(expected) != set(actual):
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        problems.append(
            f"catalog entries differ (missing {missing[:3]}, extra {extra[:3]})"
        )
    else:
        diverged = [key for key in expected if expected[key] != actual[key]]
        if diverged:
            problems.append(f"synopsis payloads diverged for {diverged[:3]}")
    if baseline["estimates"] != resumed["estimates"]:
        deltas = [
            (index, expected_value, actual_value)
            for index, (expected_value, actual_value) in enumerate(
                zip(baseline["estimates"], resumed["estimates"])
            )
            if expected_value != actual_value
        ]
        problems.append(f"estimates diverged: {deltas[:3]}")
    return problems


def _pick_kill_point(seed: int, records: int) -> int:
    """A seeded mid-feed kill point that is *not* a checkpoint boundary,
    so the resume genuinely replays an uncheckpointed gap."""
    rng = random.Random(f"servecheck-kill:{seed}")
    lo = max(1, records // 4)
    hi = max(lo + 1, (3 * records) // 4)
    kill_at = rng.randrange(lo, hi)
    if kill_at % _CHECKPOINT_EVERY == 0:
        kill_at += 1 + (seed % (_CHECKPOINT_EVERY - 1))
    return min(kill_at, records - 1)


def _run_resume_leg(
    seed: int, records: int, problems: list[str]
) -> dict[str, Any]:
    feed_records = _feed_records(seed, records)
    kill_at = _pick_kill_point(seed, records)

    # Uninterrupted oracle on a perfect feed.
    with use_registry(MetricsRegistry()):
        baseline_cluster = _build_cluster()
        baseline_stats = _consumer(
            baseline_cluster, ChangestreamFeed(f"serve{seed}", feed_records)
        ).run()
        _settle(baseline_cluster)
        baseline = _images(baseline_cluster)

    # Chaos run: feed faults armed, killed mid-feed, crash-restarted,
    # resumed from the durable cursor by a brand-new consumer.
    chaos_registry = MetricsRegistry()
    with use_registry(chaos_registry):
        chaos_cluster = _build_cluster()
        plan = FeedFaultPlan(
            seed=seed, faults=FeedFaults(disconnect=0.03, duplicate=0.05)
        )
        source = ChangestreamFeed(f"serve{seed}", feed_records, fault_plan=plan)
        first = _consumer(chaos_cluster, source)
        first_stats = first.run(stop_after=kill_at)
        chaos_cluster.restart_nodes()
        chaos_cluster.recover_statistics()
        resume = _consumer(chaos_cluster, source)
        resume_stats = resume.run()
        _settle(chaos_cluster)
        resumed = _images(chaos_cluster)

    problems.extend(_compare(baseline, resumed))
    if resume_stats.replayed == 0:
        problems.append(
            f"vacuous resume: kill at {kill_at} replayed nothing "
            "(the crash landed on a checkpoint boundary)"
        )
    total_applied = first_stats.applied + resume_stats.applied
    if total_applied != baseline_stats.applied:
        problems.append(
            f"applied-record mismatch: interrupted run applied "
            f"{total_applied}, uninterrupted {baseline_stats.applied}"
        )
    if chaos_cluster.statistics_backlog():
        problems.append(
            f"{chaos_cluster.statistics_backlog()} statistics messages "
            "still parked after resume"
        )
    counters = chaos_registry.snapshot()["counters"]
    return {
        "kill_at": kill_at,
        "replayed": resume_stats.replayed,
        "deduplicated": first_stats.deduplicated + resume_stats.deduplicated,
        "disconnects": counters.get("feed.source.disconnects", 0),
        "reconnects": counters.get("feed.source.reconnects", 0),
        "partial_batches": counters.get("feed.batches.partial", 0),
    }


def _run_overload_leg(
    seed: int, records: int, problems: list[str]
) -> dict[str, Any]:
    registry = MetricsRegistry()
    with use_registry(registry):
        cluster = _build_cluster(scheduler="threads")
        for record in _feed_records(seed, records):
            if record.operation is FeedOperation.INSERT:
                cluster.insert(_DATASET, record.document)
        cluster.flush_all(_DATASET)
        _settle(cluster)
        # Warm the merged-synopsis cache so degraded answers exist.
        cluster.estimate_detailed(_DATASET, "value_idx", 0, 255)

        # Deterministic saturation: stage admissions past the bound
        # before any worker runs, so the typed rejection is guaranteed.
        service = EstimateService(
            cluster,
            max_queue_depth=4,
            workers=2,
            default_timeout=_JOIN_DEADLINE_SECONDS,
            retry_policy=RetryPolicy.immediate(max_attempts=2),
            autostart=False,
        )
        staged_rejections = 0
        for i in range(service.max_queue_depth + 2):
            if not service.offer("stager", _DATASET, "value_idx", 0, 63 + i):
                staged_rejections += 1
        if staged_rejections != 2:
            problems.append(
                f"staged saturation expected 2 rejections, got "
                f"{staged_rejections}"
            )

        # Concurrent clients against the live service; sheds must be
        # typed, everyone must come back.
        service.start()
        overloads = [0] * 4
        completed = [0] * 4

        def client(index: int) -> None:
            for request_no in range(16):
                lo = (index * 97 + request_no * 31) % 768
                try:
                    service.estimate(
                        f"client-{index}", _DATASET, "value_idx", lo, lo + 127
                    )
                    completed[index] += 1
                except OverloadedError:
                    overloads[index] += 1

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(len(overloads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(_JOIN_DEADLINE_SECONDS)
        stuck = [thread.name for thread in threads if thread.is_alive()]
        if stuck:
            problems.append(
                f"deadlock: client threads never finished: {stuck}"
            )
        if sum(completed) + sum(overloads) != 16 * len(threads):
            problems.append(
                "lost requests: completions + sheds != submissions"
            )
        service.shutdown()
        if service.peak_queue_depth > service.max_queue_depth:
            problems.append(
                f"queue depth {service.peak_queue_depth} exceeded bound "
                f"{service.max_queue_depth}"
            )

        # Degraded flavour: no workers, an immediate timeout must fall
        # back to the possibly-stale cached merge, flagged as such.
        degraded_service = EstimateService(
            cluster,
            max_queue_depth=2,
            default_timeout=0.0,
            retry_policy=RetryPolicy.immediate(max_attempts=1),
            degraded_mode=True,
            autostart=False,
        )
        try:
            result = degraded_service.estimate(
                "degraded-client", _DATASET, "value_idx", 0, 255
            )
            if not result.degraded:
                problems.append("degraded answer not flagged degraded")
        except OverloadedError:
            problems.append(
                "degraded mode shed a request despite a warm cache"
            )
        degraded_service.shutdown()
        cluster.shutdown()

    counters = registry.snapshot()["counters"]
    if not counters.get("serve.rejected", 0):
        problems.append("no serve.rejected counted anywhere in the leg")
    return {
        "requests": counters.get("serve.requests", 0),
        "rejected": counters.get("serve.rejected", 0),
        "degraded": counters.get("serve.degraded", 0),
        "timeouts": counters.get("serve.timeouts", 0),
        "peak_queue_depth": service.peak_queue_depth,
    }


def run_servecheck(seed: int = 0, records: int = 512) -> ServeCheckReport:
    """Run both serving-resilience legs for one seed."""
    problems: list[str] = []
    resume = _run_resume_leg(seed, records, problems)
    overload = _run_overload_leg(seed, min(records, 256), problems)
    return ServeCheckReport(
        seed=seed,
        records=records,
        converged=not problems,
        kill_at=resume["kill_at"],
        replayed=resume["replayed"],
        deduplicated=resume["deduplicated"],
        disconnects=resume["disconnects"],
        reconnects=resume["reconnects"],
        partial_batches=resume["partial_batches"],
        requests=overload["requests"],
        rejected=overload["rejected"],
        degraded=overload["degraded"],
        timeouts=overload["timeouts"],
        peak_queue_depth=overload["peak_queue_depth"],
        problems=tuple(problems),
    )


def format_report(report: ServeCheckReport) -> str:
    lines = [
        f"servecheck seed={report.seed} records={report.records}",
        f"  resume: killed at {report.kill_at}, replayed "
        f"{report.replayed}, deduplicated {report.deduplicated}",
        f"  feed faults: disconnects={report.disconnects} "
        f"reconnects={report.reconnects} "
        f"partial_batches={report.partial_batches}",
        f"  overload: requests={report.requests} "
        f"rejected={report.rejected} degraded={report.degraded} "
        f"timeouts={report.timeouts} "
        f"peak_queue_depth={report.peak_queue_depth}",
    ]
    if report.converged:
        lines.append(
            "  converged: crash-resume is bit-identical and overload "
            "sheds typed rejections without deadlock"
        )
    else:
        lines.append("  FAILED:")
        lines.extend(f"    - {problem}" for problem in report.problems)
    return "\n".join(lines)
