"""The cluster facade: the paper's 4+1-node testbed in miniature.

``LSMCluster`` wires a master (:class:`ClusterController`) to a set of
storage nodes over the simulated network, hash-partitions records by
primary key, and exposes dataset DDL/DML plus both ground-truth counts
(fanned out to every partition) and statistics-based estimates
(answered from the master's catalog alone -- the whole point of the
framework is that estimation touches no data nodes).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.config import StatisticsConfig
from repro.cluster.faults import FaultPlan
from repro.cluster.master import ClusterController
from repro.cluster.network import Network
from repro.cluster.node import DEFAULT_OUTBOX_LIMIT, RetryPolicy, StorageNode
from repro.cluster.partitioner import HashPartitioner
from repro.core.estimator import EstimateResult, NDVEstimate
from repro.errors import ClusterError
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.dataset import IndexSpec, secondary_index_name
from repro.lsm.memory import MemoryArbiter
from repro.lsm.merge_policy import MergePolicy
from repro.lsm.pacing import MergePacer
from repro.lsm.scheduler import DEFAULT_MAX_WORKERS, make_scheduler
from repro.lsm.tree import DEFAULT_MEMTABLE_CAPACITY
from repro.types import Domain

__all__ = ["LSMCluster"]


class LSMCluster:
    """A shared-nothing cluster of storage nodes plus one master.

    Defaults mirror the paper's setup: 4 slave nodes with 2 data
    partitions each (8 partitions total) and one master.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        partitions_per_node: int = 2,
        stats_config: StatisticsConfig | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
        durable: bool = False,
        wal_enabled: bool = True,
        crash_injector: CrashInjector | None = None,
        scheduler: str = "sync",
        scheduler_seed: int = 0,
        scheduler_workers: int = DEFAULT_MAX_WORKERS,
        merge_pacing_rate: float | None = None,
        memory_budget: int | None = None,
    ) -> None:
        if num_nodes < 1 or partitions_per_node < 1:
            raise ClusterError("cluster needs at least one node and partition")
        if memory_budget is not None and memory_budget < num_nodes:
            raise ClusterError(
                f"memory budget of {memory_budget} bytes cannot be split "
                f"across {num_nodes} nodes"
            )
        self.scheduler_mode = scheduler
        self.stats_config = (
            stats_config if stats_config is not None else StatisticsConfig()
        )
        self.network = Network(fault_plan=fault_plan)
        self.master = ClusterController(
            self.network, cache_merged=self.stats_config.cache_merged
        )
        self.nodes: list[StorageNode] = []
        self.memory_arbiters: list[MemoryArbiter] = []
        self._partition_owner: dict[int, StorageNode] = {}
        partition_id = 0
        for node_index in range(num_nodes):
            partition_ids = list(
                range(partition_id, partition_id + partitions_per_node)
            )
            partition_id += partitions_per_node
            node_id = f"nc{node_index + 1}"
            # One scheduler per node, rebuilt by the factory on restart.
            # Virtual mode derives a per-node seed so each node draws an
            # independent -- but replayable -- interleaving.
            scheduler_factory = (
                None
                if scheduler == "sync"
                else (
                    lambda node_id=node_id: make_scheduler(
                        scheduler,
                        seed=f"{scheduler_seed}:{node_id}",
                        max_workers=scheduler_workers,
                    )
                )
            )
            # Merge pacing is per node (the budget models a node-level
            # resource); the pause only arms under real worker threads,
            # so the deterministic modes keep identical timing.
            merge_pacer = (
                MergePacer(merge_pacing_rate, blocking=scheduler == "threads")
                if merge_pacing_rate is not None
                else None
            )
            # The node-level budget slice (a per-node resource, like
            # pacing): each node arbitrates its own write arena and
            # immutable pool, while the master cache's capacity is the
            # sum of every node's cache share (refreshed below and on
            # the estimate path).
            memory_arbiter = (
                MemoryArbiter(memory_budget // num_nodes)
                if memory_budget is not None
                else None
            )
            if memory_arbiter is not None:
                self.memory_arbiters.append(memory_arbiter)
            node = StorageNode(
                node_id,
                self.network,
                self.master.node_id,
                partition_ids,
                self.stats_config,
                retry_policy=retry_policy,
                outbox_limit=outbox_limit,
                durable=durable,
                wal_enabled=wal_enabled,
                crash_injector=crash_injector,
                scheduler_factory=scheduler_factory,
                merge_pacer=merge_pacer,
                memory_arbiter=memory_arbiter,
            )
            self.nodes.append(node)
            for owned in partition_ids:
                self._partition_owner[owned] = node
        self.partitioner = HashPartitioner(len(self._partition_owner))
        self._dataset_names: set[str] = set()
        self._primary_keys: dict[str, str] = {}
        self._index_specs: dict[str, list] = {}
        self._refresh_cache_capacity()

    @property
    def num_partitions(self) -> int:
        """Total data partitions across all nodes."""
        return len(self._partition_owner)

    # -- DDL -----------------------------------------------------------------

    def create_dataset(
        self,
        name: str,
        primary_key: str,
        primary_domain: Domain,
        indexes: Iterable[IndexSpec] = (),
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy_factory: Callable[[], MergePolicy] | None = None,
    ) -> None:
        """Create the dataset on every partition of every node."""
        if name in self._dataset_names:
            raise ClusterError(f"dataset {name!r} already exists")
        index_specs = list(indexes)
        for node in self.nodes:
            node.create_dataset(
                name,
                primary_key,
                primary_domain,
                index_specs,
                memtable_capacity=memtable_capacity,
                merge_policy_factory=merge_policy_factory,
            )
        self._dataset_names.add(name)
        self._primary_keys[name] = primary_key
        self._index_specs[name] = index_specs

    # -- DML (routed by primary key hash) ------------------------------------

    def insert(self, name: str, document: dict[str, Any]) -> None:
        node, partition_id = self._route(name, document)
        node.insert(name, partition_id, document)

    def insert_many(self, name: str, documents: Iterable[dict[str, Any]]) -> int:
        """Batched routed ingest: documents are grouped by owning
        partition first, then each group takes one batched hop into the
        node (preserving per-partition arrival order), so routing and
        dispatch costs are paid per group instead of per document."""
        self._check_dataset(name)
        pk_field = self._primary_keys[name]
        partition_of = self.partitioner.partition_of
        groups: dict[int, list[dict[str, Any]]] = {}
        for document in documents:
            groups.setdefault(partition_of(document[pk_field]), []).append(
                document
            )
        inserted = 0
        for partition_id, group in groups.items():
            inserted += self._partition_owner[partition_id].insert_many(
                name, partition_id, group
            )
        return inserted

    def update(self, name: str, document: dict[str, Any]) -> bool:
        node, partition_id = self._route(name, document)
        return node.update(name, partition_id, document)

    def delete(self, name: str, pk: Any) -> bool:
        partition_id = self.partitioner.partition_of(pk)
        return self._partition_owner[partition_id].delete(name, partition_id, pk)

    def get(self, name: str, pk: Any) -> dict[str, Any] | None:
        """Point lookup routed to the owning partition."""
        self._check_dataset(name)
        partition_id = self.partitioner.partition_of(pk)
        node = self._partition_owner[partition_id]
        return node.dataset(name, partition_id).get(pk)

    def bulkload(self, name: str, documents: Iterable[dict[str, Any]]) -> None:
        """Partitioned parallel load: split by PK hash, one bulkload per
        partition, each producing a single disk component."""
        self._check_dataset(name)
        pk_field = self._primary_keys[name]
        batches: dict[int, list[dict[str, Any]]] = {
            p: [] for p in self._partition_owner
        }
        for document in documents:
            batches[self.partitioner.partition_of(document[pk_field])].append(
                document
            )
        for partition_id, batch in batches.items():
            batch.sort(key=lambda doc: doc[pk_field])
            self._partition_owner[partition_id].bulkload(name, partition_id, batch)

    def flush_all(self, name: str) -> None:
        """Force a coordinated flush of the dataset on every partition."""
        self._check_dataset(name)
        for node in self.nodes:
            node.flush(name)

    def drain_maintenance(self) -> None:
        """Barrier: wait for all scheduled background flushes/merges.

        Re-raises the first background task failure on this thread, so
        callers see maintenance errors they would otherwise miss."""
        for node in self.nodes:
            node.drain_maintenance()
        # A write-heavy phase may have shrunk the cache share; apply the
        # new split at the quiescent point.
        self._refresh_cache_capacity()

    def shutdown(self) -> None:
        """Drain outstanding maintenance and stop the worker pools."""
        for node in self.nodes:
            node.shutdown()

    # -- queries --------------------------------------------------------------

    def count_secondary_range(
        self, name: str, index_name: str, lo: Any, hi: Any
    ) -> int:
        """Ground truth: fan the count out to every node and sum."""
        self._check_dataset(name)
        return sum(
            node.count_secondary_range(name, index_name, lo, hi)
            for node in self.nodes
        )

    def count_records(self, name: str) -> int:
        """Cluster-wide live record count."""
        self._check_dataset(name)
        return sum(node.count_records(name) for node in self.nodes)

    def estimate(self, name: str, index_name: str, lo: int, hi: int) -> float:
        """Statistics-based estimate, answered by the master alone."""
        return self.estimate_detailed(name, index_name, lo, hi).estimate

    def estimate_detailed(
        self, name: str, index_name: str, lo: int, hi: int
    ) -> EstimateResult:
        """Estimate with overhead/caching diagnostics."""
        self._check_dataset(name)
        full_name = (
            secondary_index_name(name, "primary")
            if index_name == "primary"
            else secondary_index_name(name, index_name)
        )
        # Estimate traffic feeds the adaptive split: an estimate-heavy
        # phase grows every node's cache share, and the master cache's
        # capacity tracks the new sum.
        if self.memory_arbiters:
            for arbiter in self.memory_arbiters:
                arbiter.note_estimate()
            self._refresh_cache_capacity()
        return self.master.estimate_detailed(full_name, lo, hi)

    def estimate_ndv(self, name: str, index_name: str = "primary") -> float:
        """Cluster-wide distinct-value estimate, answered by the master
        alone from the lazily unioned ``#ndv`` sketches."""
        return self.estimate_ndv_detailed(name, index_name).ndv

    def estimate_ndv_detailed(
        self, name: str, index_name: str = "primary"
    ) -> NDVEstimate:
        """NDV estimate with the anti-matter interval and diagnostics."""
        self._check_dataset(name)
        full_name = secondary_index_name(name, index_name)
        # NDV queries are estimate traffic too: feed the same adaptive
        # cache-share signal as range estimates.
        if self.memory_arbiters:
            for arbiter in self.memory_arbiters:
                arbiter.note_estimate()
            self._refresh_cache_capacity()
        return self.master.estimate_ndv_detailed(full_name)

    def estimate_degraded(
        self, name: str, index_name: str, lo: int, hi: int
    ) -> EstimateResult | None:
        """A degraded (possibly-stale) estimate served under overload.

        Answers from the master's cached merged synopsis regardless of
        staleness (``None`` when nothing is cached).  Deliberately does
        *not* feed the memory arbiters' estimate-traffic signal: shed
        load must not grow the cache share.
        """
        self._check_dataset(name)
        full_name = (
            secondary_index_name(name, "primary")
            if index_name == "primary"
            else secondary_index_name(name, index_name)
        )
        return self.master.estimate_degraded(full_name, lo, hi)

    def index_specs(self, name: str) -> list:
        """The index declarations of a dataset (as created)."""
        self._check_dataset(name)
        return list(self._index_specs[name])

    def datasets_of(self, name: str):
        """Every partition's dataset instance (for physical execution)."""
        self._check_dataset(name)
        for node in self.nodes:
            for partition_id in node.partition_ids:
                yield node.dataset(name, partition_id)

    def component_count(self, name: str, index_name: str) -> int:
        """Live disk components of one index across the cluster."""
        self._check_dataset(name)
        return sum(node.component_count(name, index_name) for node in self.nodes)

    # -- fault recovery -------------------------------------------------------

    def restart_nodes(self) -> int:
        """Crash-restart every storage node (the cluster-wide power
        failure); returns the total number of orphan files GC'd.

        Durable nodes rebuild their partitions from manifest and WAL
        and republish re-derived statistics under a fresh epoch; call
        :meth:`recover_statistics` afterwards to drain the republished
        backlog into the master's catalog.
        """
        return sum(len(node.restart()) for node in self.nodes)

    def statistics_backlog(self) -> int:
        """Statistics messages parked in node outboxes, cluster-wide."""
        return sum(node.statistics_backlog() for node in self.nodes)

    def recover_statistics(self, max_rounds: int = 1000) -> int:
        """Drain the wire and flush every node's statistics backlog.

        The graceful-degradation loop: ingestion may have parked
        messages while the master was unreachable, and a faulty wire
        may still hold reordered/delayed traffic.  Alternating drain
        and flush rounds until both are empty converges the catalog to
        the state a perfect wire would have produced (retries advance
        the fault plan's tick clock, so unavailability windows pass).

        Returns the number of rounds used; raises
        :class:`~repro.errors.ClusterError` when the backlog has not
        cleared after ``max_rounds`` (a fault plan so hostile that
        delivery never succeeds).
        """
        for round_number in range(1, max_rounds + 1):
            self.network.drain()
            remaining = sum(
                node.flush_statistics_outboxes() for node in self.nodes
            )
            if remaining == 0 and self.network.pending_count == 0:
                return round_number
        backlog = ", ".join(
            f"{node.node_id}={node.statistics_backlog()}" for node in self.nodes
        )
        raise ClusterError(
            f"statistics backlog did not clear within {max_rounds} recovery "
            f"rounds ({self.statistics_backlog()} messages still parked: "
            f"{backlog})"
        )

    # -- memory arbitration ---------------------------------------------------

    def memory_accounted_bytes(self) -> int:
        """Accounted bytes across every node's arbiter plus the master
        cache (0 without a budget)."""
        total = sum(a.accounted_bytes() for a in self.memory_arbiters)
        if self.memory_arbiters and self.master.cache is not None:
            total += self.master.cache.memory_bytes()
        return total

    def memory_peak_bytes(self) -> int:
        """Sum of per-node accounted high-water marks."""
        return sum(a.peak_bytes() for a in self.memory_arbiters)

    def memory_breakdown(self) -> list[dict[str, Any]]:
        """Per-node arbiter snapshots (pools, shares, usage)."""
        return [a.breakdown() for a in self.memory_arbiters]

    def _refresh_cache_capacity(self) -> None:
        """Point the master cache at the sum of per-node cache shares."""
        if self.memory_arbiters:
            self.master.set_cache_capacity(
                sum(a.cache_pool_bytes() for a in self.memory_arbiters)
            )

    # -- internals --------------------------------------------------------------

    def _route(self, name: str, document: dict[str, Any]) -> tuple[StorageNode, int]:
        self._check_dataset(name)
        pk = document[self._primary_keys[name]]
        partition_id = self.partitioner.partition_of(pk)
        return self._partition_owner[partition_id], partition_id

    def _check_dataset(self, name: str) -> None:
        if name not in self._dataset_names:
            raise ClusterError(f"unknown dataset {name!r}")
