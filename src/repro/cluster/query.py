"""Distributed range-query execution driven by master-side statistics.

Closes the loop the paper motivates in Section 3.6: the cluster
controller plans a range query *using nothing but its catalogued
synopses* -- the whole point of shipping statistics to the master is
that planning touches no storage node -- and then fans the chosen
physical plan (index probe or full scan) out to every partition.

The planner needs two cardinalities, and both come from statistics:
the predicate's estimate, and the dataset's total size (the full-domain
estimate on the same index).  No ground-truth counts are consulted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.cluster.cluster import LSMCluster
from repro.errors import QueryError
from repro.lsm.dataset import IndexSpec, secondary_index_name
from repro.lsm.storage import IOStats
from repro.query.executor import AccessMethod, QueryExecutor
from repro.query.optimizer import CostModel
from repro.query.predicate import RangePredicate

__all__ = ["DistributedQueryResult", "DistributedQueryExecutor"]


@dataclass(frozen=True)
class DistributedQueryResult:
    """Outcome of one cluster-wide range query."""

    records: list[dict[str, Any]]
    method: AccessMethod
    estimated_cardinality: float
    estimated_total: float
    partitions_executed: int
    io: IOStats
    elapsed_seconds: float

    @property
    def cardinality(self) -> int:
        """Number of qualifying records across the cluster."""
        return len(self.records)


class DistributedQueryExecutor:
    """Plans on the master, executes on every partition."""

    def __init__(
        self, cluster: LSMCluster, cost_model: CostModel | None = None
    ) -> None:
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def _index_for(self, dataset_name: str, field: str) -> IndexSpec:
        for spec in self.cluster.index_specs(dataset_name):
            if isinstance(spec, IndexSpec) and spec.field == field:
                return spec
        raise QueryError(
            f"dataset {dataset_name!r} has no single-field index on "
            f"{field!r}"
        )

    def plan(
        self, dataset_name: str, predicate: RangePredicate
    ) -> tuple[AccessMethod, float, float]:
        """Choose the access path from master-side statistics alone.

        Returns ``(method, predicate_estimate, total_estimate)``.
        """
        spec = self._index_for(dataset_name, predicate.field)
        index_name = secondary_index_name(dataset_name, spec.name)
        estimate = self.cluster.master.estimate(
            index_name, predicate.lo, predicate.hi
        )
        total = self.cluster.master.estimate(
            index_name, spec.domain.lo, spec.domain.hi
        )
        probe_cost = self.cost_model.index_probe_cost(estimate)
        scan_cost = self.cost_model.full_scan_cost(total)
        method = (
            AccessMethod.INDEX_PROBE
            if probe_cost <= scan_cost
            else AccessMethod.FULL_SCAN
        )
        return method, estimate, total

    def execute(
        self,
        dataset_name: str,
        predicate: RangePredicate,
        method: AccessMethod | None = None,
    ) -> DistributedQueryResult:
        """Plan (unless ``method`` forces a path) and execute everywhere."""
        if method is None:
            method, estimate, total = self.plan(dataset_name, predicate)
        else:
            _planned, estimate, total = self.plan(dataset_name, predicate)
        started = time.perf_counter()
        records: list[dict[str, Any]] = []
        io = IOStats()
        partitions = 0
        for dataset in self.cluster.datasets_of(dataset_name):
            result = QueryExecutor(dataset).execute(predicate, method)
            records.extend(result.records)
            io = io + result.io
            partitions += 1
        return DistributedQueryResult(
            records=records,
            method=method,
            estimated_cardinality=estimate,
            estimated_total=total,
            partitions_executed=partitions,
            io=io,
            elapsed_seconds=time.perf_counter() - started,
        )
