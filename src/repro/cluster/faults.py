"""Seeded fault plans for the simulated statistics network.

The paper's statistics protocol was evaluated on a perfect wire:
synchronous, ordered, exactly-once.  Production transports misbehave --
Luo & Carey's stability work argues LSM subsystems must be exercised
under adverse conditions, not just happy paths -- so this module lets a
test (or the ``repro faultcheck`` CLI) describe exactly *how* the wire
should misbehave, reproducibly.

A :class:`FaultPlan` is consulted by :class:`~repro.cluster.network.Network`
on every send.  It combines:

* per-link (source, destination) fault probabilities -- drop,
  duplicate, reorder and delay (:class:`LinkFaults`), with a
  cluster-wide default and per-link overrides;
* node-unavailability windows expressed in network *ticks* (one tick
  per send attempt -- the simulation's clock), during which every send
  to that node fails;
* a single seeded :class:`random.Random` driving all sampling, so a
  chaos run is bit-reproducible from its seed.

The plan is pure policy: it decides what should happen to a message,
while the :class:`~repro.cluster.network.Network` executes the decision
(raising :class:`~repro.errors.NetworkUnavailableError` for losses,
holding messages back for reordering/delay, double-delivering
duplicates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "LinkFaults",
    "FaultDecision",
    "FaultPlan",
    "FeedFaults",
    "FeedFaultDecision",
    "FeedFaultPlan",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Fault probabilities of one directed network link.

    Attributes:
        drop: Chance a send is lost in flight (sender sees a timeout).
        duplicate: Chance a delivered message arrives twice.
        reorder: Chance a message is held back and delivered after the
            link's subsequent traffic (swapped past later sends).
        delay: Chance a message is held for several ticks before
            delivery (a longer reordering).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay"):
            _check_probability(name, getattr(self, name))

    @property
    def faulty(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return bool(self.drop or self.duplicate or self.reorder or self.delay)


class _Disposition(Enum):
    DELIVER = "deliver"
    DROP = "drop"
    HOLD = "hold"


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one send attempt.

    ``release_tick`` is meaningful only for held (reordered/delayed)
    messages: the network delivers the message after the first send
    whose tick is >= ``release_tick``.
    """

    disposition: _Disposition
    duplicate: bool = False
    release_tick: int = 0
    reason: str = ""

    DELIVER = _Disposition.DELIVER
    DROP = _Disposition.DROP
    HOLD = _Disposition.HOLD


@dataclass
class FaultPlan:
    """A seeded, per-link description of how the wire misbehaves.

    Args:
        seed: Seed of the RNG driving every probabilistic choice.
        default: Fault probabilities applied to links without overrides.
        links: Per ``(source, destination)`` overrides.
        unavailable: Per node, half-open tick windows ``[start, end)``
            during which every send to the node fails.
        max_delay_ticks: Upper bound (inclusive) of the sampled hold
            duration of delayed messages, in ticks.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    links: dict[tuple[str, str], LinkFaults] = field(default_factory=dict)
    unavailable: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    max_delay_ticks: int = 8

    def __post_init__(self) -> None:
        if self.max_delay_ticks < 1:
            raise ValueError(
                f"max_delay_ticks must be >= 1, got {self.max_delay_ticks}"
            )
        for node, windows in self.unavailable.items():
            for start, end in windows:
                if start < 0 or end <= start:
                    raise ValueError(
                        f"invalid unavailability window [{start}, {end}) "
                        f"for node {node!r}"
                    )
        self._rng = random.Random(self.seed)

    def faults_for(self, source: str, destination: str) -> LinkFaults:
        """The fault probabilities of one directed link."""
        return self.links.get((source, destination), self.default)

    def unavailable_at(self, node_id: str, tick: int) -> bool:
        """Whether ``node_id`` refuses traffic at ``tick``."""
        return any(
            start <= tick < end
            for start, end in self.unavailable.get(node_id, ())
        )

    def decide(self, source: str, destination: str, tick: int) -> FaultDecision:
        """Sample the fate of one send attempt at ``tick``.

        Consumes RNG state; calling order is the reproducibility
        contract, which the synchronous network guarantees.
        """
        if self.unavailable_at(destination, tick):
            return FaultDecision(FaultDecision.DROP, reason="unavailable")
        faults = self.faults_for(source, destination)
        if not faults.faulty:
            return FaultDecision(FaultDecision.DELIVER)
        rng = self._rng
        if faults.drop and rng.random() < faults.drop:
            return FaultDecision(FaultDecision.DROP, reason="dropped")
        duplicate = bool(faults.duplicate) and rng.random() < faults.duplicate
        if faults.delay and rng.random() < faults.delay:
            release = tick + 1 + rng.randint(1, self.max_delay_ticks)
            return FaultDecision(
                FaultDecision.HOLD, duplicate, release, reason="delayed"
            )
        if faults.reorder and rng.random() < faults.reorder:
            return FaultDecision(
                FaultDecision.HOLD, duplicate, tick + 1, reason="reordered"
            )
        return FaultDecision(FaultDecision.DELIVER, duplicate)


@dataclass(frozen=True)
class FeedFaults:
    """Fault probabilities of one upstream data feed.

    The feed transport misbehaves differently from the statistics wire:
    it does not reorder (a feed is a log, delivered in sequence), but it
    disconnects mid-batch and re-delivers records after a reconnect.

    Attributes:
        disconnect: Chance, per delivered record, that the transport
            drops *after* this record -- the rest of the batch is lost
            (a partial batch) and the next read raises
            :class:`~repro.errors.FeedDisconnectedError` until the
            consumer reconnects.
        duplicate: Chance a delivered record is immediately delivered
            a second time (at-least-once transport re-send).
    """

    disconnect: float = 0.0
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("disconnect", "duplicate"):
            _check_probability(name, getattr(self, name))

    @property
    def faulty(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return bool(self.disconnect or self.duplicate)


@dataclass(frozen=True)
class FeedFaultDecision:
    """What the plan decided for one delivered feed record."""

    duplicate: bool = False
    disconnect_after: bool = False


@dataclass
class FeedFaultPlan:
    """A seeded description of how a feed transport misbehaves.

    Mirrors :class:`FaultPlan`'s discipline: one seeded
    :class:`random.Random` drives all sampling, consumed once per
    delivered record, so a chaos run is bit-reproducible from its seed.
    The RNG stream is namespaced (``feed:<seed>``) so composing feed
    faults with a wire :class:`FaultPlan` of the same seed in one run
    does not correlate their choices.
    """

    seed: int = 0
    faults: FeedFaults = field(default_factory=FeedFaults)

    def __post_init__(self) -> None:
        self._rng = random.Random(f"feed:{self.seed}")

    def decide(self) -> FeedFaultDecision:
        """Sample the fate of one delivered record.

        Consumes RNG state; feed sources call this exactly once per
        record they hand out (replays after a reconnect included), which
        is the reproducibility contract.
        """
        faults = self.faults
        if not faults.faulty:
            return FeedFaultDecision()
        rng = self._rng
        duplicate = bool(faults.duplicate) and rng.random() < faults.duplicate
        disconnect = bool(faults.disconnect) and rng.random() < faults.disconnect
        return FeedFaultDecision(duplicate=duplicate, disconnect_after=disconnect)
