"""Data feeds: continuous ingestion channels (paper Section 4.1).

AsterixDB's *data feeds* stream external records into a dataset,
triggering the full LSM lifecycle.  Three feed flavours are simulated:

* :class:`SocketFeed` -- push model: records arrive one at a time over
  a byte-counted channel, as from a Twitter-Firehose-style TCP source;
* :class:`FileFeed` -- pull model: records are read back from local
  JSON-lines files;
* :class:`ChangeableFeed` -- the special feed of Section 4.3.4 whose
  records are *marked* as insert/update/delete operations, with the
  ingestion broken into stages and a forced flush after each stage so
  that later updates/deletes actually generate anti-matter against
  already-persisted components (rather than being silently resolved in
  memory).

On top of these one-shot feeds sits the *resumable* serving layer:

* cursor-aware sources -- :meth:`FileFeed.read`,
  :class:`ReplayableStreamFeed` (socket-style, replayable from any
  sequence number, optionally fault-injected) and
  :class:`ChangestreamFeed` (a replayable log of marked operations) all
  deliver ``(seqno, record)`` pairs starting *after* a given position;
* :class:`FeedCursorStore` -- durable per-feed cursors in the node
  superblock (:class:`~repro.lsm.storage.SimulatedDisk`), so a crash
  loses at most the uncheckpointed tail;
* :class:`ResumableFeedConsumer` -- drives a source into an
  :class:`IngestTarget` with at-least-once replay and idempotent dedup
  keyed by ``(feed_id, seqno)``, checkpointing on a configurable
  cadence and reconnecting with shared
  :class:`~repro.util.retry.RetryPolicy` backoff after injected
  disconnects.

The durability model: ``mark_applied`` runs once per applied record,
standing in for the sequence number riding the operation's WAL entry
(group commit of one => an acked record is a durable record), while the
*cursor* is the cheaper read-resume hint flushed every
``checkpoint_every`` records.  After a crash the consumer re-reads from
the cursor and skips everything at or below the applied high-water mark
-- replayed, not re-applied -- which is what makes recovery converge
bit-identically with an uninterrupted run.
"""

from __future__ import annotations

import enum
import json
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol

from repro.cluster.faults import FeedFaultPlan
from repro.errors import ClusterError, FeedDisconnectedError, FeedError
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import get_registry, sanitize_segment
from repro.util.retry import RetryPolicy

__all__ = [
    "FeedOperation",
    "FeedRecord",
    "IngestTarget",
    "DatasetFeedAdapter",
    "SocketFeed",
    "FileFeed",
    "ChangeableFeed",
    "FeedCursorStore",
    "ReplayableStreamFeed",
    "ChangestreamFeed",
    "FeedConsumerStats",
    "ResumableFeedConsumer",
]


class FeedOperation(enum.Enum):
    """The operation marker on a changeable-feed record."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class FeedRecord:
    """One marked record flowing through a changeable feed."""

    operation: FeedOperation
    document: dict[str, Any]


class IngestTarget(Protocol):
    """What a feed needs from its destination (a dataset or cluster).

    ``name`` parameters are dataset names; :class:`~repro.lsm.dataset.
    Dataset` does not take them, so the cluster facade and the
    single-dataset adapter below both satisfy this protocol instead.
    """

    def insert(self, document: dict[str, Any]) -> None: ...

    def update(self, document: dict[str, Any]) -> bool: ...

    def delete(self, pk: Any) -> bool: ...

    def flush(self) -> None: ...


class DatasetFeedAdapter:
    """Adapts an :class:`LSMCluster` dataset to the ingest protocol."""

    def __init__(self, cluster: Any, dataset_name: str) -> None:
        self._cluster = cluster
        self._name = dataset_name

    def insert(self, document: dict[str, Any]) -> None:
        self._cluster.insert(self._name, document)

    def update(self, document: dict[str, Any]) -> bool:
        return self._cluster.update(self._name, document)

    def delete(self, pk: Any) -> bool:
        return self._cluster.delete(self._name, pk)

    def flush(self) -> None:
        self._cluster.flush_all(self._name)


class SocketFeed:
    """Push-based feed: each record is 'received' over the wire.

    The per-record serialisation models the socket traffic of the
    paper's push feed; ``bytes_received`` is the channel volume.
    Malformed records -- anything that is not a JSON-serialisable dict
    -- are skipped and counted (``invalid_records`` /
    ``feed.records.invalid``) rather than aborting the stream, unless
    ``strict`` is set, in which case they raise
    :class:`~repro.errors.FeedError`.
    """

    def __init__(
        self, records: Iterable[dict[str, Any]], strict: bool = False
    ) -> None:
        self._records = records
        self.strict = strict
        self.records_ingested = 0
        self.bytes_received = 0
        self.invalid_records = 0
        self._m_invalid = get_registry().counter("feed.records.invalid")

    def run(self, target: IngestTarget) -> int:
        """Stream every record into the target; returns the count."""
        for document in self._records:
            try:
                if not isinstance(document, dict):
                    raise TypeError(f"expected dict, got {type(document).__name__}")
                payload = json.dumps(document, separators=(",", ":")).encode()
            except (TypeError, ValueError) as exc:
                if self.strict:
                    raise FeedError(f"malformed socket record: {exc}") from exc
                self.invalid_records += 1
                self._m_invalid.inc()
                continue
            self.bytes_received += len(payload)
            target.insert(document)
            self.records_ingested += 1
        return self.records_ingested


class FileFeed:
    """Pull-based feed reading JSON-lines files from local storage.

    Malformed lines (truncated JSON, garbage bytes, non-object values)
    are skipped and counted (``invalid_records`` /
    ``feed.records.invalid``) so one corrupt line cannot abort a
    multi-gigabyte backfill; ``strict=True`` restores fail-fast
    behaviour via :class:`~repro.errors.FeedError`.  A missing file is
    always an error -- that is a misconfiguration, not dirty data.
    """

    def __init__(
        self,
        paths: Iterable[str | Path],
        feed_id: str | None = None,
        strict: bool = False,
    ) -> None:
        self.paths = [Path(p) for p in paths]
        self.feed_id = feed_id or "file_" + sanitize_segment(
            self.paths[0].stem if self.paths else "empty"
        )
        self.strict = strict
        self.records_ingested = 0
        self.invalid_records = 0
        self._m_invalid = get_registry().counter("feed.records.invalid")

    @staticmethod
    def write_file(path: str | Path, records: Iterable[dict[str, Any]]) -> int:
        """Materialise records as a JSON-lines feed file; returns count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for document in records:
                handle.write(json.dumps(document, separators=(",", ":")))
                handle.write("\n")
                count += 1
        return count

    @property
    def head_seqno(self) -> None:
        """Unknown until the files are read (finite source)."""
        return None

    @property
    def closed(self) -> bool:
        """File feeds are finite: exhausting them ends a tail."""
        return True

    def read(self, after: int = 0) -> Iterator[tuple[int, FeedRecord]]:
        """Yield ``(seqno, record)`` for every valid line past ``after``.

        Sequence numbers are 1-based positions among the *valid*
        records across all files, so a cursor taken from one run
        resumes correctly in the next as long as the files are
        immutable (the contract of a feed file).
        """
        seqno = 0
        for path in self.paths:
            if not path.exists():
                raise FeedError(f"feed file {path} does not exist")
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        document = json.loads(line)
                        if not isinstance(document, dict):
                            raise ValueError(
                                f"expected object, got {type(document).__name__}"
                            )
                    except ValueError as exc:
                        if self.strict:
                            raise FeedError(
                                f"malformed feed line in {path}: {exc}"
                            ) from exc
                        self.invalid_records += 1
                        self._m_invalid.inc()
                        continue
                    seqno += 1
                    if seqno > after:
                        yield seqno, FeedRecord(FeedOperation.INSERT, document)

    def run(self, target: IngestTarget) -> int:
        """Pull every record from the files into the target."""
        for _seqno, record in self.read():
            target.insert(record.document)
            self.records_ingested += 1
        return self.records_ingested


class ChangeableFeed:
    """A feed of marked insert/update/delete records, applied in stages.

    After each stage of ``stage_size`` operations the target is force-
    flushed, so updates and deletes arriving in later stages reference
    records already persisted on disk and therefore produce anti-matter
    (the paper's staging trick in Section 4.3.4).
    """

    def __init__(
        self, records: Iterable[FeedRecord], stage_size: int
    ) -> None:
        if stage_size < 1:
            raise ClusterError(f"stage_size must be >= 1, got {stage_size}")
        self._records = records
        self.stage_size = stage_size
        self.counts = {op: 0 for op in FeedOperation}
        self.stages_completed = 0
        self.failed_operations = 0

    def run(
        self, target: IngestTarget, pk_field: str = "id"
    ) -> dict[FeedOperation, int]:
        """Apply all operations; returns per-operation counts."""
        in_stage = 0
        for record in self._records:
            if record.operation is FeedOperation.INSERT:
                target.insert(record.document)
            elif record.operation is FeedOperation.UPDATE:
                if not target.update(record.document):
                    self.failed_operations += 1
                    continue
            else:
                if not target.delete(record.document[pk_field]):
                    self.failed_operations += 1
                    continue
            self.counts[record.operation] += 1
            in_stage += 1
            if in_stage >= self.stage_size:
                target.flush()
                self.stages_completed += 1
                in_stage = 0
        target.flush()
        return dict(self.counts)


class FeedCursorStore:
    """Durable per-feed cursors in a node's superblock.

    Two keys per feed, with deliberately different write cadences:

    * ``feed.<id>.applied`` -- the high-water mark of applied sequence
      numbers, advanced on *every* apply.  It models the seqno riding
      the operation's WAL entry (group commit of one: acked == durable),
      so it survives a crash exactly as far as the data does and is the
      idempotence floor for replay.
    * ``feed.<id>.cursor`` -- the read-resume position, flushed only
      every ``checkpoint_every`` records.  A crash re-reads from here;
      everything between cursor and applied is replayed and skipped.
    """

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk

    @staticmethod
    def _key(feed_id: str, kind: str) -> str:
        return f"feed.{feed_id}.{kind}"

    def cursor(self, feed_id: str) -> int:
        """The durable read-resume position (0 = start of feed)."""
        return int(self._disk.superblock_get(self._key(feed_id, "cursor"), 0))

    def applied(self, feed_id: str) -> int:
        """The durable applied high-water mark (0 = nothing applied)."""
        return int(self._disk.superblock_get(self._key(feed_id, "applied"), 0))

    def checkpoint(self, feed_id: str, seqno: int) -> None:
        """Persist the read-resume cursor."""
        self._disk.superblock_put(self._key(feed_id, "cursor"), int(seqno))

    def mark_applied(self, feed_id: str, seqno: int) -> None:
        """Persist the applied high-water mark (per-apply)."""
        self._disk.superblock_put(self._key(feed_id, "applied"), int(seqno))


class _ReplayableLog:
    """Shared machinery of the replayable stream sources.

    An append-only in-memory log of records with 1-based contiguous
    sequence numbers.  ``read(after)`` re-delivers any suffix, which is
    what lets a consumer resume from a durable cursor; an optional
    :class:`~repro.cluster.faults.FeedFaultPlan` injects duplicate
    deliveries and mid-batch disconnects on the way out.
    """

    def __init__(
        self,
        feed_id: str,
        fault_plan: FeedFaultPlan | None = None,
        batch_size: int = 32,
    ) -> None:
        if batch_size < 1:
            raise FeedError(f"batch_size must be >= 1, got {batch_size}")
        self.feed_id = feed_id
        self.batch_size = batch_size
        self._plan = fault_plan
        self._log: list[FeedRecord] = []
        self._cond = threading.Condition()
        self._closed = False
        self._connected = True
        self.duplicates_delivered = 0
        self.partial_batches = 0
        self._m_partial = get_registry().counter("feed.batches.partial")

    @property
    def head_seqno(self) -> int:
        """Sequence number of the newest appended record (0 if empty)."""
        with self._cond:
            return len(self._log)

    @property
    def closed(self) -> bool:
        """Whether the producer declared the stream finished."""
        with self._cond:
            return self._closed

    @property
    def connected(self) -> bool:
        """Whether the transport is currently up."""
        with self._cond:
            return self._connected

    def close(self) -> None:
        """Producer side: no more records will be appended."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reconnect(self) -> None:
        """Re-establish the transport after a disconnect."""
        with self._cond:
            self._connected = True

    def wait_for(self, after: int, timeout: float = 0.05) -> None:
        """Block until a record past ``after`` exists or the stream
        closes (bounded by ``timeout``) -- the tail consumer's poll."""
        with self._cond:
            if len(self._log) > after or self._closed:
                return
            self._cond.wait(timeout)

    def _append_record(self, record: FeedRecord) -> int:
        with self._cond:
            if self._closed:
                raise FeedError(f"feed {self.feed_id} is closed")
            self._log.append(record)
            self._cond.notify_all()
            return len(self._log)

    def _on_deliver(self, record: FeedRecord) -> None:
        """Subclass hook, called once per delivered copy of a record."""

    def read(self, after: int = 0) -> Iterator[tuple[int, FeedRecord]]:
        """Deliver records past ``after``, batch by batch.

        Raises :class:`~repro.errors.FeedDisconnectedError` when the
        fault plan cuts the transport (losing the rest of the batch) or
        when called while disconnected; the consumer reconnects and
        re-reads from its position.
        """
        with self._cond:
            if not self._connected:
                raise FeedDisconnectedError(
                    f"feed {self.feed_id} is disconnected"
                )
        position = max(0, after)
        in_batch = 0
        while True:
            with self._cond:
                if position >= len(self._log):
                    return
                record = self._log[position]
            seqno = position + 1
            position += 1
            in_batch += 1
            decision = self._plan.decide() if self._plan is not None else None
            self._on_deliver(record)
            yield seqno, record
            if decision is not None and decision.duplicate:
                self.duplicates_delivered += 1
                self._on_deliver(record)
                yield seqno, record
            if decision is not None and decision.disconnect_after:
                with self._cond:
                    self._connected = False
                if in_batch < self.batch_size:
                    self.partial_batches += 1
                    self._m_partial.inc()
                raise FeedDisconnectedError(
                    f"feed {self.feed_id} disconnected after record {seqno}"
                )
            if in_batch >= self.batch_size:
                in_batch = 0


class ReplayableStreamFeed(_ReplayableLog):
    """Socket-style push feed that can replay any suffix of its log.

    The durable-cursor counterpart of :class:`SocketFeed`: records are
    byte-counted as they are (re)delivered, a producer thread can keep
    :meth:`append`-ing while a consumer tails, and an optional fault
    plan injects duplicates and partial-batch disconnects.
    """

    def __init__(
        self,
        feed_id: str,
        records: Iterable[dict[str, Any]] = (),
        fault_plan: FeedFaultPlan | None = None,
        batch_size: int = 32,
    ) -> None:
        super().__init__(feed_id, fault_plan, batch_size)
        self.bytes_received = 0
        for document in records:
            self.append(document)

    def append(self, document: dict[str, Any]) -> int:
        """Producer side: publish one document; returns its seqno."""
        return self._append_record(FeedRecord(FeedOperation.INSERT, document))

    def _on_deliver(self, record: FeedRecord) -> None:
        self.bytes_received += len(
            json.dumps(record.document, separators=(",", ":")).encode()
        )


class ChangestreamFeed(_ReplayableLog):
    """A replayable log of *marked* insert/update/delete operations.

    The resumable counterpart of :class:`ChangeableFeed`: the log
    carries :class:`FeedRecord` operations, so replaying a suffix after
    a crash re-delivers updates and deletes (which the consumer then
    deduplicates against its applied high-water mark).
    """

    def __init__(
        self,
        feed_id: str,
        records: Iterable[FeedRecord] = (),
        fault_plan: FeedFaultPlan | None = None,
        batch_size: int = 32,
    ) -> None:
        super().__init__(feed_id, fault_plan, batch_size)
        for record in records:
            self.append(record)

    def append(self, record: FeedRecord) -> int:
        """Producer side: publish one operation; returns its seqno."""
        return self._append_record(record)


@dataclass(frozen=True)
class FeedConsumerStats:
    """What one :meth:`ResumableFeedConsumer.run` call did."""

    applied: int
    replayed: int
    deduplicated: int
    failed: int
    backfilled: int
    tailed: int
    checkpoints: int
    disconnects: int
    reconnects: int


class ResumableFeedConsumer:
    """Drives a cursor-aware source into a target, crash-resumably.

    One consumer owns one feed: it reads ``(seqno, record)`` pairs from
    the source starting after the durable cursor, applies them to the
    target with idempotent dedup keyed by ``(feed_id, seqno)``, and
    checkpoints the cursor every ``checkpoint_every`` applied records.
    Injected disconnects are retried with the shared
    :class:`~repro.util.retry.RetryPolicy` (attempt budget resets on
    progress, backoff jitter drawn from a feed-seeded RNG); exhausting
    the budget raises :class:`~repro.errors.FeedError`.

    ``run(stop_after=N)`` models a crash: the consumer stops mid-feed
    *without* the final checkpoint, exactly as a killed process would.
    A later consumer over the same cursor store resumes from the last
    checkpoint, replays the gap (counted as ``feed.resume.replayed``)
    and converges bit-identically with an uninterrupted run.

    ``flush_every`` forces a target flush at fixed *log positions*
    (multiples of the applied high-water mark), so an interrupted-and-
    resumed run produces the same disk-component boundaries as an
    uninterrupted one -- the property the ``repro servecheck`` harness
    verifies.
    """

    def __init__(
        self,
        source: Any,
        target: IngestTarget,
        cursor_store: FeedCursorStore,
        checkpoint_every: int = 64,
        retry_policy: RetryPolicy | None = None,
        pk_field: str = "id",
        flush_every: int | None = None,
        poll_interval: float = 0.002,
    ) -> None:
        if checkpoint_every < 1:
            raise FeedError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if flush_every is not None and flush_every < 1:
            raise FeedError(f"flush_every must be >= 1, got {flush_every}")
        self._source = source
        self._target = target
        self._cursor_store = cursor_store
        self.feed_id: str = source.feed_id
        self.checkpoint_every = checkpoint_every
        self.retry_policy = retry_policy or RetryPolicy()
        self.pk_field = pk_field
        self.flush_every = flush_every
        self.poll_interval = poll_interval
        self._rng = random.Random(f"consumer:{self.feed_id}")
        obs = get_registry()
        self._m_applied = obs.counter("feed.records.applied")
        self._m_replayed = obs.counter("feed.resume.replayed")
        self._m_dedup = obs.counter("feed.records.deduplicated")
        self._m_failed = obs.counter("feed.records.failed")
        self._m_backfilled = obs.counter("feed.records.backfilled")
        self._m_tailed = obs.counter("feed.records.tailed")
        self._m_checkpoints = obs.counter("feed.cursor.checkpoints")
        self._m_disconnects = obs.counter("feed.source.disconnects")
        self._m_reconnects = obs.counter("feed.source.reconnects")

    def _apply(self, record: FeedRecord) -> bool:
        if record.operation is FeedOperation.INSERT:
            self._target.insert(record.document)
            return True
        if record.operation is FeedOperation.UPDATE:
            return self._target.update(record.document)
        return self._target.delete(record.document[self.pk_field])

    def run(
        self, tail: bool = False, stop_after: int | None = None
    ) -> FeedConsumerStats:
        """Consume the feed from the durable cursor.

        Args:
            tail: After exhausting the backlog, keep waiting for newly
                appended records until the source is closed
                (backfill-then-tail mode).  Finite sources (files)
                report ``closed`` and end the tail naturally.
            stop_after: Stop after applying this many records *without*
                writing the final checkpoint -- the simulated
                mid-feed crash used by the servecheck harness.
        """
        position = self._cursor_store.cursor(self.feed_id)
        resume_floor = self._cursor_store.applied(self.feed_id)
        applied_mark = resume_floor
        backfill_head = self._source.head_seqno
        applied = replayed = deduplicated = failed = 0
        backfilled = tailed = checkpoints = disconnects = reconnects = 0
        since_checkpoint = 0
        attempts = 0

        def stats() -> FeedConsumerStats:
            return FeedConsumerStats(
                applied,
                replayed,
                deduplicated,
                failed,
                backfilled,
                tailed,
                checkpoints,
                disconnects,
                reconnects,
            )

        while True:
            try:
                for seqno, record in self._source.read(after=position):
                    attempts = 0
                    position = max(position, seqno)
                    if seqno <= resume_floor:
                        replayed += 1
                        self._m_replayed.inc()
                        continue
                    if seqno <= applied_mark:
                        deduplicated += 1
                        self._m_dedup.inc()
                        continue
                    if not self._apply(record):
                        failed += 1
                        self._m_failed.inc()
                    applied_mark = seqno
                    self._cursor_store.mark_applied(self.feed_id, seqno)
                    applied += 1
                    self._m_applied.inc()
                    since_checkpoint += 1
                    if backfill_head is not None and seqno > backfill_head:
                        tailed += 1
                        self._m_tailed.inc()
                    else:
                        backfilled += 1
                        self._m_backfilled.inc()
                    if (
                        self.flush_every is not None
                        and applied_mark % self.flush_every == 0
                    ):
                        self._target.flush()
                    if since_checkpoint >= self.checkpoint_every:
                        self._cursor_store.checkpoint(self.feed_id, applied_mark)
                        checkpoints += 1
                        self._m_checkpoints.inc()
                        since_checkpoint = 0
                    if stop_after is not None and applied >= stop_after:
                        # Simulated crash: no final checkpoint, no flush.
                        return stats()
            except FeedDisconnectedError:
                disconnects += 1
                self._m_disconnects.inc()
                if attempts + 1 >= self.retry_policy.max_attempts:
                    raise FeedError(
                        f"feed {self.feed_id}: reconnect budget exhausted "
                        f"after {attempts + 1} attempts"
                    ) from None
                self.retry_policy.sleep(
                    self.retry_policy.backoff_for(attempts, self._rng)
                )
                attempts += 1
                reconnect = getattr(self._source, "reconnect", None)
                if reconnect is not None:
                    reconnect()
                reconnects += 1
                self._m_reconnects.inc()
                continue
            if tail and not self._source.closed:
                wait = getattr(self._source, "wait_for", None)
                if wait is not None:
                    wait(position, self.poll_interval)
                else:
                    time.sleep(self.poll_interval)
                continue
            break

        self._cursor_store.checkpoint(self.feed_id, applied_mark)
        checkpoints += 1
        self._m_checkpoints.inc()
        self._target.flush()
        return stats()
