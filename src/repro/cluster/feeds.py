"""Data feeds: continuous ingestion channels (paper Section 4.1).

AsterixDB's *data feeds* stream external records into a dataset,
triggering the full LSM lifecycle.  Three feed flavours are simulated:

* :class:`SocketFeed` -- push model: records arrive one at a time over
  a byte-counted channel, as from a Twitter-Firehose-style TCP source;
* :class:`FileFeed` -- pull model: records are read back from local
  JSON-lines files;
* :class:`ChangeableFeed` -- the special feed of Section 4.3.4 whose
  records are *marked* as insert/update/delete operations, with the
  ingestion broken into stages and a forced flush after each stage so
  that later updates/deletes actually generate anti-matter against
  already-persisted components (rather than being silently resolved in
  memory).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol

from repro.errors import ClusterError

__all__ = [
    "FeedOperation",
    "FeedRecord",
    "IngestTarget",
    "DatasetFeedAdapter",
    "SocketFeed",
    "FileFeed",
    "ChangeableFeed",
]


class FeedOperation(enum.Enum):
    """The operation marker on a changeable-feed record."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class FeedRecord:
    """One marked record flowing through a changeable feed."""

    operation: FeedOperation
    document: dict[str, Any]


class IngestTarget(Protocol):
    """What a feed needs from its destination (a dataset or cluster).

    ``name`` parameters are dataset names; :class:`~repro.lsm.dataset.
    Dataset` does not take them, so the cluster facade and the
    single-dataset adapter below both satisfy this protocol instead.
    """

    def insert(self, document: dict[str, Any]) -> None: ...

    def update(self, document: dict[str, Any]) -> bool: ...

    def delete(self, pk: Any) -> bool: ...

    def flush(self) -> None: ...


class DatasetFeedAdapter:
    """Adapts an :class:`LSMCluster` dataset to the ingest protocol."""

    def __init__(self, cluster: Any, dataset_name: str) -> None:
        self._cluster = cluster
        self._name = dataset_name

    def insert(self, document: dict[str, Any]) -> None:
        self._cluster.insert(self._name, document)

    def update(self, document: dict[str, Any]) -> bool:
        return self._cluster.update(self._name, document)

    def delete(self, pk: Any) -> bool:
        return self._cluster.delete(self._name, pk)

    def flush(self) -> None:
        self._cluster.flush_all(self._name)


class SocketFeed:
    """Push-based feed: each record is 'received' over the wire.

    The per-record serialisation models the socket traffic of the
    paper's push feed; ``bytes_received`` is the channel volume.
    """

    def __init__(self, records: Iterable[dict[str, Any]]) -> None:
        self._records = records
        self.records_ingested = 0
        self.bytes_received = 0

    def run(self, target: IngestTarget) -> int:
        """Stream every record into the target; returns the count."""
        for document in self._records:
            self.bytes_received += len(
                json.dumps(document, separators=(",", ":")).encode()
            )
            target.insert(document)
            self.records_ingested += 1
        return self.records_ingested


class FileFeed:
    """Pull-based feed reading JSON-lines files from local storage."""

    def __init__(self, paths: Iterable[str | Path]) -> None:
        self.paths = [Path(p) for p in paths]
        self.records_ingested = 0

    @staticmethod
    def write_file(path: str | Path, records: Iterable[dict[str, Any]]) -> int:
        """Materialise records as a JSON-lines feed file; returns count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for document in records:
                handle.write(json.dumps(document, separators=(",", ":")))
                handle.write("\n")
                count += 1
        return count

    def _read(self) -> Iterator[dict[str, Any]]:
        for path in self.paths:
            if not path.exists():
                raise ClusterError(f"feed file {path} does not exist")
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    def run(self, target: IngestTarget) -> int:
        """Pull every record from the files into the target."""
        for document in self._read():
            target.insert(document)
            self.records_ingested += 1
        return self.records_ingested


class ChangeableFeed:
    """A feed of marked insert/update/delete records, applied in stages.

    After each stage of ``stage_size`` operations the target is force-
    flushed, so updates and deletes arriving in later stages reference
    records already persisted on disk and therefore produce anti-matter
    (the paper's staging trick in Section 4.3.4).
    """

    def __init__(
        self, records: Iterable[FeedRecord], stage_size: int
    ) -> None:
        if stage_size < 1:
            raise ClusterError(f"stage_size must be >= 1, got {stage_size}")
        self._records = records
        self.stage_size = stage_size
        self.counts = {op: 0 for op in FeedOperation}
        self.stages_completed = 0
        self.failed_operations = 0

    def run(
        self, target: IngestTarget, pk_field: str = "id"
    ) -> dict[FeedOperation, int]:
        """Apply all operations; returns per-operation counts."""
        in_stage = 0
        for record in self._records:
            if record.operation is FeedOperation.INSERT:
                target.insert(record.document)
            elif record.operation is FeedOperation.UPDATE:
                if not target.update(record.document):
                    self.failed_operations += 1
                    continue
            else:
                if not target.delete(record.document[pk_field]):
                    self.failed_operations += 1
                    continue
            self.counts[record.operation] += 1
            in_stage += 1
            if in_stage >= self.stage_size:
                target.flush()
                self.stages_completed += 1
                in_stage = 0
        target.flush()
        return dict(self.counts)
