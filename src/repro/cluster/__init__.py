"""Simulated shared-nothing cluster (the paper's 4+1-node testbed)."""

from repro.cluster.cluster import LSMCluster
from repro.cluster.faultcheck import FaultCheckReport, format_report, run_faultcheck
from repro.cluster.faults import FaultPlan, LinkFaults
from repro.cluster.feeds import (
    ChangeableFeed,
    DatasetFeedAdapter,
    FeedOperation,
    FeedRecord,
    FileFeed,
    SocketFeed,
)
from repro.cluster.master import ClusterController
from repro.cluster.network import Network, NetworkStats
from repro.cluster.node import NetworkStatisticsSink, RetryPolicy, StorageNode
from repro.cluster.partitioner import HashPartitioner
from repro.cluster.query import DistributedQueryExecutor, DistributedQueryResult

__all__ = [
    "LSMCluster",
    "ClusterController",
    "StorageNode",
    "NetworkStatisticsSink",
    "Network",
    "NetworkStats",
    "FaultPlan",
    "LinkFaults",
    "RetryPolicy",
    "FaultCheckReport",
    "run_faultcheck",
    "format_report",
    "HashPartitioner",
    "DistributedQueryExecutor",
    "DistributedQueryResult",
    "SocketFeed",
    "FileFeed",
    "ChangeableFeed",
    "DatasetFeedAdapter",
    "FeedOperation",
    "FeedRecord",
]
