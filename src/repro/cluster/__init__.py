"""Simulated shared-nothing cluster (the paper's 4+1-node testbed)."""

from repro.cluster.cluster import LSMCluster
from repro.cluster.faultcheck import FaultCheckReport, format_report, run_faultcheck
from repro.cluster.faults import (
    FaultPlan,
    FeedFaultPlan,
    FeedFaults,
    LinkFaults,
)
from repro.cluster.feeds import (
    ChangeableFeed,
    ChangestreamFeed,
    DatasetFeedAdapter,
    FeedConsumerStats,
    FeedCursorStore,
    FeedOperation,
    FeedRecord,
    FileFeed,
    ReplayableStreamFeed,
    ResumableFeedConsumer,
    SocketFeed,
)
from repro.cluster.master import ClusterController
from repro.cluster.network import Network, NetworkStats
from repro.cluster.node import NetworkStatisticsSink, RetryPolicy, StorageNode
from repro.cluster.partitioner import HashPartitioner
from repro.cluster.query import DistributedQueryExecutor, DistributedQueryResult
from repro.cluster.servecheck import (
    ServeCheckReport,
    run_servecheck,
)
from repro.cluster.serving import EstimateService

__all__ = [
    "LSMCluster",
    "ClusterController",
    "StorageNode",
    "NetworkStatisticsSink",
    "Network",
    "NetworkStats",
    "FaultPlan",
    "LinkFaults",
    "FeedFaults",
    "FeedFaultPlan",
    "RetryPolicy",
    "FaultCheckReport",
    "run_faultcheck",
    "format_report",
    "ServeCheckReport",
    "run_servecheck",
    "HashPartitioner",
    "DistributedQueryExecutor",
    "DistributedQueryResult",
    "SocketFeed",
    "FileFeed",
    "ChangeableFeed",
    "ChangestreamFeed",
    "ReplayableStreamFeed",
    "DatasetFeedAdapter",
    "FeedOperation",
    "FeedRecord",
    "FeedCursorStore",
    "FeedConsumerStats",
    "ResumableFeedConsumer",
    "EstimateService",
]
