"""The concurrent estimate service: an overload-safe serving front.

The paper evaluates estimation accuracy and overhead with a single
closed-loop client.  A serving deployment is different: many optimizer
threads ask for estimates concurrently while feeds keep publishing new
statistics, and an unbounded queue in front of the estimator turns a
load spike into unbounded latency.  This module puts the standard
serving armour around :class:`~repro.core.estimator.CardinalityEstimator`
(via the :class:`~repro.cluster.cluster.LSMCluster` facade):

* a **bounded admission queue** -- at most ``max_queue_depth`` requests
  waiting; admission past the bound retries with the shared
  :class:`~repro.util.retry.RetryPolicy` backoff and then sheds the
  request with a typed :class:`~repro.errors.OverloadedError`;
* **per-client fair scheduling** -- workers drain clients round-robin,
  so one chatty client cannot starve the rest (its requests queue
  behind its own backlog, not everyone else's);
* **timeouts** -- a caller waits at most its deadline; an expired
  request is abandoned (the worker skips it) and surfaces either the
  typed rejection or a degraded answer;
* **graceful degradation** -- with ``degraded_mode`` on, a shed or
  timed-out request falls back to
  :meth:`~repro.cluster.cluster.LSMCluster.estimate_degraded`: the
  possibly-stale cached merged synopsis, flagged
  ``EstimateResult.degraded`` so the optimizer knows what it got.

Everything observable is a ``serve.*`` metric (docs/OBSERVABILITY.md);
the ``repro servecheck`` harness drives this service to saturation and
asserts sheds are typed, depth stays bounded and nothing deadlocks.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any

from repro.core.estimator import EstimateResult
from repro.errors import OverloadedError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.util.retry import RetryPolicy

__all__ = ["EstimateService"]

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_WORKERS = 2
DEFAULT_TIMEOUT_SECONDS = 1.0


class _Request:
    """One queued estimate request and its completion rendezvous."""

    __slots__ = (
        "client_id",
        "dataset",
        "index_name",
        "lo",
        "hi",
        "enqueued_at",
        "done",
        "result",
        "error",
        "abandoned",
    )

    def __init__(
        self, client_id: str, dataset: str, index_name: str, lo: int, hi: int
    ) -> None:
        self.client_id = client_id
        self.dataset = dataset
        self.index_name = index_name
        self.lo = lo
        self.hi = hi
        self.enqueued_at = time.perf_counter()
        self.done = threading.Event()
        self.result: EstimateResult | None = None
        self.error: BaseException | None = None
        self.abandoned = False


class EstimateService:
    """Thread-safe serving front over a cluster's estimate path.

    Args:
        cluster: The :class:`~repro.cluster.cluster.LSMCluster` (or any
            object with ``estimate_detailed`` / ``estimate_degraded``).
        max_queue_depth: Bound on requests waiting across all clients.
        workers: Number of serving threads.
        default_timeout: Per-request wait deadline when the caller does
            not pass one.
        retry_policy: Admission retry/backoff against a full queue;
            defaults to the shared :class:`RetryPolicy` defaults.
        degraded_mode: Serve possibly-stale cached answers (flagged
            ``degraded=True``) instead of shedding, when one exists.
        autostart: Start the worker threads immediately.  Tests and the
            deterministic overload benchmark pass ``False`` to stage a
            saturated queue before any worker drains it.
    """

    def __init__(
        self,
        cluster: Any,
        max_queue_depth: int = DEFAULT_QUEUE_DEPTH,
        workers: int = DEFAULT_WORKERS,
        default_timeout: float = DEFAULT_TIMEOUT_SECONDS,
        retry_policy: RetryPolicy | None = None,
        degraded_mode: bool = False,
        autostart: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_queue_depth < 1:
            raise OverloadedError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if workers < 1:
            raise OverloadedError(f"workers must be >= 1, got {workers}")
        self._cluster = cluster
        self.max_queue_depth = max_queue_depth
        self.num_workers = workers
        self.default_timeout = default_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.degraded_mode = degraded_mode
        # One lock guards the per-client queues, the round-robin order
        # and the depth accounting; the condition wakes idle workers.
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_Request]] = {}
        self._rotation: deque[str] = deque()
        self._depth = 0
        self.peak_queue_depth = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        obs = registry if registry is not None else get_registry()
        self._m_requests = obs.counter("serve.requests")
        self._m_rejected = obs.counter("serve.rejected")
        self._m_degraded = obs.counter("serve.degraded")
        self._m_timeouts = obs.counter("serve.timeouts")
        self._m_retries = obs.counter("serve.retries")
        self._g_depth = obs.gauge("serve.queue.depth")
        self._h_latency = obs.histogram("serve.latency.seconds")
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._cond:
            if self._threads or self._stopping:
                return
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"estimate-worker-{i}",
                    daemon=True,
                )
                for i in range(self.num_workers)
            ]
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers; pending requests fail with ``OverloadedError``."""
        with self._cond:
            self._stopping = True
            pending: list[_Request] = []
            for queue in self._queues.values():
                pending.extend(queue)
                queue.clear()
            self._rotation.clear()
            self._depth = 0
            self._g_depth.set(0)
            self._cond.notify_all()
        for request in pending:
            request.error = OverloadedError("estimate service shut down")
            request.done.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "EstimateService":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    @property
    def queue_depth(self) -> int:
        """Current number of queued requests across all clients."""
        with self._cond:
            return self._depth

    # -- client API ---------------------------------------------------------

    def estimate(
        self,
        client_id: str,
        dataset: str,
        index_name: str,
        lo: int,
        hi: int,
        timeout: float | None = None,
    ) -> EstimateResult:
        """Submit one estimate request and wait for its answer.

        Raises :class:`~repro.errors.OverloadedError` when the request
        is shed (queue full after the admission retry budget, or the
        wait deadline expired) and no degraded answer is available.
        """
        self._m_requests.inc()
        request = _Request(client_id, dataset, index_name, lo, hi)
        if not self._admit(request):
            return self._degrade_or_raise(
                request, "admission queue full"
            )
        deadline = timeout if timeout is not None else self.default_timeout
        if not request.done.wait(deadline):
            request.abandoned = True
            self._m_timeouts.inc()
            return self._degrade_or_raise(
                request, f"no answer within {deadline}s"
            )
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def offer(
        self, client_id: str, dataset: str, index_name: str, lo: int, hi: int
    ) -> bool:
        """Enqueue without waiting for the answer (no admission retry).

        The deterministic staging hook of the overload harness and
        benchmark: returns whether the request was admitted, counting a
        typed rejection when it was not.  The eventual result is
        discarded.
        """
        self._m_requests.inc()
        request = _Request(client_id, dataset, index_name, lo, hi)
        if self._try_enqueue(request):
            return True
        self._m_rejected.inc()
        return False

    # -- internals ----------------------------------------------------------

    def _try_enqueue(self, request: _Request) -> bool:
        with self._cond:
            if self._stopping or self._depth >= self.max_queue_depth:
                return False
            queue = self._queues.setdefault(request.client_id, deque())
            queue.append(request)
            if len(queue) == 1:
                self._rotation.append(request.client_id)
            self._depth += 1
            self.peak_queue_depth = max(self.peak_queue_depth, self._depth)
            self._g_depth.set(self._depth)
            self._cond.notify()
            return True

    def _admit(self, request: _Request) -> bool:
        policy = self.retry_policy
        rng = None
        for retry in range(policy.max_attempts):
            if self._try_enqueue(request):
                return True
            if retry + 1 >= policy.max_attempts:
                break
            self._m_retries.inc()
            if rng is None:
                rng = random.Random(f"serve:{request.client_id}")
            policy.sleep(policy.backoff_for(retry, rng))
        self._m_rejected.inc()
        return False

    def _degrade_or_raise(
        self, request: _Request, reason: str
    ) -> EstimateResult:
        if self.degraded_mode:
            degraded = self._cluster.estimate_degraded(
                request.dataset, request.index_name, request.lo, request.hi
            )
            if degraded is not None:
                self._m_degraded.inc()
                return degraded
        raise OverloadedError(
            f"estimate request from {request.client_id!r} shed: {reason}"
        )

    def _next_request(self) -> _Request | None:
        """Round-robin dequeue: the oldest request of the next client in
        rotation; the client re-enters the rotation tail while it still
        has a backlog.  Called under the condition."""
        while self._rotation:
            client_id = self._rotation.popleft()
            queue = self._queues.get(client_id)
            if not queue:
                continue
            request = queue.popleft()
            if queue:
                self._rotation.append(client_id)
            self._depth -= 1
            self._g_depth.set(self._depth)
            return request
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and self._depth == 0:
                    self._cond.wait()
                if self._stopping:
                    return
                request = self._next_request()
            if request is None:
                continue
            if request.abandoned:
                continue
            try:
                result = self._cluster.estimate_detailed(
                    request.dataset, request.index_name, request.lo, request.hi
                )
                request.result = result
            except BaseException as exc:  # surfaced to the waiting caller
                request.error = exc
            if not request.abandoned:
                self._h_latency.observe(
                    time.perf_counter() - request.enqueued_at
                )
            request.done.set()
