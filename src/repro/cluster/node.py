"""Storage nodes of the simulated shared-nothing cluster.

Each node owns a set of data partitions; each partition holds an
independent :class:`~repro.lsm.dataset.Dataset` instance (its own
memtables, disk components and merge policy), exactly like AsterixDB's
node controllers with two data partitions per machine.  Statistics
built on a node are shipped to the cluster controller through the
network channel rather than written into a local catalog.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Any, Callable, Iterable

from repro.core.collector import StatisticsCollector
from repro.core.config import StatisticsConfig
from repro.cluster.network import Network
from repro.errors import ClusterError, NetworkUnavailableError
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.memory import MemoryArbiter
from repro.lsm.merge_policy import MergePolicy
from repro.lsm.pacing import MergePacer
from repro.lsm.scheduler import MaintenanceScheduler
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import DEFAULT_MEMTABLE_CAPACITY
from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.base import Synopsis
from repro.types import Domain
from repro.util.retry import RetryPolicy

__all__ = ["RetryPolicy", "NetworkStatisticsSink", "StorageNode"]

# RetryPolicy moved to repro.util.retry so the feed consumers and the
# statistics sink share one seeded backoff implementation; it is
# re-exported here because this was its historical home.


DEFAULT_OUTBOX_LIMIT = 1024


class NetworkStatisticsSink:
    """Statistics sink that ships synopses to the master over the wire.

    Delivery is at-least-once: every message is stamped with a
    ``(node, partition, sequence)`` identity (the sequence is unique per
    node/partition pair, shared across the partition's datasets), sent
    through a bounded FIFO outbox, and retried with exponential backoff
    and jitter when the wire misbehaves.  Ingestion never blocks on the
    master: when delivery keeps failing the message stays parked in the
    outbox -- the collector keeps building synopses -- and the backlog
    is flushed by later traffic or an explicit :meth:`flush_outbox`
    once the master recovers.  When the outbox overflows, the *oldest*
    message is dropped (counted in ``sink.outbox.dropped``); the
    master-side idempotency layer tolerates the resulting gaps.
    """

    def __init__(
        self,
        network: Network,
        node_id: str,
        master_id: str,
        partition_id: int,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
        sequence_source: Callable[[], int] | None = None,
        epoch: int = 0,
    ) -> None:
        if outbox_limit < 1:
            raise ClusterError(f"outbox_limit must be >= 1, got {outbox_limit}")
        self._network = network
        self._node_id = node_id
        self._master_id = master_id
        self._partition_id = partition_id
        self._epoch = epoch
        self._policy = retry_policy if retry_policy is not None else RetryPolicy()
        # Publishes arrive from background maintenance threads (flush
        # and merge notifications) while the application thread may be
        # flushing the backlog; enqueue+pump must be atomic or two
        # pumps could pop the same head / double-send it.
        self._mutex = threading.RLock()
        self._outbox: deque[dict[str, Any]] = deque()
        self._outbox_limit = outbox_limit
        self._sequence = 0
        self._next_sequence = (
            sequence_source if sequence_source is not None else self._own_sequence
        )
        # Deterministic jitter: seeded from the sink's identity.
        self._rng = random.Random(f"{node_id}:{partition_id}")
        obs = registry if registry is not None else get_registry()
        self._m_shipped = obs.counter("cluster.synopses.shipped")
        self._m_retractions = obs.counter("cluster.retractions.sent")
        self._m_retries = obs.counter("sink.retries")
        self._m_send_failures = obs.counter("sink.send.failures")
        self._m_outbox_dropped = obs.counter("sink.outbox.dropped")
        self._g_outbox_depth = obs.gauge("sink.outbox.depth")

    def _own_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    @property
    def outbox_depth(self) -> int:
        """Messages awaiting (re-)delivery."""
        return len(self._outbox)

    def publish(
        self,
        index_name: str,
        component_uid: int,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
    ) -> None:
        with self._mutex:
            self._enqueue(
                {
                    "kind": "stats.publish",
                    "index": index_name,
                    "partition": self._partition_id,
                    "seq": self._next_sequence(),
                    "epoch": self._epoch,
                    "component_uid": component_uid,
                    "synopsis": synopsis.to_payload(),
                    "anti_synopsis": anti_synopsis.to_payload(),
                }
            )
            self._m_shipped.inc(2)  # regular + anti-matter twin
            self._pump()

    def retract(self, index_name: str, component_uids: list[int]) -> None:
        with self._mutex:
            self._enqueue(
                {
                    "kind": "stats.retract",
                    "index": index_name,
                    "partition": self._partition_id,
                    "seq": self._next_sequence(),
                    "epoch": self._epoch,
                    "component_uids": list(component_uids),
                }
            )
            self._m_retractions.inc()
            self._pump()

    def reset(self, index_name: str) -> None:
        """Tell the master to drop this partition's statistics from
        epochs before this sink's.

        A recovered node enqueues one reset per registered index
        *before* its re-derived publishes; the FIFO outbox guarantees
        the master applies them in that order.
        """
        with self._mutex:
            self._enqueue(
                {
                    "kind": "stats.reset",
                    "index": index_name,
                    "partition": self._partition_id,
                    "seq": self._next_sequence(),
                    "epoch": self._epoch,
                }
            )
            self._pump()

    def flush_outbox(self) -> int:
        """Retry the parked backlog; returns the remaining depth."""
        with self._mutex:
            self._pump()
            return len(self._outbox)

    # -- internals -----------------------------------------------------------

    def _enqueue(self, message: dict[str, Any]) -> None:
        # The depth gauge is maintained additively so it aggregates the
        # total backlog across every sink sharing the registry.
        if len(self._outbox) >= self._outbox_limit:
            self._outbox.popleft()  # shed the oldest, keep ingesting
            self._m_outbox_dropped.inc()
            self._g_outbox_depth.inc(-1)
        self._outbox.append(message)
        self._g_outbox_depth.inc(1)

    def _pump(self) -> None:
        """Send from the head of the outbox until it empties or a
        message exhausts its retry budget (FIFO order is preserved --
        no message overtakes an undelivered predecessor)."""
        while self._outbox:
            if not self._try_send(self._outbox[0]):
                break
            self._outbox.popleft()
            self._g_outbox_depth.inc(-1)

    def _try_send(self, message: dict[str, Any]) -> bool:
        policy = self._policy
        waited = 0.0
        for attempt in range(policy.max_attempts):
            try:
                self._network.send(self._node_id, self._master_id, message)
                return True
            except NetworkUnavailableError:
                if attempt + 1 >= policy.max_attempts:
                    break
                pause = policy.backoff_for(attempt, self._rng)
                if waited + pause > policy.timeout:
                    break  # send budget exhausted; park the message
                self._m_retries.inc()
                policy.sleep(pause)
                waited += pause
        self._m_send_failures.inc()
        return False


class StorageNode:
    """One slave node: local disks, datasets and statistics collectors."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        master_id: str,
        partition_ids: Iterable[int],
        stats_config: StatisticsConfig,
        retry_policy: RetryPolicy | None = None,
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
        durable: bool = False,
        wal_enabled: bool = True,
        crash_injector: CrashInjector | None = None,
        scheduler_factory: Callable[[], MaintenanceScheduler] | None = None,
        merge_pacer: MergePacer | None = None,
        memory_arbiter: MemoryArbiter | None = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.master_id = master_id
        self.partition_ids = list(partition_ids)
        if not self.partition_ids:
            raise ClusterError(f"node {node_id!r} owns no partitions")
        self.stats_config = stats_config
        self.retry_policy = retry_policy
        self.outbox_limit = outbox_limit
        self.durable = durable
        self.wal_enabled = wal_enabled
        self.crash_injector = crash_injector
        # Per-node maintenance scheduler: every local dataset partition
        # submits into it on its own lane.  A factory (not an instance)
        # because restart() discards the pre-crash scheduler -- pending
        # background work is in-memory state and dies with the process
        # -- and builds a fresh one for the new incarnation.
        self._scheduler_factory = scheduler_factory
        self.scheduler: MaintenanceScheduler | None = (
            scheduler_factory() if scheduler_factory is not None else None
        )
        # One pacer per node, shared by every partition's merges: the
        # merge budget models a node-level resource.  It survives
        # restart() -- rate limits are configuration, not state.
        self.merge_pacer = merge_pacer
        # One memory arbiter per node, shared by every partition's
        # datasets: the byte budget models node RAM.  Like the pacer it
        # is configuration and survives restart(); per-incarnation
        # usage is replaced when the rebuilt datasets re-register under
        # their (stable) lane names.
        self.memory_arbiter = memory_arbiter
        self.disk = SimulatedDisk()
        # Restart epoch: bumped (and persisted in the superblock) by
        # every restart so the master can fence out the crashed
        # incarnation's straggler messages.
        self.epoch = int(self.disk.superblock.get("node.epoch", 0))
        # dataset name -> partition id -> Dataset
        self._datasets: dict[str, dict[int, Dataset]] = {}
        # dataset name -> creation arguments, kept so restart() can
        # rebuild every partition from its on-disk state.
        self._schemas: dict[str, dict[str, Any]] = {}
        # Message sequences are unique per (node, partition) -- shared
        # across that partition's datasets -- so the master can
        # deduplicate at-least-once deliveries by (node, partition, seq)
        # within one epoch.
        self._sequences: dict[int, int] = {p: 0 for p in self.partition_ids}
        # A partition's sequence is shared across its datasets, whose
        # maintenance lanes may run on different worker threads.
        self._seq_lock = threading.Lock()
        self._sinks: list[NetworkStatisticsSink] = []
        obs = get_registry()
        self._m_restarts = obs.counter("recovery.restarts")
        self._m_orphans = obs.counter("recovery.orphans.deleted")
        network.register(node_id, self._on_message)

    def _sequence_source(self, partition_id: int) -> Callable[[], int]:
        def next_sequence() -> int:
            with self._seq_lock:
                self._sequences[partition_id] += 1
                return self._sequences[partition_id]

        return next_sequence

    def create_dataset(
        self,
        name: str,
        primary_key: str,
        primary_domain: Domain,
        indexes: Iterable[IndexSpec] = (),
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy_factory: Callable[[], MergePolicy] | None = None,
    ) -> None:
        """Instantiate the dataset on every partition this node owns."""
        if name in self._datasets:
            raise ClusterError(f"dataset {name!r} already exists on {self.node_id}")
        schema = {
            "primary_key": primary_key,
            "primary_domain": primary_domain,
            "indexes": list(indexes),
            "memtable_capacity": memtable_capacity,
            "merge_policy_factory": merge_policy_factory,
        }
        self._schemas[name] = schema
        self._datasets[name] = {
            partition_id: self._build_partition(name, schema, partition_id)
            for partition_id in self.partition_ids
        }

    def _build_partition(
        self,
        name: str,
        schema: dict[str, Any],
        partition_id: int,
        recover: bool = False,
        reset_stats: bool = False,
    ) -> Dataset:
        """Instantiate one partition's dataset plus its statistics
        plumbing (sink, collector, event subscription).

        With ``recover`` the dataset rebuilds itself from the manifest
        and WAL; with ``reset_stats`` the sink first disowns the
        pre-restart catalog entries (enqueued before any re-derived
        publish, so FIFO ordering keeps the master coherent).
        """
        merge_policy_factory = schema["merge_policy_factory"]
        dataset = Dataset(
            name,
            self.disk,
            primary_key=schema["primary_key"],
            primary_domain=schema["primary_domain"],
            indexes=schema["indexes"],
            memtable_capacity=schema["memtable_capacity"],
            merge_policy=(
                merge_policy_factory() if merge_policy_factory else None
            ),
            durable=self.durable,
            wal_enabled=self.wal_enabled,
            durability_namespace=f"{name}.p{partition_id}",
            crash_injector=self.crash_injector,
            recover=recover,
            scheduler=self.scheduler,
            maintenance_lane=f"{self.node_id}:{name}.p{partition_id}",
            merge_pacer=self.merge_pacer,
            memory_arbiter=self.memory_arbiter,
        )
        if self.stats_config.enabled:
            sink = NetworkStatisticsSink(
                self.network,
                self.node_id,
                self.master_id,
                partition_id,
                retry_policy=self.retry_policy,
                outbox_limit=self.outbox_limit,
                sequence_source=self._sequence_source(partition_id),
                epoch=self.epoch,
            )
            self._sinks.append(sink)
            collector = StatisticsCollector(self.stats_config, sink)
            collector.register_index(
                dataset.primary.name, schema["primary_domain"]
            )
            for spec in schema["indexes"]:
                collector.register_index(
                    dataset.secondary_tree(spec.name).name, spec.domain
                )
            if reset_stats:
                # One reset per registered statistics key -- including
                # the NDV sketch lane's ``#ndv`` twins -- enqueued
                # before recovery republishes anything (FIFO outbox).
                for key in collector.registered_keys():
                    sink.reset(key)
            dataset.event_bus.subscribe(collector)
        if recover:
            dataset.complete_recovery()
        return dataset

    def restart(self) -> list[int]:
        """Simulate a crash-restart: drop every in-memory structure and
        rebuild the node from its disk.

        Bumps (and persists) the restart epoch, rebuilds each
        partition's dataset -- from manifest and WAL when the node is
        durable, empty otherwise -- re-derives and republishes
        per-component statistics under the new epoch, and finally GCs
        the orphan files half-finished lifecycle operations left
        behind.  Returns the orphaned file ids that were deleted.
        """
        self.epoch += 1
        self.disk.superblock["node.epoch"] = self.epoch
        # The crashed incarnation's scheduler dies with it: pending
        # background flushes/merges were in-memory work and are
        # discarded, exactly like memtables.  The new incarnation gets a
        # fresh scheduler from the same factory.
        if self.scheduler is not None:
            self.scheduler.shutdown()
            assert self._scheduler_factory is not None
            self.scheduler = self._scheduler_factory()
        self._sequences = {p: 0 for p in self.partition_ids}
        self._sinks = []
        self._datasets = {}
        for name, schema in self._schemas.items():
            self._datasets[name] = {
                partition_id: self._build_partition(
                    name,
                    schema,
                    partition_id,
                    recover=self.durable,
                    reset_stats=self.stats_config.enabled,
                )
                for partition_id in self.partition_ids
            }
        live: set[int] = set()
        for per_partition in self._datasets.values():
            for dataset in per_partition.values():
                live.update(dataset.live_file_ids())
        orphans = self.disk.delete_files_except(live)
        self._m_restarts.inc()
        if orphans:
            self._m_orphans.inc(len(orphans))
        return orphans

    def dataset(self, name: str, partition_id: int) -> Dataset:
        """The dataset instance of one local partition."""
        try:
            return self._datasets[name][partition_id]
        except KeyError:
            raise ClusterError(
                f"no dataset {name!r} partition {partition_id} on {self.node_id}"
            ) from None

    # -- operations routed from the cluster facade --------------------------

    def insert(self, name: str, partition_id: int, document: dict[str, Any]) -> None:
        self.dataset(name, partition_id).insert(document)

    def insert_many(
        self, name: str, partition_id: int, documents: Iterable[dict[str, Any]]
    ) -> int:
        """Batched ingest into one local partition (the hot path the
        feed adaptors use once the router has grouped documents by
        partition); returns the number of documents inserted."""
        return self.dataset(name, partition_id).insert_many(documents)

    def update(self, name: str, partition_id: int, document: dict[str, Any]) -> bool:
        return self.dataset(name, partition_id).update(document)

    def delete(self, name: str, partition_id: int, pk: Any) -> bool:
        return self.dataset(name, partition_id).delete(pk)

    def bulkload(
        self, name: str, partition_id: int, documents: list[dict[str, Any]]
    ) -> None:
        self.dataset(name, partition_id).bulkload(documents)

    def flush(self, name: str) -> None:
        """Force-flush the dataset on all local partitions."""
        for dataset in self._datasets.get(name, {}).values():
            dataset.flush()

    def count_secondary_range(
        self, name: str, index_name: str, lo: Any, hi: Any
    ) -> int:
        """Local ground-truth contribution to a cluster-wide count."""
        return sum(
            dataset.count_secondary_range(index_name, lo, hi)
            for dataset in self._datasets.get(name, {}).values()
        )

    def count_records(self, name: str) -> int:
        """Local live record count."""
        return sum(
            dataset.count_records()
            for dataset in self._datasets.get(name, {}).values()
        )

    def component_count(self, name: str, index_name: str) -> int:
        """Total live components across local partitions of one index."""
        return sum(
            len(dataset.secondary_tree(index_name).components)
            for dataset in self._datasets.get(name, {}).values()
        )

    def drain_maintenance(self) -> None:
        """Block until every scheduled background flush/merge on this
        node completed (failures captured off-thread re-raise here)."""
        if self.scheduler is not None:
            self.scheduler.drain()

    def shutdown(self) -> None:
        """Release the node's maintenance workers (drains first so no
        acknowledged maintenance is silently discarded)."""
        if self.scheduler is not None:
            self.scheduler.drain()
            self.scheduler.shutdown()

    def flush_statistics_outboxes(self) -> int:
        """Retry every sink's parked backlog; returns the remaining
        total depth (0 means the node has fully caught up)."""
        return sum(sink.flush_outbox() for sink in self._sinks)

    def statistics_backlog(self) -> int:
        """Messages currently parked across this node's sinks."""
        return sum(sink.outbox_depth for sink in self._sinks)

    def _on_message(self, source: str, message: dict[str, Any]) -> None:
        raise ClusterError(
            f"storage node {self.node_id} received unexpected message "
            f"{message.get('kind')!r} from {source}"
        )
