"""Storage nodes of the simulated shared-nothing cluster.

Each node owns a set of data partitions; each partition holds an
independent :class:`~repro.lsm.dataset.Dataset` instance (its own
memtables, disk components and merge policy), exactly like AsterixDB's
node controllers with two data partitions per machine.  Statistics
built on a node are shipped to the cluster controller through the
network channel rather than written into a local catalog.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.collector import StatisticsCollector
from repro.core.config import StatisticsConfig
from repro.cluster.network import Network
from repro.errors import ClusterError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import MergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import DEFAULT_MEMTABLE_CAPACITY
from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.base import Synopsis
from repro.types import Domain

__all__ = ["NetworkStatisticsSink", "StorageNode"]


class NetworkStatisticsSink:
    """Statistics sink that ships synopses to the master over the wire."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        master_id: str,
        partition_id: int,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._network = network
        self._node_id = node_id
        self._master_id = master_id
        self._partition_id = partition_id
        obs = registry if registry is not None else get_registry()
        self._m_shipped = obs.counter("cluster.synopses.shipped")
        self._m_retractions = obs.counter("cluster.retractions.sent")

    def publish(
        self,
        index_name: str,
        component_uid: int,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
    ) -> None:
        self._network.send(
            self._node_id,
            self._master_id,
            {
                "kind": "stats.publish",
                "index": index_name,
                "partition": self._partition_id,
                "component_uid": component_uid,
                "synopsis": synopsis.to_payload(),
                "anti_synopsis": anti_synopsis.to_payload(),
            },
        )
        self._m_shipped.inc(2)  # regular + anti-matter twin

    def retract(self, index_name: str, component_uids: list[int]) -> None:
        self._network.send(
            self._node_id,
            self._master_id,
            {
                "kind": "stats.retract",
                "index": index_name,
                "partition": self._partition_id,
                "component_uids": list(component_uids),
            },
        )
        self._m_retractions.inc()


class StorageNode:
    """One slave node: local disks, datasets and statistics collectors."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        master_id: str,
        partition_ids: Iterable[int],
        stats_config: StatisticsConfig,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.master_id = master_id
        self.partition_ids = list(partition_ids)
        if not self.partition_ids:
            raise ClusterError(f"node {node_id!r} owns no partitions")
        self.stats_config = stats_config
        self.disk = SimulatedDisk()
        # dataset name -> partition id -> Dataset
        self._datasets: dict[str, dict[int, Dataset]] = {}
        network.register(node_id, self._on_message)

    def create_dataset(
        self,
        name: str,
        primary_key: str,
        primary_domain: Domain,
        indexes: Iterable[IndexSpec] = (),
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy_factory: Callable[[], MergePolicy] | None = None,
    ) -> None:
        """Instantiate the dataset on every partition this node owns."""
        if name in self._datasets:
            raise ClusterError(f"dataset {name!r} already exists on {self.node_id}")
        index_specs = list(indexes)
        per_partition: dict[int, Dataset] = {}
        for partition_id in self.partition_ids:
            dataset = Dataset(
                name,
                self.disk,
                primary_key=primary_key,
                primary_domain=primary_domain,
                indexes=index_specs,
                memtable_capacity=memtable_capacity,
                merge_policy=(
                    merge_policy_factory() if merge_policy_factory else None
                ),
            )
            if self.stats_config.enabled:
                sink = NetworkStatisticsSink(
                    self.network, self.node_id, self.master_id, partition_id
                )
                collector = StatisticsCollector(self.stats_config, sink)
                collector.register_index(dataset.primary.name, primary_domain)
                for spec in index_specs:
                    collector.register_index(
                        dataset.secondary_tree(spec.name).name, spec.domain
                    )
                dataset.event_bus.subscribe(collector)
            per_partition[partition_id] = dataset
        self._datasets[name] = per_partition

    def dataset(self, name: str, partition_id: int) -> Dataset:
        """The dataset instance of one local partition."""
        try:
            return self._datasets[name][partition_id]
        except KeyError:
            raise ClusterError(
                f"no dataset {name!r} partition {partition_id} on {self.node_id}"
            ) from None

    # -- operations routed from the cluster facade --------------------------

    def insert(self, name: str, partition_id: int, document: dict[str, Any]) -> None:
        self.dataset(name, partition_id).insert(document)

    def update(self, name: str, partition_id: int, document: dict[str, Any]) -> bool:
        return self.dataset(name, partition_id).update(document)

    def delete(self, name: str, partition_id: int, pk: Any) -> bool:
        return self.dataset(name, partition_id).delete(pk)

    def bulkload(
        self, name: str, partition_id: int, documents: list[dict[str, Any]]
    ) -> None:
        self.dataset(name, partition_id).bulkload(documents)

    def flush(self, name: str) -> None:
        """Force-flush the dataset on all local partitions."""
        for dataset in self._datasets.get(name, {}).values():
            dataset.flush()

    def count_secondary_range(
        self, name: str, index_name: str, lo: Any, hi: Any
    ) -> int:
        """Local ground-truth contribution to a cluster-wide count."""
        return sum(
            dataset.count_secondary_range(index_name, lo, hi)
            for dataset in self._datasets.get(name, {}).values()
        )

    def count_records(self, name: str) -> int:
        """Local live record count."""
        return sum(
            dataset.count_records()
            for dataset in self._datasets.get(name, {}).values()
        )

    def component_count(self, name: str, index_name: str) -> int:
        """Total live components across local partitions of one index."""
        return sum(
            len(dataset.secondary_tree(index_name).components)
            for dataset in self._datasets.get(name, {}).values()
        )

    def _on_message(self, source: str, message: dict[str, Any]) -> None:
        raise ClusterError(
            f"storage node {self.node_id} received unexpected message "
            f"{message.get('kind')!r} from {source}"
        )
