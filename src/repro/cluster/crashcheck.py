"""Seeded crash-recovery verification behind ``repro crashcheck``.

Runs a scripted durable-cluster ingest once crash-free (the baseline),
then once per registered crash point with a seeded
:class:`~repro.lsm.crashpoints.CrashInjector` armed.  When the
simulated process death fires, every node is crash-restarted (all
in-memory state lost, disks survive), statistics recovery drains, the
interrupted operation is retried if and only if its effect is absent
(the client-side at-least-once retry), and the rest of the script runs
to completion.  The run must then be *bit-identical* to the baseline
in three respects:

1. reconciled primary and secondary scans of every partition,
2. the master catalog (entries and synopsis payloads, uid-rank
   normalised), and
3. a sweep of range estimates.

A negative control runs the same harness on a durable cluster with the
WAL disabled and must demonstrably lose acknowledged records -- the
check that the WAL is the thing earning the durability, not the
harness accidentally re-executing everything.

A second sweep re-runs the maintenance-lifecycle crash points on a
cluster whose flushes and merges run on the background scheduler (in
deterministic ``virtual`` mode, so the schedule is replayable): the
crash then fires inside a background task -- mid-rotation, mid-build or
mid-splice while ingestion is in flight -- and recovery must still be
bit-identical to the same synchronous baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.cluster import LSMCluster
from repro.cluster.faultcheck import _catalog_image
from repro.cluster.node import RetryPolicy
from repro.core.config import StatisticsConfig
from repro.lsm.crashpoints import (
    CRASH_POINTS,
    CrashInjector,
    CrashPlan,
    SimulatedCrash,
)
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain

__all__ = ["CrashCheckReport", "run_crashcheck", "format_report"]

_DATASET = "crash"
_BULKLOAD_COUNT = 64

# The crash points a background flush/merge task passes through; the
# concurrent sweep arms exactly these on a virtual-scheduler cluster.
_CONCURRENT_POINTS = (
    "flush.rotate",
    "flush.build",
    "merge.build",
    "merge.splice",
)


@dataclass(frozen=True)
class CrashCheckReport:
    """Outcome of the per-crash-point recovery comparisons."""

    seed: int
    records: int
    converged: bool
    points_checked: tuple[str, ...]
    crashes_fired: int
    concurrent_points_checked: tuple[str, ...]
    concurrent_crashes_fired: int
    orphans_deleted: int
    replayed_ops: int
    rederived_synopses: int
    stale_epoch_drops: int
    control_records_lost: int
    problems: tuple[str, ...]


def _doc(pk: int) -> dict[str, Any]:
    return {"id": pk, "value": (pk * 13) % 1024}


def _build_cluster(
    wal_enabled: bool = True,
    crash_injector: CrashInjector | None = None,
    scheduler: str = "sync",
    scheduler_seed: int = 0,
) -> LSMCluster:
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        retry_policy=RetryPolicy.immediate(max_attempts=3),
        durable=True,
        wal_enabled=wal_enabled,
        crash_injector=crash_injector,
        scheduler=scheduler,
        scheduler_seed=scheduler_seed,
    )
    cluster.create_dataset(
        _DATASET,
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=32,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    return cluster


def _ops(records: int) -> list[tuple[str, Any]]:
    """The scripted workload: an initial bulkload, then inserts,
    deletes and an explicit final flush -- enough lifecycle traffic to
    pass every registered crash point several times."""
    ops: list[tuple[str, Any]] = [
        ("bulkload", tuple(range(_BULKLOAD_COUNT)))
    ]
    for pk in range(_BULKLOAD_COUNT, records):
        ops.append(("insert", pk))
    for pk in range(0, records, 17):
        ops.append(("delete", pk))
    ops.append(("flush", None))
    return ops


def _apply(cluster: LSMCluster, op: str, arg: Any) -> None:
    if op == "bulkload":
        cluster.bulkload(_DATASET, [_doc(pk) for pk in arg])
    elif op == "insert":
        cluster.insert(_DATASET, _doc(arg))
    elif op == "delete":
        cluster.delete(_DATASET, arg)
    else:
        cluster.flush_all(_DATASET)


def _retry(cluster: LSMCluster, op: str, arg: Any) -> None:
    """Re-apply the operation the crash interrupted, but only where
    its effect is absent -- the client-side at-least-once retry that a
    durable engine's idempotence must tolerate."""
    if op == "bulkload":
        _retry_bulkload(cluster, arg)
    elif op == "insert":
        if cluster.get(_DATASET, arg) is None:
            cluster.insert(_DATASET, _doc(arg))
    elif op == "delete":
        if cluster.get(_DATASET, arg) is not None:
            cluster.delete(_DATASET, arg)
    else:
        cluster.flush_all(_DATASET)


def _retry_bulkload(cluster: LSMCluster, pks: tuple[int, ...]) -> None:
    """Reload only the partitions whose load transaction was voided.

    A bulkload commits per partition (one manifest transaction each),
    so after a mid-load crash some partitions hold their component and
    the rest recovered empty; reloading an already-loaded partition
    would violate the load-into-empty contract.
    """
    batches: dict[int, list[dict[str, Any]]] = {}
    for pk in pks:
        batches.setdefault(cluster.partitioner.partition_of(pk), []).append(
            _doc(pk)
        )
    for partition_id, batch in batches.items():
        node = cluster._partition_owner[partition_id]
        dataset = node.dataset(_DATASET, partition_id)
        if dataset.primary.components or dataset.primary.memtable:
            continue  # this partition's load already committed
        batch.sort(key=lambda document: document["id"])
        node.bulkload(_DATASET, partition_id, batch)


def _run_script(
    cluster: LSMCluster, records: int
) -> SimulatedCrash | None:
    """Run the workload; on a simulated crash, restart every node,
    recover, retry the interrupted op and finish the script."""
    ops = _ops(records)
    position = 0
    try:
        for position, (op, arg) in enumerate(ops):
            _apply(cluster, op, arg)
    except SimulatedCrash as crash:
        cluster.restart_nodes()
        cluster.recover_statistics()
        op, arg = ops[position]
        _retry(cluster, op, arg)
        for op, arg in ops[position + 1 :]:
            _apply(cluster, op, arg)
        cluster.drain_maintenance()
        cluster.recover_statistics()
        return crash
    cluster.drain_maintenance()
    cluster.recover_statistics()
    return None


def _contents_image(cluster: LSMCluster) -> dict:
    """Reconciled per-partition scans as comparable plain data."""
    image: dict = {}
    for node in cluster.nodes:
        for partition_id in node.partition_ids:
            dataset = node.dataset(_DATASET, partition_id)
            image[(node.node_id, partition_id, "primary")] = tuple(
                (record.key, record.value["value"])
                for record in dataset.primary.scan()
            )
            image[(node.node_id, partition_id, "value_idx")] = tuple(
                record.key
                for record in dataset.scan_secondary("value_idx")
            )
    return image


def _estimate_sweep(cluster: LSMCluster) -> list[float]:
    return [
        cluster.estimate(_DATASET, "value_idx", lo, lo + width)
        for lo in range(0, 1024, 64)
        for width in (0, 15, 255)
    ]


def _compare(point: str, baseline: dict, recovered: dict) -> list[str]:
    """Diff the three baseline images against a recovered run's."""
    problems: list[str] = []
    if baseline["contents"] != recovered["contents"]:
        diverged = sorted(
            key
            for key in baseline["contents"]
            if baseline["contents"][key] != recovered["contents"].get(key)
        )
        problems.append(f"{point}: partition contents diverged: {diverged[:4]}")
    expected, actual = baseline["catalog"], recovered["catalog"]
    if set(expected) != set(actual):
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        problems.append(
            f"{point}: catalog entries differ "
            f"(missing {missing[:3]}, extra {extra[:3]})"
        )
    else:
        diverged = [key for key in expected if expected[key] != actual[key]]
        if diverged:
            problems.append(
                f"{point}: synopsis payloads diverged for {diverged[:3]}"
            )
    if baseline["estimates"] != recovered["estimates"]:
        deltas = [
            (index, expected_value, actual_value)
            for index, (expected_value, actual_value) in enumerate(
                zip(baseline["estimates"], recovered["estimates"])
            )
            if expected_value != actual_value
        ]
        problems.append(f"{point}: estimates diverged: {deltas[:3]}")
    return problems


def _images(cluster: LSMCluster) -> dict:
    return {
        "contents": _contents_image(cluster),
        "catalog": _catalog_image(cluster),
        "estimates": _estimate_sweep(cluster),
    }


def run_crashcheck(seed: int = 0, records: int = 512) -> CrashCheckReport:
    """Verify bit-identical recovery at every registered crash point."""
    with use_registry(MetricsRegistry()):
        baseline_cluster = _build_cluster()
        crash = _run_script(baseline_cluster, records)
        assert crash is None  # no injector armed
        baseline = _images(baseline_cluster)
        baseline_live = baseline_cluster.count_records(_DATASET)

    problems: list[str] = []
    crashes_fired = 0
    orphans_deleted = 0
    replayed_ops = 0
    rederived = 0
    stale_drops = 0
    for point in CRASH_POINTS:
        registry = MetricsRegistry()
        with use_registry(registry):
            injector = CrashInjector.seeded(seed, point)
            cluster = _build_cluster(crash_injector=injector)
            crash = _run_script(cluster, records)
            if crash is None:
                problems.append(
                    f"{point}: crash never fired (planned hit "
                    f"{injector.plan.hit}, passages "
                    f"{injector.hits.get(point, 0)})"
                )
                continue
            crashes_fired += 1
            problems.extend(_compare(point, baseline, _images(cluster)))
            if cluster.statistics_backlog():
                problems.append(
                    f"{point}: {cluster.statistics_backlog()} statistics "
                    "messages still parked after recovery"
                )
        counters = registry.snapshot()["counters"]
        orphans_deleted += counters.get("recovery.orphans.deleted", 0)
        replayed_ops += counters.get("recovery.replayed.ops", 0)
        rederived += counters.get("collector.synopses.rederived", 0)
        stale_drops += counters.get("cluster.stats.stale_epoch", 0)

    # Concurrent sweep: the same lifecycle points, but the flush/merge
    # that dies is a *background* task on the (deterministic) virtual
    # scheduler, with ingestion mid-flight around it.  Pending lane
    # work is discarded on restart -- exactly the in-memory loss a real
    # process death inflicts -- and recovery must still converge to the
    # synchronous crash-free baseline.
    concurrent_fired = 0
    for point in _CONCURRENT_POINTS:
        with use_registry(MetricsRegistry()):
            injector = CrashInjector.seeded(seed, point)
            cluster = _build_cluster(
                crash_injector=injector, scheduler="virtual", scheduler_seed=seed
            )
            crash = _run_script(cluster, records)
            if crash is None:
                problems.append(
                    f"virtual:{point}: crash never fired (planned hit "
                    f"{injector.plan.hit}, passages "
                    f"{injector.hits.get(point, 0)})"
                )
                continue
            concurrent_fired += 1
            problems.extend(
                _compare(f"virtual:{point}", baseline, _images(cluster))
            )
            if cluster.statistics_backlog():
                problems.append(
                    f"virtual:{point}: {cluster.statistics_backlog()} "
                    "statistics messages still parked after recovery"
                )

    # Negative control: same harness, WAL disabled.  The crash loses
    # the acknowledged records sitting in memtables; only the one
    # interrupted operation is retried, so the loss must be visible.
    with use_registry(MetricsRegistry()):
        control_injector = CrashInjector(CrashPlan("flush.build", 1))
        control = _build_cluster(
            wal_enabled=False, crash_injector=control_injector
        )
        control_crash = _run_script(control, records)
        control_lost = baseline_live - control.count_records(_DATASET)
        if control_crash is None:
            problems.append("control: crash never fired")
        elif control_lost <= 0:
            problems.append(
                "control: WAL-less crash lost no acknowledged records "
                f"(lost={control_lost}) -- the check proves nothing"
            )

    return CrashCheckReport(
        seed=seed,
        records=records,
        converged=not problems,
        points_checked=CRASH_POINTS,
        crashes_fired=crashes_fired,
        concurrent_points_checked=_CONCURRENT_POINTS,
        concurrent_crashes_fired=concurrent_fired,
        orphans_deleted=orphans_deleted,
        replayed_ops=replayed_ops,
        rederived_synopses=rederived,
        stale_epoch_drops=stale_drops,
        control_records_lost=control_lost,
        problems=tuple(problems),
    )


def format_report(report: CrashCheckReport) -> str:
    lines = [
        f"crashcheck seed={report.seed} records={report.records}",
        f"  crash points: {report.crashes_fired}/"
        f"{len(report.points_checked)} fired",
        f"  concurrent (virtual scheduler): "
        f"{report.concurrent_crashes_fired}/"
        f"{len(report.concurrent_points_checked)} background-task "
        "crashes fired",
        f"  recovery: replayed_ops={report.replayed_ops}"
        f" rederived_synopses={report.rederived_synopses}"
        f" orphans_deleted={report.orphans_deleted}"
        f" stale_epoch_drops={report.stale_epoch_drops}",
        f"  control (no WAL): {report.control_records_lost}"
        " acknowledged records lost",
    ]
    if report.converged:
        lines.append(
            "  converged: contents, catalog and estimates are "
            "bit-identical to the crash-free run at every point"
        )
    else:
        lines.append("  DIVERGED:")
        lines.extend(f"    - {problem}" for problem in report.problems)
    return "\n".join(lines)
