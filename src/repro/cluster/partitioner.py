"""Hash partitioning of primary keys across cluster partitions.

AsterixDB hash-partitions datasets across the data partitions of its
shared-nothing cluster (the paper's testbed exposes 8 partitions over 4
nodes).  The hash is deterministic across processes -- Python's builtin
``hash`` is salted for strings, so integers use Knuth's multiplicative
hash and everything else a digest of its repr.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.errors import ClusterError

__all__ = ["HashPartitioner"]

_KNUTH = 2654435761
_MASK = (1 << 32) - 1


class HashPartitioner:
    """Maps primary keys to partition numbers ``0 .. n-1``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ClusterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def partition_of(self, key: Any) -> int:
        """The partition that owns ``key``."""
        if isinstance(key, int):
            hashed = (key * _KNUTH) & _MASK
            hashed ^= hashed >> 16
        else:
            digest = hashlib.md5(repr(key).encode()).digest()
            hashed = int.from_bytes(digest[:4], "little")
        return hashed % self.num_partitions
