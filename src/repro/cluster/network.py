"""A synchronous in-process network with serialisation accounting.

Stands in for the Gigabit Ethernet of the paper's 4+1-node cluster.
Messages are JSON-serialisable dicts; every send is charged its
serialised size, so experiments can report how much synopsis traffic
the statistics framework generates (Section 3.4: each local synopsis
"is sent over the network to the master node").

Delivery is synchronous and ordered -- adequate for the statistics
protocol, which tolerates any interleaving anyway because the catalog
is keyed by component.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClusterError

__all__ = ["NetworkStats", "Network"]

MessageHandler = Callable[[str, dict[str, Any]], None]


@dataclass
class NetworkStats:
    """Traffic counters, overall and per destination."""

    messages: int = 0
    bytes_sent: int = 0
    per_destination: dict[str, int] = field(default_factory=dict)

    def record(self, destination: str, size: int) -> None:
        """Charge one message of ``size`` bytes to ``destination``."""
        self.messages += 1
        self.bytes_sent += size
        self.per_destination[destination] = (
            self.per_destination.get(destination, 0) + size
        )


class Network:
    """Registry of node endpoints with synchronous message delivery."""

    def __init__(self) -> None:
        self._handlers: dict[str, MessageHandler] = {}
        self.stats = NetworkStats()

    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach a node endpoint; one handler per node id."""
        if node_id in self._handlers:
            raise ClusterError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def send(self, source: str, destination: str, message: dict[str, Any]) -> int:
        """Serialise, account and deliver a message; returns its size."""
        handler = self._handlers.get(destination)
        if handler is None:
            raise ClusterError(f"unknown destination node {destination!r}")
        size = len(json.dumps(message, separators=(",", ":")).encode())
        self.stats.record(destination, size)
        handler(source, message)
        return size

    @property
    def node_ids(self) -> list[str]:
        """All registered endpoints."""
        return sorted(self._handlers)
