"""A synchronous in-process network with serialisation accounting.

Implements the transport of the paper's Section 3.4 statistics
protocol: "each local synopsis ... is sent over the network to the
master node[;] the synopsis is persisted in the system catalog, so that
it can be used during query optimization."  It stands in for the
Gigabit Ethernet of the paper's 4+1-node AsterixDB cluster (Section
4.1's testbed).  Messages are JSON-serialisable dicts; every send is
charged its serialised size, so experiments can report exactly how much
synopsis traffic the framework generates -- the paper's argument that
shipping a few hundred bucket values is negligible next to the data
itself.

By default delivery is synchronous, ordered and exactly-once --
adequate for the happy-path statistics protocol.  Installing a
:class:`~repro.cluster.faults.FaultPlan` turns the wire adversarial:
sends may be lost (the sender sees
:class:`~repro.errors.NetworkUnavailableError`, the simulated send
timeout), duplicated, held back past later traffic (reordering) or
delayed for several ticks.  The fault path is entirely bypassed when no
plan is installed, so the perfect-wire byte accounting of the figure
benchmarks is unchanged.

Traffic is observable twice over: the :class:`NetworkStats` attribute
(per-destination byte accounting, used by the figure benchmarks) and
the ``network.*`` metrics of the injected
:class:`~repro.obs.registry.MetricsRegistry` (docs/OBSERVABILITY.md),
including the fault counters ``network.dropped`` /
``network.duplicated`` / ``network.reordered`` / ``network.delayed``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.faults import FaultDecision, FaultPlan
from repro.errors import ClusterError, NetworkUnavailableError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["NetworkStats", "Network"]

MessageHandler = Callable[[str, dict[str, Any]], None]


@dataclass
class NetworkStats:
    """Traffic counters, overall and per destination."""

    messages: int = 0
    bytes_sent: int = 0
    per_destination: dict[str, int] = field(default_factory=dict)

    def record(self, destination: str, size: int) -> None:
        """Charge one message of ``size`` bytes to ``destination``."""
        self.messages += 1
        self.bytes_sent += size
        self.per_destination[destination] = (
            self.per_destination.get(destination, 0) + size
        )


@dataclass(frozen=True)
class _HeldMessage:
    """A message parked for reordering/delay until ``release_tick``."""

    release_tick: int
    order: int  # FIFO among equal release ticks
    source: str
    destination: str
    message: dict[str, Any]
    size: int


class Network:
    """Registry of node endpoints with synchronous message delivery.

    Args:
        registry: Metrics registry (default: the process-global one).
        fault_plan: Optional seeded :class:`FaultPlan`; ``None`` (the
            default) keeps the wire perfect and the hot path identical
            to the pre-fault implementation.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self._handlers: dict[str, MessageHandler] = {}
        self.stats = NetworkStats()
        self.fault_plan = fault_plan
        self._clock = 0  # one tick per send attempt: the fault-plan time base
        self._held: list[_HeldMessage] = []
        self._held_order = 0
        # The wire is a shared medium: statistics sinks on background
        # maintenance threads and the application thread may send
        # concurrently.  One reentrant lock serialises send/drain (and
        # the handler calls inside them) -- delivery stays synchronous
        # and ordered, matching the single-wire model.  Reentrant
        # because a delivered message's handler may itself send.
        self._wire_lock = threading.RLock()
        obs = registry if registry is not None else get_registry()
        self._m_messages = obs.counter("network.messages")
        self._m_bytes = obs.counter("network.bytes")
        self._m_dropped = obs.counter("network.dropped")
        self._m_duplicated = obs.counter("network.duplicated")
        self._m_reordered = obs.counter("network.reordered")
        self._m_delayed = obs.counter("network.delayed")

    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach a node endpoint; one handler per node id."""
        if node_id in self._handlers:
            raise ClusterError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def send(self, source: str, destination: str, message: dict[str, Any]) -> int:
        """Serialise, account and deliver a message; returns its size.

        Raises :class:`NetworkUnavailableError` when the installed
        fault plan loses the message or the destination is inside an
        unavailability window -- the sender cannot tell which, exactly
        like a timed-out send.
        """
        with self._wire_lock:
            return self._send_locked(source, destination, message)

    def _send_locked(
        self, source: str, destination: str, message: dict[str, Any]
    ) -> int:
        handler = self._handlers.get(destination)
        if handler is None:
            raise ClusterError(f"unknown destination node {destination!r}")
        size = len(json.dumps(message, separators=(",", ":")).encode())
        plan = self.fault_plan
        if plan is None:
            self._deliver(handler, source, destination, message, size)
            return size

        tick = self._clock
        self._clock += 1
        decision = plan.decide(source, destination, tick)
        if decision.disposition is FaultDecision.DROP:
            self._m_dropped.inc()
            # Losses still advance time, releasing any due held traffic.
            self._release_due(tick)
            raise NetworkUnavailableError(
                f"send {source!r} -> {destination!r} {decision.reason or 'lost'}"
                f" at tick {tick}"
            )
        copies = 1
        if decision.duplicate:
            copies = 2
            self._m_duplicated.inc()
        if decision.disposition is FaultDecision.HOLD:
            counter = (
                self._m_delayed
                if decision.reason == "delayed"
                else self._m_reordered
            )
            counter.inc()
            for _ in range(copies):
                self._held.append(
                    _HeldMessage(
                        decision.release_tick,
                        self._held_order,
                        source,
                        destination,
                        message,
                        size,
                    )
                )
                self._held_order += 1
        else:
            for _ in range(copies):
                self._deliver(handler, source, destination, message, size)
        self._release_due(tick)
        return size

    def drain(self) -> int:
        """Deliver every held (reordered/delayed) message immediately.

        Recovery hook for chaos runs: once ingestion stops, no further
        sends advance the clock, so parked messages would otherwise
        never be released.  Returns how many messages were delivered.
        """
        with self._wire_lock:
            return self._release_due(None)

    @property
    def pending_count(self) -> int:
        """Messages currently parked for reordering/delay."""
        return len(self._held)

    @property
    def node_ids(self) -> list[str]:
        """All registered endpoints."""
        return sorted(self._handlers)

    # -- internals -----------------------------------------------------------

    def _deliver(
        self,
        handler: MessageHandler,
        source: str,
        destination: str,
        message: dict[str, Any],
        size: int,
    ) -> None:
        self.stats.record(destination, size)
        self._m_messages.inc()
        self._m_bytes.inc(size)
        handler(source, message)

    def _release_due(self, tick: int | None) -> int:
        """Deliver held messages whose release tick has passed
        (``tick=None`` releases everything)."""
        if not self._held:
            return 0
        due: list[_HeldMessage] = []
        keep: list[_HeldMessage] = []
        for held in self._held:
            if tick is None or held.release_tick <= tick:
                due.append(held)
            else:
                keep.append(held)
        if not due:
            return 0
        self._held = keep
        for held in sorted(due, key=lambda h: (h.release_tick, h.order)):
            handler = self._handlers.get(held.destination)
            if handler is None:  # endpoint vanished; count as a loss
                self._m_dropped.inc()
                continue
            self._deliver(
                handler, held.source, held.destination, held.message, held.size
            )
        return len(due)
