"""A synchronous in-process network with serialisation accounting.

Implements the transport of the paper's Section 3.4 statistics
protocol: "each local synopsis ... is sent over the network to the
master node[;] the synopsis is persisted in the system catalog, so that
it can be used during query optimization."  It stands in for the
Gigabit Ethernet of the paper's 4+1-node AsterixDB cluster (Section
4.1's testbed).  Messages are JSON-serialisable dicts; every send is
charged its serialised size, so experiments can report exactly how much
synopsis traffic the framework generates -- the paper's argument that
shipping a few hundred bucket values is negligible next to the data
itself.

Delivery is synchronous and ordered -- adequate for the statistics
protocol, which tolerates any interleaving anyway because the catalog
is keyed by component.

Traffic is observable twice over: the :class:`NetworkStats` attribute
(per-destination byte accounting, used by the figure benchmarks) and
the ``network.messages`` / ``network.bytes`` metrics of the injected
:class:`~repro.obs.registry.MetricsRegistry` (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClusterError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["NetworkStats", "Network"]

MessageHandler = Callable[[str, dict[str, Any]], None]


@dataclass
class NetworkStats:
    """Traffic counters, overall and per destination."""

    messages: int = 0
    bytes_sent: int = 0
    per_destination: dict[str, int] = field(default_factory=dict)

    def record(self, destination: str, size: int) -> None:
        """Charge one message of ``size`` bytes to ``destination``."""
        self.messages += 1
        self.bytes_sent += size
        self.per_destination[destination] = (
            self.per_destination.get(destination, 0) + size
        )


class Network:
    """Registry of node endpoints with synchronous message delivery."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._handlers: dict[str, MessageHandler] = {}
        self.stats = NetworkStats()
        obs = registry if registry is not None else get_registry()
        self._m_messages = obs.counter("network.messages")
        self._m_bytes = obs.counter("network.bytes")

    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach a node endpoint; one handler per node id."""
        if node_id in self._handlers:
            raise ClusterError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def send(self, source: str, destination: str, message: dict[str, Any]) -> int:
        """Serialise, account and deliver a message; returns its size."""
        handler = self._handlers.get(destination)
        if handler is None:
            raise ClusterError(f"unknown destination node {destination!r}")
        size = len(json.dumps(message, separators=(",", ":")).encode())
        self.stats.record(destination, size)
        self._m_messages.inc()
        self._m_bytes.inc(size)
        handler(source, message)
        return size

    @property
    def node_ids(self) -> list[str]:
        """All registered endpoints."""
        return sorted(self._handlers)
