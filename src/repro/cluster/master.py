"""The cluster controller (master node).

Receives per-component synopses from storage nodes, persists them in
the system catalog, and serves cardinality estimates to the query
optimizer -- including the merged-synopsis cache of Algorithm 2.
"""

from __future__ import annotations

from typing import Any

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.core.estimator import CardinalityEstimator, EstimateResult
from repro.cluster.network import Network
from repro.errors import ClusterError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.factory import synopsis_from_payload

__all__ = ["ClusterController"]


class ClusterController:
    """Master node: statistics catalog, cache and estimator."""

    def __init__(
        self,
        network: Network,
        node_id: str = "cc",
        cache_merged: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.node_id = node_id
        obs = registry if registry is not None else get_registry()
        self.catalog = StatisticsCatalog()
        self.cache = MergedSynopsisCache(obs) if cache_merged else None
        self.estimator = CardinalityEstimator(self.catalog, self.cache, obs)
        self.stats_messages_received = 0
        self._m_messages = obs.counter("cluster.stats.messages")
        self._g_catalog_entries = obs.gauge("cluster.catalog.entries")
        network.register(node_id, self._on_message)

    def estimate(self, index_name: str, lo: int, hi: int) -> float:
        """Cluster-wide cardinality estimate for a key range."""
        return self.estimator.estimate(index_name, lo, hi)

    def estimate_detailed(self, index_name: str, lo: int, hi: int) -> EstimateResult:
        """Estimate with overhead/caching diagnostics."""
        return self.estimator.estimate_detailed(index_name, lo, hi)

    # -- message handling ---------------------------------------------------

    def _on_message(self, source: str, message: dict[str, Any]) -> None:
        kind = message.get("kind")
        if kind == "stats.publish":
            self._handle_publish(source, message)
        elif kind == "stats.retract":
            self._handle_retract(source, message)
        else:
            raise ClusterError(f"unknown message kind {kind!r} from {source}")

    def _handle_publish(self, source: str, message: dict[str, Any]) -> None:
        self.stats_messages_received += 1
        self._m_messages.inc()
        index_name = message["index"]
        self.catalog.put(
            index_name,
            source,
            message["partition"],
            message["component_uid"],
            synopsis_from_payload(message["synopsis"]),
            synopsis_from_payload(message["anti_synopsis"]),
        )
        self._g_catalog_entries.set(self.catalog.entry_count())
        if self.cache is not None:
            self.cache.invalidate(index_name)

    def _handle_retract(self, source: str, message: dict[str, Any]) -> None:
        self._m_messages.inc()
        index_name = message["index"]
        self.catalog.retract(
            index_name,
            source,
            message["partition"],
            message["component_uids"],
        )
        self._g_catalog_entries.set(self.catalog.entry_count())
        if self.cache is not None:
            self.cache.invalidate(index_name)
