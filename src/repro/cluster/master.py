"""The cluster controller (master node).

Receives per-component synopses from storage nodes, persists them in
the system catalog, and serves cardinality estimates to the query
optimizer -- including the merged-synopsis cache of Algorithm 2.

Message application is idempotent so the retrying sink's at-least-once
delivery is safe: exact redeliveries are recognised by their
``(node, partition, seq)`` stamp and skipped, the catalog itself
tombstones retracted components against late publishes, and the merged-
synopsis cache is invalidated only when the catalog actually changed.

``stats_messages_received`` counts every statistics message handled --
publishes *and* retracts -- and therefore always equals the
``cluster.stats.messages`` metric (they moved at different rates before
this was pinned down; tests assert the equality).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.core.estimator import (
    CardinalityEstimator,
    EstimateResult,
    NDVEstimate,
)
from repro.cluster.network import Network
from repro.errors import ClusterError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.factory import synopsis_from_payload

__all__ = ["ClusterController"]


class ClusterController:
    """Master node: statistics catalog, cache and estimator."""

    def __init__(
        self,
        network: Network,
        node_id: str = "cc",
        cache_merged: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.node_id = node_id
        # Statistics publishes may arrive from background maintenance
        # threads while the application thread asks for estimates; the
        # lock keeps catalog/cache/dedup state consistent between the
        # two.  RLock: the estimator may consult the catalog re-entrantly.
        self._lock = threading.RLock()
        obs = registry if registry is not None else get_registry()
        self.catalog = StatisticsCatalog()
        self.cache = MergedSynopsisCache(obs) if cache_merged else None
        self.estimator = CardinalityEstimator(self.catalog, self.cache, obs)
        self.stats_messages_received = 0
        # (source node, partition, epoch) -> seqs already applied;
        # messages re-delivered by the at-least-once transport are
        # skipped.  Epoch is part of the channel because a restarted
        # node's sink restarts its sequence counter.
        self._applied_seqs: dict[tuple[str, int, int], set[int]] = {}
        # (source node, partition) -> highest epoch seen; messages from
        # older epochs are a crashed incarnation's stragglers and must
        # not land after the recovered node's reset.
        self._epochs: dict[tuple[str, int], int] = {}
        self._m_messages = obs.counter("cluster.stats.messages")
        self._m_duplicates = obs.counter("cluster.stats.duplicates")
        self._m_stale = obs.counter("cluster.stats.stale_epoch")
        self._m_resets = obs.counter("cluster.stats.resets")
        self._g_catalog_entries = obs.gauge("cluster.catalog.entries")
        network.register(node_id, self._on_message)

    def set_cache_capacity(self, capacity_bytes: int | None) -> None:
        """Re-target the merged-synopsis cache's byte bound.

        The memory arbiters' share-adaptation hook (docs/MEMORY.md):
        the cluster calls this with the sum of the per-node cache
        pools whenever the adaptive split moves.  Shrinking evicts
        cold entries immediately; a no-op without a cache.
        """
        with self._lock:
            if self.cache is not None:
                self.cache.set_capacity(capacity_bytes)

    def estimate(self, index_name: str, lo: int, hi: int) -> float:
        """Cluster-wide cardinality estimate for a key range."""
        with self._lock:
            return self.estimator.estimate(index_name, lo, hi)

    def estimate_detailed(self, index_name: str, lo: int, hi: int) -> EstimateResult:
        """Estimate with overhead/caching diagnostics."""
        with self._lock:
            return self.estimator.estimate_detailed(index_name, lo, hi)

    def estimate_ndv(self, index_name: str) -> float:
        """Cluster-wide distinct-value estimate for ``index_name``."""
        with self._lock:
            return self.estimator.estimate_ndv(index_name)

    def estimate_ndv_detailed(self, index_name: str) -> NDVEstimate:
        """NDV estimate with the anti-matter interval and diagnostics."""
        with self._lock:
            return self.estimator.estimate_ndv_detailed(index_name)

    def estimate_degraded(
        self, index_name: str, lo: int, hi: int
    ) -> EstimateResult | None:
        """A degraded (possibly-stale) estimate from the cached merge.

        The overload fallback of the estimate service: answers from
        whatever merged synopsis is cached for the index, *ignoring*
        staleness, and flags the result ``degraded=True``.  Returns
        ``None`` when nothing is cached (the caller then surfaces the
        overload rejection instead).  Never touches the catalog or the
        cache's LRU/metrics state, so degraded traffic cannot perturb
        the primary path.
        """
        with self._lock:
            if self.cache is None:
                return None
            cached = self.cache.peek(index_name)
            if cached is None:
                return None
            estimate = max(
                cached.synopsis.estimate(lo, hi)
                - cached.anti_synopsis.estimate(lo, hi),
                0.0,
            )
            return EstimateResult(estimate, 0, True, 0.0, degraded=True)

    # -- message handling ---------------------------------------------------

    def _on_message(self, source: str, message: dict[str, Any]) -> None:
        kind = message.get("kind")
        if kind not in ("stats.publish", "stats.retract", "stats.reset"):
            raise ClusterError(f"unknown message kind {kind!r} from {source}")
        with self._lock:
            # Legacy attribute and metric count the same thing: every
            # statistics message handled, publishes, retracts and resets
            # alike.
            self.stats_messages_received += 1
            self._m_messages.inc()
            if self._is_stale_epoch(source, message):
                self._m_stale.inc()
                return
            if self._is_duplicate(source, message):
                self._m_duplicates.inc()
                return
            if kind == "stats.publish":
                self._handle_publish(source, message)
            elif kind == "stats.retract":
                self._handle_retract(source, message)
            else:
                self._handle_reset(source, message)

    def _is_stale_epoch(self, source: str, message: dict[str, Any]) -> bool:
        """Fence out a crashed incarnation's straggler messages.

        Each node/partition carries a monotone restart epoch; the first
        message of a newer epoch raises the floor, and anything stamped
        below the floor is dropped -- a delayed pre-crash publish must
        not land after the recovered node reset its statistics.
        """
        epoch = int(message.get("epoch", 0))
        channel = (source, int(message.get("partition", -1)))
        floor = self._epochs.get(channel, 0)
        if epoch < floor:
            return True
        if epoch > floor:
            self._epochs[channel] = epoch
        return False

    def _is_duplicate(self, source: str, message: dict[str, Any]) -> bool:
        """Whether this exact message was applied before.

        Messages are stamped ``(partition, seq)`` by the sending sink
        (unique per node/partition/epoch -- a restarted sink restarts
        its sequence, so the epoch is part of the channel); unstamped
        messages -- hand-rolled tests, pre-stamp senders -- bypass
        deduplication and rely on the catalog's own idempotency.
        """
        seq = message.get("seq")
        if seq is None:
            return False
        channel = (
            source,
            int(message.get("partition", -1)),
            int(message.get("epoch", 0)),
        )
        applied = self._applied_seqs.setdefault(channel, set())
        if seq in applied:
            return True
        applied.add(seq)
        return False

    def _apply(self, index_name: str, apply_change) -> None:
        """Run a catalog mutation; refresh gauge and cache only when
        the catalog version actually moved."""
        before = self.catalog.version_for(index_name)
        apply_change()
        if self.catalog.version_for(index_name) == before:
            return
        self._g_catalog_entries.set(self.catalog.entry_count())
        if self.cache is not None:
            self.cache.invalidate(index_name)

    def _handle_publish(self, source: str, message: dict[str, Any]) -> None:
        index_name = message["index"]
        self._apply(
            index_name,
            lambda: self.catalog.put(
                index_name,
                source,
                message["partition"],
                message["component_uid"],
                synopsis_from_payload(message["synopsis"]),
                synopsis_from_payload(message["anti_synopsis"]),
                epoch=int(message.get("epoch", 0)),
            ),
        )

    def _handle_reset(self, source: str, message: dict[str, Any]) -> None:
        """A recovered node disowns its pre-crash statistics.

        Clears every catalog entry this node/partition published under
        an older epoch; the sink's FIFO outbox guarantees the reset
        precedes the recovered incarnation's re-publishes.
        """
        index_name = message["index"]
        self._m_resets.inc()
        self._apply(
            index_name,
            lambda: self.catalog.reset_partition(
                index_name,
                source,
                message["partition"],
                below_epoch=int(message.get("epoch", 0)),
            ),
        )

    def _handle_retract(self, source: str, message: dict[str, Any]) -> None:
        index_name = message["index"]
        self._apply(
            index_name,
            lambda: self.catalog.retract(
                index_name,
                source,
                message["partition"],
                message["component_uids"],
            ),
        )
