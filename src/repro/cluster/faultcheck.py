"""Seeded chaos verification behind ``repro faultcheck``.

Runs the same scripted cluster ingest twice -- once on a perfect wire,
once under a seeded :class:`~repro.cluster.faults.FaultPlan` with the
retrying sinks -- then recovers the chaotic run and verifies it
converged to the *exact* state of the fault-free run:

1. the master catalog holds the same set of
   ``(index, node, partition, component)`` entries with bit-identical
   synopsis payloads, and
2. a sweep of range estimates answers bit-identically.

Because the local LSM pipeline is oblivious to statistics-delivery
failures (the sink never blocks ingestion), both runs build identical
components; any divergence therefore indicts the transport -- a lost,
duplicated, reordered or resurrected statistics message that the
retry/idempotency machinery failed to absorb.

The chaos run's ingest travels the *feed path*: a
:class:`~repro.cluster.feeds.ResumableFeedConsumer` drains a
changestream source with a seeded
:class:`~repro.cluster.faults.FeedFaultPlan` armed (injected
disconnects, partial batches, duplicate deliveries), so feed faults and
wire faults compose in one seeded run.  The consumer's dedup and
reconnect machinery must absorb the feed chaos exactly as the sink
absorbs the wire chaos -- the applied operation sequence, and therefore
every component, stays identical to the baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import LSMCluster
from repro.cluster.faults import FaultPlan, FeedFaultPlan, FeedFaults, LinkFaults
from repro.cluster.feeds import (
    ChangestreamFeed,
    DatasetFeedAdapter,
    FeedCursorStore,
    FeedOperation,
    FeedRecord,
    ResumableFeedConsumer,
)
from repro.cluster.node import RetryPolicy
from repro.core.config import StatisticsConfig
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain

__all__ = ["FaultCheckReport", "run_faultcheck", "format_report"]


@dataclass(frozen=True)
class FaultCheckReport:
    """Outcome of one seeded chaos-vs-baseline comparison."""

    seed: int
    records: int
    converged: bool
    catalog_entries: int
    recovery_rounds: int
    dropped: int
    duplicated: int
    reordered: int
    delayed: int
    retries: int
    duplicates_skipped: int
    feed_disconnects: int
    feed_deduplicated: int
    problems: tuple[str, ...]


def _build_cluster(fault_plan: FaultPlan | None) -> LSMCluster:
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy.immediate(max_attempts=3),
    )
    cluster.create_dataset(
        "chaos",
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=32,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    return cluster


def _ingest(
    cluster: LSMCluster, records: int, feed_plan: FeedFaultPlan | None = None
) -> None:
    """Deterministic ingest through the feed path: inserts, deletes
    (anti-matter) and a final flush -- enough flush/merge traffic to
    exercise publishes and retracts.  With a ``feed_plan`` the
    changestream transport injects disconnects, partial batches and
    duplicate deliveries, which the consumer must absorb without
    changing the applied operation sequence."""
    ops = [
        FeedRecord(
            FeedOperation.INSERT, {"id": pk, "value": (pk * 13) % 1024}
        )
        for pk in range(records)
    ] + [
        FeedRecord(FeedOperation.DELETE, {"id": pk})
        for pk in range(0, records, 17)
    ]
    consumer = ResumableFeedConsumer(
        ChangestreamFeed("chaos_ingest", ops, fault_plan=feed_plan),
        DatasetFeedAdapter(cluster, "chaos"),
        FeedCursorStore(cluster.nodes[0].disk),
        retry_policy=RetryPolicy.immediate(max_attempts=5),
    )
    consumer.run()


def _catalog_image(cluster: LSMCluster) -> dict:
    """The master catalog as comparable plain data.

    Component uids come from a process-global counter, so two runs in
    the same process assign different absolute uids to corresponding
    components; they are normalised to their rank within each
    ``(index, node, partition)`` group (uid order is creation order).
    """
    grouped: dict[tuple[str, str, int], list] = {}
    catalog = cluster.master.catalog
    for index_name in catalog.index_names():
        for entry in catalog.entries_for(index_name):
            grouped.setdefault(
                (index_name, entry.node_id, entry.partition_id), []
            ).append(entry)
    image = {}
    for (index_name, node_id, partition_id), entries in grouped.items():
        entries.sort(key=lambda e: e.component_uid)
        for rank, entry in enumerate(entries):
            image[(index_name, node_id, partition_id, rank)] = (
                entry.synopsis.to_payload(),
                entry.anti_synopsis.to_payload(),
            )
    return image


def _estimate_sweep(cluster: LSMCluster) -> list[float]:
    return [
        cluster.estimate("chaos", "value_idx", lo, lo + width)
        for lo in range(0, 1024, 64)
        for width in (0, 15, 255)
    ]


def run_faultcheck(
    seed: int = 0,
    records: int = 512,
    drop: float = 0.10,
    duplicate: float = 0.10,
    reorder: float = 0.10,
    delay: float = 0.05,
    feed_disconnect: float = 0.03,
    feed_duplicate: float = 0.05,
) -> FaultCheckReport:
    """Run the chaos ingest and verify convergence to the baseline."""
    # Each run gets its own registry so the chaos run's fault metrics
    # are not polluted by baseline traffic (instruments bind at
    # construction time).
    with use_registry(MetricsRegistry()):
        baseline = _build_cluster(fault_plan=None)
        _ingest(baseline, records)

    plan = FaultPlan(
        seed=seed,
        default=LinkFaults(
            drop=drop, duplicate=duplicate, reorder=reorder, delay=delay
        ),
        # The master drops off the wire for a stretch mid-ingest; the
        # sinks must degrade gracefully and flush the backlog after.
        unavailable={"cc": [(40, 80)]},
    )
    feed_plan = FeedFaultPlan(
        seed=seed,
        faults=FeedFaults(disconnect=feed_disconnect, duplicate=feed_duplicate),
    )
    chaos_registry = MetricsRegistry()
    with use_registry(chaos_registry):
        chaotic = _build_cluster(fault_plan=plan)
        _ingest(chaotic, records, feed_plan=feed_plan)
        recovery_rounds = chaotic.recover_statistics()

    problems: list[str] = []
    expected = _catalog_image(baseline)
    actual = _catalog_image(chaotic)
    if set(expected) != set(actual):
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        if missing:
            problems.append(f"catalog missing entries: {missing[:5]}")
        if extra:
            problems.append(f"catalog has extra entries: {extra[:5]}")
    else:
        diverged = [key for key in expected if expected[key] != actual[key]]
        if diverged:
            problems.append(f"synopsis payloads diverged for: {diverged[:5]}")

    if not problems:
        baseline_estimates = _estimate_sweep(baseline)
        chaotic_estimates = _estimate_sweep(chaotic)
        if baseline_estimates != chaotic_estimates:
            deltas = [
                (index, expected_value, actual_value)
                for index, (expected_value, actual_value) in enumerate(
                    zip(baseline_estimates, chaotic_estimates)
                )
                if expected_value != actual_value
            ]
            problems.append(f"estimates diverged: {deltas[:5]}")

    if chaotic.statistics_backlog():
        problems.append(
            f"{chaotic.statistics_backlog()} messages still parked after recovery"
        )

    counters = chaos_registry.snapshot()["counters"]
    return FaultCheckReport(
        seed=seed,
        records=records,
        converged=not problems,
        catalog_entries=chaotic.master.catalog.entry_count(),
        recovery_rounds=recovery_rounds,
        dropped=counters.get("network.dropped", 0),
        duplicated=counters.get("network.duplicated", 0),
        reordered=counters.get("network.reordered", 0),
        delayed=counters.get("network.delayed", 0),
        retries=counters.get("sink.retries", 0),
        duplicates_skipped=counters.get("cluster.stats.duplicates", 0),
        feed_disconnects=counters.get("feed.source.disconnects", 0),
        feed_deduplicated=counters.get("feed.records.deduplicated", 0),
        problems=tuple(problems),
    )


def format_report(report: FaultCheckReport) -> str:
    lines = [
        f"faultcheck seed={report.seed} records={report.records}",
        f"  injected: dropped={report.dropped} duplicated={report.duplicated}"
        f" reordered={report.reordered} delayed={report.delayed}",
        f"  absorbed: retries={report.retries}"
        f" duplicates_skipped={report.duplicates_skipped}"
        f" recovery_rounds={report.recovery_rounds}",
        f"  feed chaos: disconnects={report.feed_disconnects}"
        f" deduplicated={report.feed_deduplicated}",
        f"  catalog entries: {report.catalog_entries}",
    ]
    if report.converged:
        lines.append("  converged: catalog and estimates match the fault-free run")
    else:
        lines.append("  DIVERGED:")
        lines.extend(f"    - {problem}" for problem in report.problems)
    return "\n".join(lines)
