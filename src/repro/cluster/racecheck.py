"""Concurrent-maintenance equivalence verification (``repro racecheck``).

The background scheduler's contract is that concurrency changes *when*
maintenance runs but never *what* it produces: after a drain, a cluster
that flushed and merged on background workers must be bit-identical --
partition contents, master catalog and a sweep of range estimates --
to one that did everything inline (the legacy synchronous mode, which
is also the crash-recovery oracle).

The check runs a scripted ingest (bulkload, inserts, deletes, periodic
explicit flushes) three ways:

1. ``scheduler="sync"`` -- the baseline.  Every flush and merge happens
   inline with the triggering write.
2. ``scheduler="virtual"`` once per sweep seed -- the deterministic
   step-executor interleaves the per-partition maintenance lanes by
   seeded choice, so every schedule it explores is replayable from its
   seed.
3. ``scheduler="threads"`` once per sweep seed -- real worker threads,
   real preemption.  The OS schedule is not replayable, so each seed's
   run is simply one more sample of the nondeterminism.

Catalog images are uid-rank normalised (component uids come from a
global counter, so their absolute values depend on the global
interleaving of flushes across partitions; their *order within a
partition's index* is what statistics correctness depends on, and lane
FIFO preserves it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.cluster import LSMCluster
from repro.cluster.faultcheck import _catalog_image
from repro.cluster.node import RetryPolicy
from repro.core.config import StatisticsConfig
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain

__all__ = ["RaceCheckReport", "run_racecheck", "format_report", "DEFAULT_SEEDS"]

_DATASET = "race"
_BULKLOAD_COUNT = 64

#: Paced-mode merge budget (records/second).  High enough that the
#: scripted workload finishes promptly, low enough that thread-mode
#: merges actually hit the token bucket and sleep at chunk boundaries.
PACED_MERGE_RATE = 50_000.0

#: Memory-mode cluster budget (bytes).  Small enough that the scripted
#: workload's per-dataset allowance sits *below* the 32-record memtable
#: capacity, so arbitration-triggered early flushes genuinely fire --
#: the image-affecting decision whose mode-invariance this proves.
MEMORY_CHECK_BUDGET = 32_768

DEFAULT_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4)
"""The default sweep: each seed drives one virtual-scheduler
interleaving and one real-thread run."""

QUICK_SEEDS: tuple[int, ...] = (0, 1)
"""The CI-sized sweep (``repro racecheck --quick``)."""


@dataclass(frozen=True)
class RaceCheckReport:
    """Outcome of the concurrent-vs-synchronous comparisons."""

    seeds: tuple[int, ...]
    records: int
    converged: bool
    runs_compared: int
    background_tasks: int
    stalls: int
    problems: tuple[str, ...]


def _doc(pk: int) -> dict[str, Any]:
    return {"id": pk, "value": (pk * 13) % 1024}


def _build_cluster(
    scheduler: str = "sync",
    seed: int = 0,
    paced: bool = False,
    memory: bool = False,
) -> LSMCluster:
    return LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        retry_policy=RetryPolicy.immediate(max_attempts=3),
        durable=True,
        scheduler=scheduler,
        scheduler_seed=seed,
        merge_pacing_rate=PACED_MERGE_RATE if paced else None,
        memory_budget=MEMORY_CHECK_BUDGET if memory else None,
    )


def _run_workload(cluster: LSMCluster, records: int) -> None:
    """The scripted ingest: enough flush/merge lifecycle traffic that
    background lanes stay busy while the DML thread keeps writing."""
    cluster.create_dataset(
        _DATASET,
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=32,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    cluster.bulkload(_DATASET, [_doc(pk) for pk in range(_BULKLOAD_COUNT)])
    for pk in range(_BULKLOAD_COUNT, records):
        cluster.insert(_DATASET, _doc(pk))
        # A mid-script explicit flush exercises the drain barrier while
        # merge continuations may still be queued behind it.
        if pk == _BULKLOAD_COUNT + records // 2:
            cluster.flush_all(_DATASET)
    for pk in range(0, records, 17):
        cluster.delete(_DATASET, pk)
    cluster.flush_all(_DATASET)
    cluster.drain_maintenance()
    cluster.recover_statistics()
    cluster.shutdown()


def _contents_image(cluster: LSMCluster) -> dict:
    """Reconciled per-partition scans as comparable plain data."""
    image: dict = {}
    for node in cluster.nodes:
        for partition_id in node.partition_ids:
            dataset = node.dataset(_DATASET, partition_id)
            image[(node.node_id, partition_id, "primary")] = tuple(
                (record.key, record.value["value"])
                for record in dataset.primary.scan()
            )
            image[(node.node_id, partition_id, "value_idx")] = tuple(
                record.key for record in dataset.scan_secondary("value_idx")
            )
            image[(node.node_id, partition_id, "structure")] = tuple(
                tuple(
                    component.record_count
                    for component in dataset.secondary_tree(index).components
                )
                if index != "primary"
                else tuple(
                    component.record_count
                    for component in dataset.primary.components
                )
                for index in ("primary", "value_idx")
            )
    return image


def _estimate_sweep(cluster: LSMCluster) -> list[float]:
    return [
        cluster.estimate(_DATASET, "value_idx", lo, lo + width)
        for lo in range(0, 1024, 64)
        for width in (0, 15, 255)
    ]


def _images(cluster: LSMCluster) -> dict:
    return {
        "contents": _contents_image(cluster),
        "catalog": _catalog_image(cluster),
        "estimates": _estimate_sweep(cluster),
    }


def _compare(label: str, baseline: dict, concurrent: dict) -> list[str]:
    """Diff the three baseline images against a concurrent run's."""
    problems: list[str] = []
    if baseline["contents"] != concurrent["contents"]:
        diverged = sorted(
            key
            for key in baseline["contents"]
            if baseline["contents"][key] != concurrent["contents"].get(key)
        )
        problems.append(f"{label}: partition contents diverged: {diverged[:4]}")
    expected, actual = baseline["catalog"], concurrent["catalog"]
    if set(expected) != set(actual):
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        problems.append(
            f"{label}: catalog entries differ "
            f"(missing {missing[:3]}, extra {extra[:3]})"
        )
    else:
        diverged = [key for key in expected if expected[key] != actual[key]]
        if diverged:
            problems.append(
                f"{label}: synopsis payloads diverged for {diverged[:3]}"
            )
    if baseline["estimates"] != concurrent["estimates"]:
        deltas = [
            (index, expected_value, actual_value)
            for index, (expected_value, actual_value) in enumerate(
                zip(baseline["estimates"], concurrent["estimates"])
            )
            if expected_value != actual_value
        ]
        problems.append(f"{label}: estimates diverged: {deltas[:3]}")
    return problems


def run_racecheck(
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    records: int = 512,
    paced: bool = False,
    memory: bool = False,
) -> RaceCheckReport:
    """Verify that concurrent maintenance ends bit-identical to sync.

    With ``paced=True`` every run (baseline included) carries a merge
    pacer, proving pacing is image-neutral: it throttles *when* merge
    chunks are processed under real threads, never what they produce.

    With ``memory=True`` every run carries a deliberately tight
    :class:`~repro.lsm.memory.MemoryArbiter` budget, proving memory
    arbitration is image-neutral: early flushes trigger at the identical
    record under every scheduler mode (the allowance is a pure function
    of DML-thread state), and the pool backpressure/cache capacity
    responses only move timing.
    """
    baseline_registry = MetricsRegistry()
    with use_registry(baseline_registry):
        baseline_cluster = _build_cluster(paced=paced, memory=memory)
        _run_workload(baseline_cluster, records)
        baseline = _images(baseline_cluster)

    problems: list[str] = []
    # The synchronous oracle has no background tasks, so a recorded
    # stall there is phantom backpressure (the wait() accounting bug
    # this guards against).
    baseline_stalls = baseline_registry.snapshot()["counters"].get(
        "scheduler.stalls", 0
    )
    if baseline_stalls:
        problems.append(
            f"sync baseline recorded {baseline_stalls} stall(s); "
            "synchronous maintenance can never stall on itself"
        )
    if memory:
        # The memory sweep is vacuous unless the tight budget actually
        # triggered arbitration on the baseline.
        early_flushes = baseline_registry.snapshot()["counters"].get(
            "memory.pressure.early_flush", 0
        )
        if not early_flushes:
            problems.append(
                "memory mode ran but the baseline recorded zero early "
                "flushes -- the budget is too generous to exercise "
                "arbitration"
            )
    runs = 0
    background_tasks = 0
    stalls = 0
    for seed in seeds:
        for mode in ("virtual", "threads"):
            registry = MetricsRegistry()
            with use_registry(registry):
                cluster = _build_cluster(
                    scheduler=mode, seed=seed, paced=paced, memory=memory
                )
                label = f"{mode}[seed={seed}]"
                try:
                    _run_workload(cluster, records)
                except Exception as error:  # noqa: BLE001 - report, keep sweeping
                    problems.append(f"{label}: workload failed: {error!r}")
                    continue
                runs += 1
                problems.extend(_compare(label, baseline, _images(cluster)))
                if cluster.statistics_backlog():
                    problems.append(
                        f"{label}: {cluster.statistics_backlog()} statistics "
                        "messages still parked after the drain"
                    )
            counters = registry.snapshot()["counters"]
            submitted = counters.get("scheduler.tasks.submitted", 0)
            completed = counters.get("scheduler.tasks.completed", 0)
            background_tasks += completed
            stalls += counters.get("scheduler.stalls", 0)
            if submitted == 0:
                problems.append(
                    f"{label}: no background tasks ran -- the mode fell "
                    "back to inline maintenance"
                )
            elif completed != submitted:
                problems.append(
                    f"{label}: {submitted - completed} of {submitted} "
                    "scheduled tasks never completed"
                )

    return RaceCheckReport(
        seeds=tuple(seeds),
        records=records,
        converged=not problems,
        runs_compared=runs,
        background_tasks=background_tasks,
        stalls=stalls,
        problems=tuple(problems),
    )


def format_report(report: RaceCheckReport) -> str:
    lines = [
        f"racecheck seeds={list(report.seeds)} records={report.records}",
        f"  runs: {report.runs_compared} concurrent runs compared "
        "against the synchronous baseline",
        f"  background: {report.background_tasks} maintenance tasks, "
        f"{report.stalls} write-path stalls",
    ]
    if report.converged:
        lines.append(
            "  converged: contents, catalog and estimates are "
            "bit-identical to the synchronous run for every seed and mode"
        )
    else:
        lines.append("  DIVERGED:")
        lines.extend(f"    - {problem}" for problem in report.problems)
    return "\n".join(lines)
