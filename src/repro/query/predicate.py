"""Query predicates.

The statistics framework targets range predicates over indexed fields
(Section 3.6): ``SELECT * FROM T WHERE T.f >= x AND T.f <= y``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

__all__ = ["RangePredicate"]


@dataclass(frozen=True)
class RangePredicate:
    """An inclusive range condition on one field.

    Attributes:
        field: The record field the predicate constrains.
        lo: Lower border (inclusive).
        hi: Upper border (inclusive).
    """

    field: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise QueryError(
                f"empty predicate range [{self.lo}, {self.hi}] on "
                f"{self.field!r}"
            )

    def matches(self, document: dict) -> bool:
        """Whether a record satisfies the predicate."""
        value = document.get(self.field)
        return value is not None and self.lo <= value <= self.hi

    @property
    def length(self) -> int:
        """Number of domain points the range covers."""
        return self.hi - self.lo + 1
