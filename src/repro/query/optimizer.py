"""A minimal cost-based optimizer driven by the cardinality estimates.

The paper names two optimizer decisions its statistics enable
(Section 3.6):

1. *Skipping low selectivity index probes* -- a secondary-index probe
   costs one random primary lookup per qualifying record; past some
   selectivity the sequential full scan is cheaper.
2. *Deciding whether to use an indexed nested-loop join* -- an INLJ
   costs one inner-index probe per outer record; past some outer
   cardinality a scan-based (hash) join wins.

Both decisions reduce to comparing an estimated cardinality against a
cost crossover; the cost model uses the simulated storage layer's
shape: sequential page reads for scans, ``height + 1`` random page
reads per index probe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.estimator import CardinalityEstimator
from repro.errors import QueryError
from repro.lsm.dataset import Dataset
from repro.query.executor import AccessMethod
from repro.query.predicate import RangePredicate

__all__ = [
    "JoinMethod",
    "CostModel",
    "AccessPlan",
    "JoinPlan",
    "JoinCardinalityPlan",
    "QueryOptimizer",
]


class JoinMethod(enum.Enum):
    """Physical join operators the planner chooses between."""

    INDEXED_NESTED_LOOP = "indexed_nested_loop"
    HASH_JOIN = "hash_join"


@dataclass(frozen=True)
class CostModel:
    """Relative costs of the physical operators.

    Attributes:
        random_page_factor: How much a random page read costs relative
            to a sequential one (spinning disks: ~10-100x).
        pages_per_probe: Page reads per index probe (tree height + 1).
        records_per_page: Primary-index leaf packing.
    """

    random_page_factor: float = 10.0
    pages_per_probe: float = 3.0
    records_per_page: float = 64.0

    def index_probe_cost(self, result_cardinality: float) -> float:
        """Cost of fetching ``result_cardinality`` records by probes."""
        return result_cardinality * self.pages_per_probe * self.random_page_factor

    def full_scan_cost(self, total_records: float) -> float:
        """Cost of sequentially scanning the whole primary index."""
        return max(total_records / self.records_per_page, 1.0)

    def inlj_cost(self, outer_cardinality: float) -> float:
        """Indexed nested-loop join: one inner probe per outer record."""
        return self.index_probe_cost(outer_cardinality)

    def hash_join_cost(self, outer_total: float, inner_total: float) -> float:
        """Hash join: scan both sides (build + probe passes)."""
        return self.full_scan_cost(outer_total) + self.full_scan_cost(inner_total)


@dataclass(frozen=True)
class AccessPlan:
    """The planned access path for one range query."""

    method: AccessMethod
    estimated_cardinality: float
    index_probe_cost: float
    full_scan_cost: float


@dataclass(frozen=True)
class JoinPlan:
    """The planned join method."""

    method: JoinMethod
    estimated_outer_cardinality: float
    inlj_cost: float
    hash_join_cost: float


@dataclass(frozen=True)
class JoinCardinalityPlan:
    """An equi-join plan sized with the NDV sketch lane.

    The textbook equi-join cardinality formula
    ``|R ⋈ S| = |R| * |S| / max(ndv(R.a), ndv(S.b))`` needs distinct
    counts, which histograms do not provide -- this is what the HLL
    lane (docs/SKETCHES.md) feeds the optimizer.

    Attributes:
        method: The chosen physical join operator.
        estimated_join_cardinality: The formula's output-size estimate.
        outer_ndv: NDV estimate of the outer join key.
        inner_ndv: NDV estimate of the inner join key.
        inlj_cost: Cost of the indexed nested-loop alternative.
        hash_join_cost: Cost of the hash-join alternative.
    """

    method: JoinMethod
    estimated_join_cardinality: float
    outer_ndv: float
    inner_ndv: float
    inlj_cost: float
    hash_join_cost: float


class QueryOptimizer:
    """Plans queries using catalogued statistics."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        cost_model: CostModel | None = None,
    ) -> None:
        self.estimator = estimator
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def estimate_predicate(self, dataset: Dataset, predicate: RangePredicate) -> float:
        """Cardinality estimate for a range predicate on an indexed field."""
        index_name = self._index_for(dataset, predicate)
        return self.estimator.estimate(index_name, predicate.lo, predicate.hi)

    def plan_range_query(
        self, dataset: Dataset, predicate: RangePredicate, total_records: int
    ) -> AccessPlan:
        """Choose index probe vs full scan for one range query."""
        estimate = self.estimate_predicate(dataset, predicate)
        probe_cost = self.cost_model.index_probe_cost(estimate)
        scan_cost = self.cost_model.full_scan_cost(total_records)
        method = (
            AccessMethod.INDEX_PROBE
            if probe_cost <= scan_cost
            else AccessMethod.FULL_SCAN
        )
        return AccessPlan(method, estimate, probe_cost, scan_cost)

    def plan_join(
        self,
        outer_dataset: Dataset,
        outer_predicate: RangePredicate,
        outer_total: int,
        inner_total: int,
    ) -> JoinPlan:
        """Choose INLJ vs hash join given the outer-side estimate."""
        outer_estimate = self.estimate_predicate(outer_dataset, outer_predicate)
        inlj = self.cost_model.inlj_cost(outer_estimate)
        hash_cost = self.cost_model.hash_join_cost(outer_total, inner_total)
        method = (
            JoinMethod.INDEXED_NESTED_LOOP
            if inlj <= hash_cost
            else JoinMethod.HASH_JOIN
        )
        return JoinPlan(method, outer_estimate, inlj, hash_cost)

    def estimate_ndv(self, dataset: Dataset, field: str) -> float:
        """Distinct-value estimate for an indexed field (sketch lane)."""
        return self.estimator.estimate_ndv(self._index_for_field(dataset, field))

    def plan_join_on(
        self,
        outer_dataset: Dataset,
        outer_field: str,
        outer_total: int,
        inner_dataset: Dataset,
        inner_total: int,
        inner_field: str | None = None,
    ) -> JoinCardinalityPlan:
        """Plan an equi-join sized by the NDV sketches of its keys.

        Estimates the join's output cardinality as
        ``outer_total * inner_total / max(outer_ndv, inner_ndv)`` (the
        containment assumption) and picks INLJ when probing the inner
        index once per outer record beats scanning both sides.
        """
        if inner_field is None:
            inner_field = outer_field
        outer_ndv = self.estimate_ndv(outer_dataset, outer_field)
        inner_ndv = self.estimate_ndv(inner_dataset, inner_field)
        join_cardinality = (
            outer_total * inner_total / max(outer_ndv, inner_ndv, 1.0)
        )
        inlj = self.cost_model.inlj_cost(outer_total)
        hash_cost = self.cost_model.hash_join_cost(outer_total, inner_total)
        method = (
            JoinMethod.INDEXED_NESTED_LOOP
            if inlj <= hash_cost
            else JoinMethod.HASH_JOIN
        )
        return JoinCardinalityPlan(
            method, join_cardinality, outer_ndv, inner_ndv, inlj, hash_cost
        )

    @staticmethod
    def _index_for(dataset: Dataset, predicate: RangePredicate) -> str:
        return QueryOptimizer._index_for_field(dataset, predicate.field)

    @staticmethod
    def _index_for_field(dataset: Dataset, field: str) -> str:
        if field == dataset.primary_key:
            return dataset.primary.name
        for spec in dataset.indexes.values():
            if spec.field == field:
                return dataset.secondary_tree(spec.name).name
        raise QueryError(
            f"no index on field {field!r} in dataset {dataset.name!r}"
        )
