"""A minimal cost-based optimizer driven by the cardinality estimates.

The paper names two optimizer decisions its statistics enable
(Section 3.6):

1. *Skipping low selectivity index probes* -- a secondary-index probe
   costs one random primary lookup per qualifying record; past some
   selectivity the sequential full scan is cheaper.
2. *Deciding whether to use an indexed nested-loop join* -- an INLJ
   costs one inner-index probe per outer record; past some outer
   cardinality a scan-based (hash) join wins.

Both decisions reduce to comparing an estimated cardinality against a
cost crossover; the cost model uses the simulated storage layer's
shape: sequential page reads for scans, ``height + 1`` random page
reads per index probe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.estimator import CardinalityEstimator
from repro.errors import QueryError
from repro.lsm.dataset import Dataset
from repro.query.executor import AccessMethod
from repro.query.predicate import RangePredicate

__all__ = ["JoinMethod", "CostModel", "AccessPlan", "JoinPlan", "QueryOptimizer"]


class JoinMethod(enum.Enum):
    """Physical join operators the planner chooses between."""

    INDEXED_NESTED_LOOP = "indexed_nested_loop"
    HASH_JOIN = "hash_join"


@dataclass(frozen=True)
class CostModel:
    """Relative costs of the physical operators.

    Attributes:
        random_page_factor: How much a random page read costs relative
            to a sequential one (spinning disks: ~10-100x).
        pages_per_probe: Page reads per index probe (tree height + 1).
        records_per_page: Primary-index leaf packing.
    """

    random_page_factor: float = 10.0
    pages_per_probe: float = 3.0
    records_per_page: float = 64.0

    def index_probe_cost(self, result_cardinality: float) -> float:
        """Cost of fetching ``result_cardinality`` records by probes."""
        return result_cardinality * self.pages_per_probe * self.random_page_factor

    def full_scan_cost(self, total_records: float) -> float:
        """Cost of sequentially scanning the whole primary index."""
        return max(total_records / self.records_per_page, 1.0)

    def inlj_cost(self, outer_cardinality: float) -> float:
        """Indexed nested-loop join: one inner probe per outer record."""
        return self.index_probe_cost(outer_cardinality)

    def hash_join_cost(self, outer_total: float, inner_total: float) -> float:
        """Hash join: scan both sides (build + probe passes)."""
        return self.full_scan_cost(outer_total) + self.full_scan_cost(inner_total)


@dataclass(frozen=True)
class AccessPlan:
    """The planned access path for one range query."""

    method: AccessMethod
    estimated_cardinality: float
    index_probe_cost: float
    full_scan_cost: float


@dataclass(frozen=True)
class JoinPlan:
    """The planned join method."""

    method: JoinMethod
    estimated_outer_cardinality: float
    inlj_cost: float
    hash_join_cost: float


class QueryOptimizer:
    """Plans queries using catalogued statistics."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        cost_model: CostModel | None = None,
    ) -> None:
        self.estimator = estimator
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def estimate_predicate(self, dataset: Dataset, predicate: RangePredicate) -> float:
        """Cardinality estimate for a range predicate on an indexed field."""
        index_name = self._index_for(dataset, predicate)
        return self.estimator.estimate(index_name, predicate.lo, predicate.hi)

    def plan_range_query(
        self, dataset: Dataset, predicate: RangePredicate, total_records: int
    ) -> AccessPlan:
        """Choose index probe vs full scan for one range query."""
        estimate = self.estimate_predicate(dataset, predicate)
        probe_cost = self.cost_model.index_probe_cost(estimate)
        scan_cost = self.cost_model.full_scan_cost(total_records)
        method = (
            AccessMethod.INDEX_PROBE
            if probe_cost <= scan_cost
            else AccessMethod.FULL_SCAN
        )
        return AccessPlan(method, estimate, probe_cost, scan_cost)

    def plan_join(
        self,
        outer_dataset: Dataset,
        outer_predicate: RangePredicate,
        outer_total: int,
        inner_total: int,
    ) -> JoinPlan:
        """Choose INLJ vs hash join given the outer-side estimate."""
        outer_estimate = self.estimate_predicate(outer_dataset, outer_predicate)
        inlj = self.cost_model.inlj_cost(outer_estimate)
        hash_cost = self.cost_model.hash_join_cost(outer_total, inner_total)
        method = (
            JoinMethod.INDEXED_NESTED_LOOP
            if inlj <= hash_cost
            else JoinMethod.HASH_JOIN
        )
        return JoinPlan(method, outer_estimate, inlj, hash_cost)

    @staticmethod
    def _index_for(dataset: Dataset, predicate: RangePredicate) -> str:
        for spec in dataset.indexes.values():
            if spec.field == predicate.field:
                return dataset.secondary_tree(spec.name).name
        raise QueryError(
            f"no secondary index on field {predicate.field!r} in dataset "
            f"{dataset.name!r}"
        )
