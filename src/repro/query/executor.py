"""Physical execution of range queries over a dataset.

Two access paths, mirroring the optimizer decision the paper motivates
(Section 3.6, "skipping low selectivity index probes"):

* **index probe** -- scan the secondary index for qualifying
  ``(SK, PK)`` pairs, then fetch each record from the primary index
  (one random lookup per match);
* **full scan** -- read the entire primary index sequentially and
  filter.

Each execution reports the records plus the simulated I/O it incurred,
so tests and examples can verify that the optimizer's estimate-driven
choice actually saves work.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError
from repro.lsm.dataset import Dataset
from repro.lsm.storage import IOStats
from repro.query.predicate import RangePredicate

__all__ = ["AccessMethod", "ExecutionResult", "QueryExecutor"]


class AccessMethod(enum.Enum):
    """Physical access path for a range query."""

    INDEX_PROBE = "index_probe"
    FULL_SCAN = "full_scan"


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one physical query execution."""

    records: list[dict[str, Any]]
    method: AccessMethod
    io: IOStats
    elapsed_seconds: float

    @property
    def cardinality(self) -> int:
        """Number of qualifying records."""
        return len(self.records)


class QueryExecutor:
    """Executes range queries against one dataset."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    def execute(
        self, predicate: RangePredicate, method: AccessMethod
    ) -> ExecutionResult:
        """Run the predicate through the chosen access path."""
        disk_stats = self.dataset.primary.disk.stats
        before = disk_stats.snapshot()
        started = time.perf_counter()
        if method is AccessMethod.INDEX_PROBE:
            records = self._index_probe(predicate)
        else:
            records = self._full_scan(predicate)
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            records, method, disk_stats.delta(before), elapsed
        )

    def _index_for(self, predicate: RangePredicate) -> str:
        for spec in self.dataset.indexes.values():
            if spec.field == predicate.field:
                return spec.name
        raise QueryError(
            f"no secondary index on field {predicate.field!r} in dataset "
            f"{self.dataset.name!r}"
        )

    def _index_probe(self, predicate: RangePredicate) -> list[dict[str, Any]]:
        index_name = self._index_for(predicate)
        records = []
        for entry in self.dataset.scan_secondary(
            index_name, predicate.lo, predicate.hi
        ):
            _sk, pk = entry.key
            document = self.dataset.get(pk)
            # The secondary index is maintained with anti-matter, so
            # every surviving entry must resolve to a live record.
            assert document is not None, "dangling secondary entry"
            records.append(document)
        return records

    def _full_scan(self, predicate: RangePredicate) -> list[dict[str, Any]]:
        return [
            record.value
            for record in self.dataset.primary.scan()
            if predicate.matches(record.value)
        ]
