"""Query layer: predicates, physical execution, cost-based planning."""

from repro.query.executor import AccessMethod, ExecutionResult, QueryExecutor
from repro.query.optimizer import (
    AccessPlan,
    CostModel,
    JoinCardinalityPlan,
    JoinMethod,
    JoinPlan,
    QueryOptimizer,
)
from repro.query.predicate import RangePredicate

__all__ = [
    "RangePredicate",
    "AccessMethod",
    "ExecutionResult",
    "QueryExecutor",
    "QueryOptimizer",
    "CostModel",
    "AccessPlan",
    "JoinMethod",
    "JoinPlan",
    "JoinCardinalityPlan",
]
