"""repro: Lightweight Cardinality Estimation in LSM-based Systems.

A from-scratch reproduction of Absalyamov, Carey & Tsotras (SIGMOD
2018): a statistics-collection framework that piggybacks on LSM
lifecycle events (flush/merge/bulkload) to keep equi-width histograms,
equi-height histograms and wavelet synopses in sync with rapidly
changing data at negligible ingestion cost -- plus the LSM storage
engine, shared-nothing cluster simulation, query optimizer hooks and
the full evaluation harness the paper's experiments require.

Quickstart::

    from repro import (
        Dataset, IndexSpec, SimulatedDisk, Domain,
        StatisticsConfig, StatisticsManager, SynopsisType,
    )

    dataset = Dataset(
        "tweets", SimulatedDisk(), primary_key="id",
        primary_domain=Domain(0, 2**31 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
    )
    stats = StatisticsManager(StatisticsConfig(SynopsisType.WAVELET, 256))
    stats.attach(dataset)
    for pk in range(10_000):
        dataset.insert({"id": pk, "value": pk % 1000})
    dataset.flush()
    print(stats.estimate(dataset, "value_idx", 100, 199))
"""

from repro.core import (
    CardinalityEstimator,
    EstimateResult,
    MergedSynopsisCache,
    StatisticsCatalog,
    StatisticsCollector,
    StatisticsConfig,
    StatisticsManager,
)
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    get_registry,
    set_registry,
    span,
    traced,
    use_registry,
)
from repro.lsm import (
    ConstantMergePolicy,
    Dataset,
    DiskComponent,
    EventBus,
    IndexSpec,
    LSMTree,
    NoMergePolicy,
    Record,
    SimulatedDisk,
    StackMergePolicy,
)
from repro.synopses import (
    EquiHeightHistogram,
    EquiWidthHistogram,
    Synopsis,
    SynopsisType,
    WaveletSynopsis,
    create_builder,
)
from repro.types import Domain, IntType

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Domain",
    "IntType",
    "Record",
    "LSMTree",
    "Dataset",
    "IndexSpec",
    "DiskComponent",
    "EventBus",
    "SimulatedDisk",
    "NoMergePolicy",
    "ConstantMergePolicy",
    "StackMergePolicy",
    "Synopsis",
    "SynopsisType",
    "EquiWidthHistogram",
    "EquiHeightHistogram",
    "WaveletSynopsis",
    "create_builder",
    "StatisticsConfig",
    "StatisticsManager",
    "StatisticsCatalog",
    "StatisticsCollector",
    "MergedSynopsisCache",
    "CardinalityEstimator",
    "EstimateResult",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "span",
    "traced",
]
