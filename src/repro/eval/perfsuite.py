"""The `repro bench` perf suite: named microbenchmarks + regression gate.

The paper's headline claim is that statistics collection is cheap at
ingestion time (Fig. 2), so the speed of the ingestion/flush/merge hot
path is a *correctness property* of this repo -- and properties need
machine-checkable artifacts.  This module provides:

* eleven named microbenchmarks covering the hot paths the batched
  ingestion work targets::

      ingest-throughput   bulkload stream -> component, stats attached
                          (columnar batched AND per-record compat
                          path, plus their ratio -- the columnar
                          pipeline's win itself, docs/DATAPATH.md)
      flush-latency       memtable -> disk component
      merge-throughput    merge cursor -> merged component
      estimate-latency    Algorithm 2 over the catalog (cache warm)
      network-ship        synopsis publish through the cluster wire
      wal-replay          durable append path + WAL recovery replay
      concurrent-ingest   DML thread with flush/merge on background
                          workers (the overlap ratio proves ingestion
                          is never blocked for a merge's full duration)
      stability           sustained multi-writer traffic with pacing
                          and fair dispatch armed (the tail-latency
                          scenario behind the stall budget)
      memory-budget       N writers under one MemoryArbiter given half
                          the memory their memtables would statically
                          claim (the constrained-budget gate,
                          docs/MEMORY.md)
      serving             N feed-writer threads streaming into the
                          cluster while M estimate clients hammer the
                          bounded EstimateService (the serving-layer
                          tail-latency scenario behind the
                          serve.latency.p99 budget)
      ndv                 HLL sketch build (columnar add_many), the
                          master's register-union fold, and the HBS
                          wire compression ratio (docs/SKETCHES.md)

* a schema-versioned JSON report (``BENCH_<timestamp>.json``) with
  median/p95 over N repetitions plus environment, seed and scale, so
  every perf claim is reproducible and diffable;
* :func:`compare_reports`, the CI regression gate: a report regresses
  against a baseline when any shared metric's median moves beyond a
  tolerance in its bad direction (lower for throughput, higher for
  latency).

Wall-clock numbers are hardware-bound; the ratio metrics (e.g.
``ingest.columnar_speedup``) are not, which is what makes a committed
baseline meaningful across runners (see docs/BENCHMARKING.md).
"""

from __future__ import annotations

import json
import platform
import statistics
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.cluster.cluster import LSMCluster
from repro.cluster.feeds import (
    DatasetFeedAdapter,
    FeedCursorStore,
    ReplayableStreamFeed,
    ResumableFeedConsumer,
)
from repro.cluster.network import Network
from repro.cluster.serving import EstimateService
from repro.core.config import DEFAULT_NDV_PRECISION, StatisticsConfig
from repro.core.manager import StatisticsManager
from repro.errors import BenchmarkError, OverloadedError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.events import EventBus
from repro.lsm.memory import MemoryArbiter, record_footprint
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.pacing import MergePacer
from repro.lsm.record import Record
from repro.lsm.scheduler import make_scheduler
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import DEFAULT_WRITE_BATCH_SIZE, LSMTree
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.synopses.factory import create_builder
from repro.synopses.hll import HyperLogLogBuilder
from repro.types import Domain
from repro.util.retry import RetryPolicy

__all__ = [
    "SCHEMA_VERSION",
    "PerfScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "BENCHMARK_NAMES",
    "SUITES",
    "STABILITY_STALL_BUDGET_SECONDS",
    "MEMORY_BUDGET_UTILIZATION_CEILING",
    "SERVE_P99_BUDGET_SECONDS",
    "SERVE_STALL_BUDGET_SECONDS",
    "run_suite",
    "write_report",
    "report_filename",
    "load_report",
    "compare_reports",
    "check_budgets",
    "format_report",
    "format_regressions",
]

SCHEMA_VERSION = 1
"""Bumped whenever the report layout changes incompatibly."""


@dataclass(frozen=True)
class PerfScale:
    """Workload sizes of one suite run (recorded in the report)."""

    ingest_records: int
    flush_records: int
    merge_components: int
    merge_records_per_component: int
    estimate_queries: int
    ship_messages: int
    wal_records: int
    concurrent_records: int
    repetitions: int
    stability_writers: int
    stability_records: int
    memory_writers: int
    memory_records: int
    serving_writers: int
    serving_records: int
    serving_clients: int
    serving_requests: int
    ndv_records: int
    ndv_union_sketches: int

    def as_dict(self) -> dict[str, int]:
        return {
            "ingest_records": self.ingest_records,
            "flush_records": self.flush_records,
            "merge_components": self.merge_components,
            "merge_records_per_component": self.merge_records_per_component,
            "estimate_queries": self.estimate_queries,
            "ship_messages": self.ship_messages,
            "wal_records": self.wal_records,
            "concurrent_records": self.concurrent_records,
            "repetitions": self.repetitions,
            "stability_writers": self.stability_writers,
            "stability_records": self.stability_records,
            "memory_writers": self.memory_writers,
            "memory_records": self.memory_records,
            "serving_writers": self.serving_writers,
            "serving_records": self.serving_records,
            "serving_clients": self.serving_clients,
            "serving_requests": self.serving_requests,
            "ndv_records": self.ndv_records,
            "ndv_union_sketches": self.ndv_union_sketches,
        }


QUICK_SCALE = PerfScale(
    ingest_records=24_000,
    flush_records=4_096,
    merge_components=4,
    merge_records_per_component=4_096,
    estimate_queries=200,
    ship_messages=300,
    wal_records=8_000,
    concurrent_records=8_000,
    repetitions=3,
    stability_writers=3,
    stability_records=2_500,
    memory_writers=3,
    memory_records=2_500,
    serving_writers=2,
    serving_records=1_500,
    serving_clients=3,
    serving_requests=60,
    ndv_records=30_000,
    ndv_union_sketches=64,
)
"""The CI-friendly preset behind ``repro bench --quick`` (seconds)."""

FULL_SCALE = PerfScale(
    ingest_records=120_000,
    flush_records=16_384,
    merge_components=6,
    merge_records_per_component=16_384,
    estimate_queries=1_000,
    ship_messages=1_500,
    wal_records=32_000,
    concurrent_records=24_000,
    repetitions=5,
    stability_writers=4,
    stability_records=8_000,
    memory_writers=4,
    memory_records=8_000,
    serving_writers=3,
    serving_records=4_000,
    serving_clients=4,
    serving_requests=200,
    ndv_records=120_000,
    ndv_union_sketches=256,
)
"""The default preset (a minute or two)."""

_DOMAIN = Domain(0, 2**20 - 1)
_VALUE_DOMAIN = Domain(0, 4_095)
_BUDGET = 64

# metric name -> (unit, direction); direction names the GOOD direction.
METRIC_SPECS: dict[str, tuple[str, str]] = {
    "ingest.throughput.columnar": ("records/s", "higher"),
    "ingest.throughput.per_record": ("records/s", "higher"),
    "ingest.columnar_speedup": ("ratio", "higher"),
    "flush.latency": ("s", "lower"),
    "flush.throughput": ("records/s", "higher"),
    "merge.throughput": ("records/s", "higher"),
    "estimate.latency": ("s", "lower"),
    "ship.throughput": ("messages/s", "higher"),
    "wal.append.throughput": ("records/s", "higher"),
    "wal.replay.throughput": ("records/s", "higher"),
    "concurrent.ingest.throughput": ("records/s", "higher"),
    "concurrent.background_speedup": ("ratio", "higher"),
    "concurrent.ingest_overlap": ("ratio", "higher"),
    "stability.ingest.throughput": ("records/s", "higher"),
    "ingest.latency.p99": ("s", "lower"),
    "ingest.latency.p999": ("s", "lower"),
    "ingest.stall.max_window": ("s", "lower"),
    "memory.ingest.throughput": ("records/s", "higher"),
    "memory.peak.utilization": ("ratio", "lower"),
    "memory.ingest.p99": ("s", "lower"),
    "memory.stall.max_window": ("s", "lower"),
    "serving.estimate.throughput": ("requests/s", "higher"),
    "serving.feed.throughput": ("records/s", "higher"),
    "serve.latency.p99": ("s", "lower"),
    "serve.stall.max_window": ("s", "lower"),
    "serve.rejected": ("requests", "lower"),
    "feed.resume.replayed": ("records", "higher"),
    "ndv.build.throughput": ("records/s", "higher"),
    "ndv.union.latency": ("s", "lower"),
    "ndv.wire.compression_ratio": ("ratio", "higher"),
}

BENCHMARK_NAMES = (
    "ingest-throughput",
    "flush-latency",
    "merge-throughput",
    "estimate-latency",
    "network-ship",
    "wal-replay",
    "concurrent-ingest",
    "stability",
    "memory-budget",
    "serving",
    "ndv",
)
"""The named microbenchmarks, in execution order."""

# metric name -> the benchmark that produces it.  compare_reports uses
# this to tell "the current run skipped that benchmark" (fine: partial
# suites like ``--suite stability`` gate only what they measured) from
# "the benchmark ran but stopped emitting the metric" (a regression).
METRIC_SOURCES: dict[str, str] = {
    "ingest.throughput.columnar": "ingest-throughput",
    "ingest.throughput.per_record": "ingest-throughput",
    "ingest.columnar_speedup": "ingest-throughput",
    "flush.latency": "flush-latency",
    "flush.throughput": "flush-latency",
    "merge.throughput": "merge-throughput",
    "estimate.latency": "estimate-latency",
    "ship.throughput": "network-ship",
    "wal.append.throughput": "wal-replay",
    "wal.replay.throughput": "wal-replay",
    "concurrent.ingest.throughput": "concurrent-ingest",
    "concurrent.background_speedup": "concurrent-ingest",
    "concurrent.ingest_overlap": "concurrent-ingest",
    "stability.ingest.throughput": "stability",
    "ingest.latency.p99": "stability",
    "ingest.latency.p999": "stability",
    "ingest.stall.max_window": "stability",
    "memory.ingest.throughput": "memory-budget",
    "memory.peak.utilization": "memory-budget",
    "memory.ingest.p99": "memory-budget",
    "memory.stall.max_window": "memory-budget",
    "serving.estimate.throughput": "serving",
    "serving.feed.throughput": "serving",
    "serve.latency.p99": "serving",
    "serve.stall.max_window": "serving",
    "serve.rejected": "serving",
    "feed.resume.replayed": "serving",
    "ndv.build.throughput": "ndv",
    "ndv.union.latency": "ndv",
    "ndv.wire.compression_ratio": "ndv",
}

SUITES: dict[str, tuple[str, ...]] = {
    "all": BENCHMARK_NAMES,
    "stability": ("stability",),
    "memory-budget": ("memory-budget",),
    "serving": ("serving",),
    "ndv": ("ndv",),
}
"""Named benchmark subsets for ``repro bench --suite``."""

STABILITY_STALL_BUDGET_SECONDS = 0.5
"""Hard ceiling on a single ingest stall window in the stability
scenario: no insert may ever block for more than this, regardless of
how much merge work is queued behind it (docs/BENCHMARKING.md)."""

MEMORY_BUDGET_UTILIZATION_CEILING = 1.0
"""Hard ceiling on ``memory.peak.utilization`` in the memory-budget
scenario: the arbiter's accounted peak must never exceed the configured
budget (docs/MEMORY.md)."""

SERVE_P99_BUDGET_SECONDS = 0.5
"""Hard ceiling on ``serve.latency.p99`` in the serving scenario: the
client-visible p99 (queue wait included) of estimate requests served
while feed writers stream in the background (docs/BENCHMARKING.md)."""

SERVE_STALL_BUDGET_SECONDS = 2.0
"""Hard ceiling on the single worst client-visible estimate latency:
one request may wait out a full queue drain, but a multi-second freeze
means the service deadlocked or stopped shedding."""

_BUDGET_CEILINGS: dict[str, float] = {
    "ingest.stall.max_window": STABILITY_STALL_BUDGET_SECONDS,
    "memory.peak.utilization": MEMORY_BUDGET_UTILIZATION_CEILING,
    "memory.stall.max_window": STABILITY_STALL_BUDGET_SECONDS,
    "serve.latency.p99": SERVE_P99_BUDGET_SECONDS,
    "serve.stall.max_window": SERVE_STALL_BUDGET_SECONDS,
}


class _NullSink:
    """Statistics sink that discards publishes (collector cost only)."""

    def publish(self, *_args: Any) -> None:
        pass

    def retract(self, *_args: Any) -> None:
        pass


def _attach_equi_width_collector(tree: LSMTree, domain: Domain) -> None:
    """Subscribe an equi-width collector to ``tree``'s event bus."""
    from repro.core.collector import StatisticsCollector

    collector = StatisticsCollector(
        StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=_BUDGET), _NullSink()
    )
    collector.register_index(tree.name, domain)
    tree.event_bus.subscribe(collector)


def _bench_ingest(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Bulkload a sorted record stream through a statistics-observed
    tree, on the columnar batched path and the per-record compat path.

    ``ingest.columnar_speedup`` is the columnar pipeline's acceptance
    ratio (docs/DATAPATH.md): both modes consume identical input and
    produce identical components, so the ratio isolates the
    representation change."""
    n = scale.ingest_records
    records = [Record.matter(key) for key in range(n)]

    def one(batch: int | None) -> float:
        tree = LSMTree(
            "bench.ingest",
            SimulatedDisk(),
            event_bus=EventBus(),
            write_batch_size=batch,
        )
        _attach_equi_width_collector(tree, _DOMAIN)
        started = timer()
        tree.bulkload(iter(records), expected_records=n)
        return n / max(timer() - started, 1e-9)

    # One small untimed pass per mode warms allocator/bytecode caches so
    # the first timed mode is not penalised for running cold.
    warm = records[: min(2_000, n)]

    def warmup(batch: int | None) -> None:
        tree = LSMTree(
            "bench.ingest.warm",
            SimulatedDisk(),
            event_bus=EventBus(),
            write_batch_size=batch,
        )
        _attach_equi_width_collector(tree, _DOMAIN)
        tree.bulkload(iter(warm), expected_records=len(warm))

    warmup(DEFAULT_WRITE_BATCH_SIZE)
    warmup(None)
    # Alternate modes and keep each mode's best pass: the minimum time
    # (max throughput) is the least noise-contaminated observation, and
    # interleaving keeps transient machine load from biasing one mode.
    columnar = 0.0
    per_record = 0.0
    for _ in range(2):
        columnar = max(columnar, one(DEFAULT_WRITE_BATCH_SIZE))
        per_record = max(per_record, one(None))
    return {
        "ingest.throughput.columnar": columnar,
        "ingest.throughput.per_record": per_record,
        "ingest.columnar_speedup": columnar / per_record,
    }


def _bench_flush(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Fill the memtable, then time the flush (memtable -> component)."""
    n = scale.flush_records
    tree = LSMTree(
        "bench.flush",
        SimulatedDisk(),
        memtable_capacity=n + 1,
        event_bus=EventBus(),
        auto_flush=False,
    )
    _attach_equi_width_collector(tree, _DOMAIN)
    # A seeded permutation: flushes sort, so give them real work.
    step = 514_229  # coprime with any power of two
    for i in range(n):
        tree.upsert((seed + i * step) % _DOMAIN.length)
    started = timer()
    tree.flush()
    elapsed = max(timer() - started, 1e-9)
    return {"flush.latency": elapsed, "flush.throughput": n / elapsed}


def _bench_merge(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Time one merge of ``merge_components`` flushed components."""
    per = scale.merge_records_per_component
    parts = scale.merge_components
    tree = LSMTree(
        "bench.merge",
        SimulatedDisk(),
        memtable_capacity=per * parts + 1,
        event_bus=EventBus(),
        auto_flush=False,
    )
    _attach_equi_width_collector(tree, _DOMAIN)
    for part in range(parts):
        for i in range(per):
            # Interleaved keys so the merge cursor actually interleaves.
            tree.upsert(part + i * parts)
        tree.flush()
    total = per * parts
    started = timer()
    tree.merge(tree.components)
    elapsed = max(timer() - started, 1e-9)
    return {"merge.throughput": total / elapsed}


def _bench_estimate(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Median warm-path estimate latency over the catalogued synopses."""
    dataset = Dataset(
        "bench",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=_DOMAIN,
        indexes=[IndexSpec("value_idx", "value", _VALUE_DOMAIN)],
        memtable_capacity=2_048,
    )
    manager = StatisticsManager(
        StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=_BUDGET)
    )
    manager.attach(dataset)
    dataset.bulkload(
        {"id": pk, "value": (pk * 13) % _VALUE_DOMAIN.length}
        for pk in range(4_096)
    )
    for pk in range(4_096, 6_144):
        dataset.insert({"id": pk, "value": (pk * 7) % _VALUE_DOMAIN.length})
    dataset.flush()
    manager.estimate(dataset, "value_idx", 0, 255)  # warm the merged cache
    samples = []
    span = _VALUE_DOMAIN.length // 4
    for q in range(scale.estimate_queries):
        lo = (seed + q * 97) % (_VALUE_DOMAIN.length - span)
        started = timer()
        manager.estimate(dataset, "value_idx", lo, lo + span)
        samples.append(timer() - started)
    return {"estimate.latency": statistics.median(samples)}


def _bench_ship(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Publish synopsis pairs through the (perfect) cluster wire."""
    from repro.cluster.node import NetworkStatisticsSink, RetryPolicy

    network = Network()
    received: list[Any] = []
    network.register("master", lambda source, message: received.append(message))
    sink = NetworkStatisticsSink(
        network,
        "node0",
        "master",
        partition_id=0,
        retry_policy=RetryPolicy.immediate(),
    )
    builder = create_builder(SynopsisType.EQUI_WIDTH, _VALUE_DOMAIN, _BUDGET, 0)
    builder.add_many(list(range(0, _VALUE_DOMAIN.length, 7)))
    synopsis = builder.build()
    messages = scale.ship_messages
    started = timer()
    for uid in range(messages):
        sink.publish("bench_index", uid, synopsis, synopsis)
    elapsed = max(timer() - started, 1e-9)
    assert len(received) == messages
    return {"ship.throughput": messages / elapsed}


def _bench_wal_replay(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Time the durable write path (WAL append + memtable) and the
    WAL-replay half of recovery over the same records.

    The memtable capacity exceeds the record count so nothing flushes:
    every record stays in the log and recovery replays all of them,
    making both throughputs functions of ``wal_records`` alone.
    """
    n = scale.wal_records
    disk = SimulatedDisk()

    def build(recover: bool) -> Dataset:
        return Dataset(
            "bench.wal",
            disk,
            primary_key="id",
            primary_domain=_DOMAIN,
            memtable_capacity=n + 1,
            durable=True,
            recover=recover,
        )

    dataset = build(recover=False)
    step = 514_229  # coprime with any power of two
    started = timer()
    for i in range(n):
        dataset.insert({"id": (seed + i * step) % _DOMAIN.length})
    append_elapsed = max(timer() - started, 1e-9)

    started = timer()
    recovered = build(recover=True)
    recovered.complete_recovery()
    replay_elapsed = max(timer() - started, 1e-9)
    assert recovered.count_records() == n
    return {
        "wal.append.throughput": n / append_elapsed,
        "wal.replay.throughput": n / replay_elapsed,
    }


def _bench_concurrent_ingest(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Ingest a merge-heavy workload twice -- maintenance inline (sync
    scheduler) and on background workers (threads scheduler) -- timing
    only the DML thread.

    ``concurrent.ingest_overlap`` is the acceptance criterion for the
    background scheduler: ``1 - max_stall / merge_seconds``, where
    ``max_stall`` is the longest single insert call observed in the
    concurrent run and ``merge_seconds`` the total merge wall-time that
    ran behind it.  A positive value means no insert ever waited for
    the full duration of the run's merging; near 1.0 means merges and
    ingestion overlapped almost completely.
    """
    n = scale.concurrent_records
    step = 514_229  # coprime with any power of two

    def one(mode: str) -> tuple[float, float, float]:
        # A private registry per run: the merge-seconds histogram must
        # reflect this run's merges only, and instruments bind at
        # construction time.
        registry = MetricsRegistry()
        with use_registry(registry):
            scheduler = make_scheduler(mode)
            dataset = Dataset(
                "bench.concurrent",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=_DOMAIN,
                memtable_capacity=256,
                merge_policy=ConstantMergePolicy(max_components=4),
                scheduler=scheduler,
            )
            max_stall = 0.0
            started = timer()
            for i in range(n):
                op_started = timer()
                dataset.insert({"id": (seed + i * step) % _DOMAIN.length})
                max_stall = max(max_stall, timer() - op_started)
            elapsed = max(timer() - started, 1e-9)
            dataset.flush()
            dataset.drain_maintenance()
            scheduler.shutdown()
            histograms = registry.snapshot()["histograms"]
            merge_entry = histograms.get("lsm.merge.seconds", {})
        return elapsed, max_stall, merge_entry.get("sum", 0.0)

    sync_elapsed, _, _ = one("sync")
    threads_elapsed, max_stall, merge_seconds = one("threads")
    return {
        "concurrent.ingest.throughput": n / threads_elapsed,
        "concurrent.background_speedup": sync_elapsed / threads_elapsed,
        "concurrent.ingest_overlap": 1.0 - max_stall / max(merge_seconds, 1e-9),
    }


def _bench_stability(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """Sustained multi-writer traffic under the threads scheduler with
    merge pacing and fair dispatch armed -- the tail-latency scenario.

    ``stability_writers`` threads each drive their own dataset; all
    datasets share one bounded worker pool (distinct maintenance lanes)
    and one merge pacer, so merges of one dataset compete with the
    flushes of the others -- exactly the contention fair dispatch and
    pacing exist to resolve.  Every insert is timed individually:

    * ``ingest.latency.p99`` / ``.p999`` -- the per-op latency tail
      across all writers;
    * ``ingest.stall.max_window`` -- the single worst insert, i.e. the
      longest window any writer was frozen.  :func:`check_budgets`
      fails the run when it exceeds
      :data:`STABILITY_STALL_BUDGET_SECONDS`.
    """
    writers = scale.stability_writers
    per_writer = scale.stability_records
    step = 514_229  # coprime with any power of two
    registry = MetricsRegistry()
    with use_registry(registry):
        scheduler = make_scheduler("threads")
        # Budget roughly half the measured quick-scale merge throughput:
        # low enough that merges actually park on the token bucket, high
        # enough that maintenance keeps up with the writers.
        pacer = MergePacer(rate=50_000, burst=2_048)
        datasets = [
            Dataset(
                f"bench.stability.{writer}",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=_DOMAIN,
                memtable_capacity=256,
                merge_policy=ConstantMergePolicy(max_components=4),
                scheduler=scheduler,
                maintenance_lane=f"stability.{writer}",
                merge_pacer=pacer,
            )
            for writer in range(writers)
        ]
        latencies: list[list[float]] = [[] for _ in range(writers)]

        def run_writer(writer: int) -> None:
            dataset = datasets[writer]
            observed = latencies[writer].append
            for i in range(per_writer):
                op_started = timer()
                dataset.insert({"id": (seed + writer + i * step) % _DOMAIN.length})
                observed(timer() - op_started)

        threads = [
            threading.Thread(target=run_writer, args=(writer,))
            for writer in range(writers)
        ]
        started = timer()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = max(timer() - started, 1e-9)
        for dataset in datasets:
            dataset.flush()  # drain barrier
        scheduler.drain()
        scheduler.shutdown()
        histogram = registry.snapshot()["histograms"].get("ingest.op.seconds", {})
    total_ops = writers * per_writer
    assert histogram.get("count") == total_ops, (
        f"ingest.op.seconds saw {histogram.get('count')} ops, "
        f"expected {total_ops}"
    )
    flat = sorted(
        latency for per_writer_samples in latencies for latency in per_writer_samples
    )
    return {
        "stability.ingest.throughput": total_ops / elapsed,
        "ingest.latency.p99": _percentile(flat, 0.99),
        "ingest.latency.p999": _percentile(flat, 0.999),
        "ingest.stall.max_window": flat[-1],
    }


#: Memory-budget scenario memtable capacity (records).  Deliberately
#: larger than the arbiter will ever let a memtable grow: the scenario's
#: point is that arbitration -- not the static capacity -- bounds the
#: write arena.
_MEMORY_BENCH_CAPACITY = 512


def _bench_memory_budget(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """N concurrent writers under one :class:`MemoryArbiter` whose
    budget is *half* what the writers' fixed-capacity memtables would
    statically claim -- the constrained-budget gate (docs/MEMORY.md).

    Each writer drives its own dataset; all datasets share one bounded
    worker pool and the one arbiter, so every active memtable competes
    for the same write arena and arbitration-triggered early flushes
    are what keep the total inside the budget.  Every insert is timed
    individually:

    * ``memory.peak.utilization`` -- the arbiter's accounted peak over
      its budget; :func:`check_budgets` fails the run above
      :data:`MEMORY_BUDGET_UTILIZATION_CEILING` (= 1.0: the budget is
      a promise, not a suggestion);
    * ``memory.stall.max_window`` -- the single worst insert, gated by
      the same stall budget as the stability scenario (pressure may
      flush early and wait on the immutable pool, but must never
      freeze a writer);
    * ``memory.ingest.throughput`` / ``memory.ingest.p99`` -- the cost
      of running inside half the memory.
    """
    writers = scale.memory_writers
    per_writer = scale.memory_records
    step = 514_229  # coprime with any power of two
    doc_bytes = record_footprint(Record.matter(0, {"id": 0}))
    budget = writers * _MEMORY_BENCH_CAPACITY * doc_bytes // 2
    registry = MetricsRegistry()
    with use_registry(registry):
        arbiter = MemoryArbiter(budget)
        scheduler = make_scheduler("threads")
        datasets = [
            Dataset(
                f"bench.memory.{writer}",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=_DOMAIN,
                memtable_capacity=_MEMORY_BENCH_CAPACITY,
                merge_policy=ConstantMergePolicy(max_components=4),
                scheduler=scheduler,
                maintenance_lane=f"memory.{writer}",
                memory_arbiter=arbiter,
            )
            for writer in range(writers)
        ]
        latencies: list[list[float]] = [[] for _ in range(writers)]

        def run_writer(writer: int) -> None:
            dataset = datasets[writer]
            observed = latencies[writer].append
            for i in range(per_writer):
                op_started = timer()
                dataset.insert({"id": (seed + writer + i * step) % _DOMAIN.length})
                observed(timer() - op_started)

        threads = [
            threading.Thread(target=run_writer, args=(writer,))
            for writer in range(writers)
        ]
        started = timer()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = max(timer() - started, 1e-9)
        for dataset in datasets:
            dataset.flush()  # drain barrier
        scheduler.drain()
        scheduler.shutdown()
        peak = arbiter.peak_bytes()
        early_flushes = registry.snapshot()["counters"].get(
            "memory.pressure.early_flush", 0
        )
    # Half the static arena must actually squeeze: a scenario where no
    # early flush fired is not measuring arbitration at all.
    assert early_flushes > 0, (
        "memory-budget scenario ran without a single arbitration-"
        "triggered early flush -- budget too generous for the workload"
    )
    total_ops = writers * per_writer
    flat = sorted(
        latency for per_writer_samples in latencies for latency in per_writer_samples
    )
    return {
        "memory.ingest.throughput": total_ops / elapsed,
        "memory.peak.utilization": peak / budget,
        "memory.ingest.p99": _percentile(flat, 0.99),
        "memory.stall.max_window": flat[-1],
    }


#: Serving scenario fixtures.  The resume segment is sized so the kill
#: lands past one cursor checkpoint but before the next (checkpoint at
#: 64, applied mark at 100), making ``feed.resume.replayed`` a constant
#: of the scenario (36) rather than a timing artefact; the staged
#: shadow-service saturation likewise pins ``serve.rejected``.
_SERVING_PRELOAD = 512
_SERVING_RESUME_RECORDS = 100
_SERVING_RESUME_CHECKPOINT = 64
_SERVING_SHADOW_DEPTH = 8
_SERVING_SHADOW_OFFERS = 12
_SERVING_QUEUE_DEPTH = 64
_SERVING_WORKERS = 2


def _bench_serving(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """``serving_writers`` feed-consumer threads streaming into the
    cluster while ``serving_clients`` threads hammer the bounded
    :class:`~repro.cluster.serving.EstimateService` -- the serving
    layer's tail-latency scenario (docs/BENCHMARKING.md).

    Two deterministic, untimed preambles pin the robustness metrics so
    the compare gate's 25% tolerance never sees timing noise in them:

    * ``feed.resume.replayed`` -- a consumer is killed off a cursor
      checkpoint boundary and a fresh consumer resumes from the durable
      cursor; the replayed gap (applied mark minus last checkpoint) is
      a constant of the scenario.
    * ``serve.rejected`` -- a worker-less twin service is saturated via
      staged :meth:`~repro.cluster.serving.EstimateService.offer`
      calls past its queue bound; the shed count is exact.

    The timed phase measures the mixed load:

    * ``serving.estimate.throughput`` / ``serving.feed.throughput`` --
      answered requests and streamed records per second of wall clock;
    * ``serve.latency.p99`` -- the client-visible p99, queue wait
      included; :func:`check_budgets` fails the run above
      :data:`SERVE_P99_BUDGET_SECONDS`;
    * ``serve.stall.max_window`` -- the single worst request, gated by
      :data:`SERVE_STALL_BUDGET_SECONDS` (one request may wait out a
      full queue drain, but a multi-second freeze means the service
      deadlocked or stopped shedding).
    """
    writers = scale.serving_writers
    per_writer = scale.serving_records
    clients = scale.serving_clients
    per_client = scale.serving_requests
    registry = MetricsRegistry()
    with use_registry(registry):
        cluster = LSMCluster(
            num_nodes=2,
            partitions_per_node=2,
            stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=_BUDGET),
            retry_policy=RetryPolicy.immediate(max_attempts=3),
            scheduler="threads",
        )
        for writer in range(writers):
            cluster.create_dataset(
                f"serve{writer}",
                primary_key="id",
                primary_domain=_DOMAIN,
                indexes=[IndexSpec("value_idx", "value", _VALUE_DOMAIN)],
                memtable_capacity=256,
                merge_policy_factory=lambda: ConstantMergePolicy(max_components=4),
            )
        queried = "serve0"
        for pk in range(_SERVING_PRELOAD):
            cluster.insert(
                queried, {"id": pk, "value": (pk * 13) % _VALUE_DOMAIN.length}
            )
        cluster.flush_all(queried)
        cluster.drain_maintenance()
        cluster.recover_statistics()
        # Warm the merged-synopsis cache so clients measure serving, not
        # the first-touch merge.
        cluster.estimate_detailed(queried, "value_idx", 0, 255)

        # Untimed preamble 1: the deterministic crash-resume segment.
        cursor_store = FeedCursorStore(cluster.nodes[0].disk)

        def resume_consumer() -> ResumableFeedConsumer:
            return ResumableFeedConsumer(
                ReplayableStreamFeed(
                    "bench_resume",
                    (
                        {
                            "id": _SERVING_PRELOAD + i,
                            "value": (i * 29) % _VALUE_DOMAIN.length,
                        }
                        for i in range(_SERVING_RESUME_RECORDS)
                    ),
                ),
                DatasetFeedAdapter(cluster, queried),
                cursor_store,
                checkpoint_every=_SERVING_RESUME_CHECKPOINT,
                retry_policy=RetryPolicy.immediate(),
            )

        resume_consumer().run(stop_after=_SERVING_RESUME_RECORDS)
        replayed = resume_consumer().run().replayed
        expected_replay = _SERVING_RESUME_RECORDS - _SERVING_RESUME_CHECKPOINT
        assert replayed == expected_replay, (
            f"resume segment replayed {replayed} records, "
            f"expected {expected_replay}"
        )

        # Untimed preamble 2: exact shed count on a staged, worker-less
        # twin -- offers past the bound are rejections by construction.
        shadow = EstimateService(
            cluster,
            max_queue_depth=_SERVING_SHADOW_DEPTH,
            workers=1,
            retry_policy=RetryPolicy.immediate(max_attempts=1),
            autostart=False,
        )
        staged_rejects = 0
        for i in range(_SERVING_SHADOW_OFFERS):
            if not shadow.offer("stager", queried, "value_idx", 0, 255 + i):
                staged_rejects += 1
        shadow.shutdown()
        assert staged_rejects == _SERVING_SHADOW_OFFERS - _SERVING_SHADOW_DEPTH, (
            f"staged saturation shed {staged_rejects} offers, expected "
            f"{_SERVING_SHADOW_OFFERS - _SERVING_SHADOW_DEPTH}"
        )

        # Timed phase: writers stream, clients estimate, concurrently.
        service = EstimateService(
            cluster,
            max_queue_depth=_SERVING_QUEUE_DEPTH,
            workers=_SERVING_WORKERS,
            default_timeout=10.0,
            retry_policy=RetryPolicy.immediate(max_attempts=3),
        )
        consumers = [
            ResumableFeedConsumer(
                ReplayableStreamFeed(
                    f"bench_feed_{writer}",
                    (
                        {
                            "id": 2**19 + writer * per_writer + i,
                            "value": (i * 13) % _VALUE_DOMAIN.length,
                        }
                        for i in range(per_writer)
                    ),
                ),
                DatasetFeedAdapter(cluster, f"serve{writer}"),
                cursor_store,
                checkpoint_every=256,
                retry_policy=RetryPolicy.immediate(),
            )
            for writer in range(writers)
        ]
        applied = [0] * writers

        def run_writer(writer: int) -> None:
            applied[writer] = consumers[writer].run().applied

        latencies: list[list[float]] = [[] for _ in range(clients)]
        shed = [0] * clients

        def run_client(client: int) -> None:
            observed = latencies[client].append
            for i in range(per_client):
                lo = ((seed + client) * 97 + i * 131) % (
                    _VALUE_DOMAIN.length - 256
                )
                op_started = timer()
                try:
                    service.estimate(
                        f"client{client}", queried, "value_idx", lo, lo + 255
                    )
                except OverloadedError:
                    shed[client] += 1
                observed(timer() - op_started)

        threads = [
            threading.Thread(target=run_writer, args=(writer,))
            for writer in range(writers)
        ] + [
            threading.Thread(target=run_client, args=(client,))
            for client in range(clients)
        ]
        started = timer()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = max(timer() - started, 1e-9)
        service.shutdown()
        cluster.drain_maintenance()
        cluster.shutdown()
    assert applied == [per_writer] * writers, (
        f"feed writers applied {applied}, expected {per_writer} each"
    )
    total_requests = clients * per_client
    answered = total_requests - sum(shed)
    assert answered > 0, "serving scenario shed every request"
    flat = sorted(
        latency for per_client_samples in latencies for latency in per_client_samples
    )
    return {
        "serving.estimate.throughput": answered / elapsed,
        "serving.feed.throughput": writers * per_writer / elapsed,
        "serve.latency.p99": _percentile(flat, 0.99),
        "serve.stall.max_window": flat[-1],
        "serve.rejected": float(staged_rejects),
        "feed.resume.replayed": float(replayed),
    }


def _bench_ndv(
    scale: PerfScale, seed: int, timer: Callable[[], float]
) -> dict[str, float]:
    """The NDV sketch lane's three costs (docs/SKETCHES.md): building
    a sketch over a value stream on the columnar ``add_many`` path,
    the master's lazy register-union fold across per-component
    sketches, and the HBS wire form's size against the dense registers.

    ``ndv.wire.compression_ratio`` is hardware-independent -- dense
    register bytes over HBS-encoded bytes of the same deterministic
    sketch -- so like ``ingest.columnar_speedup`` it gates
    meaningfully across heterogeneous runners.
    """
    n = scale.ndv_records
    registers = 1 << DEFAULT_NDV_PRECISION
    step = 514_229  # coprime with any power of two
    values = [(seed + i * step) % _DOMAIN.length for i in range(n)]

    builder = HyperLogLogBuilder(_DOMAIN, registers)
    started = timer()
    builder.add_many(values)
    sketch = builder.build()
    build_elapsed = max(timer() - started, 1e-9)

    # One sketch per simulated component, then the fold the master's
    # estimator runs on a cache miss (exact by register-max algebra).
    parts = scale.ndv_union_sketches
    component_sketches = []
    for part in range(parts):
        part_builder = HyperLogLogBuilder(_DOMAIN, registers)
        part_builder.add_many(values[part::parts])
        component_sketches.append(part_builder.build())
    started = timer()
    merged = component_sketches[0]
    for other in component_sketches[1:]:
        merged = merged.merge_with(other)
    union_elapsed = max(timer() - started, 1e-9)
    assert merged.to_payload() == sketch.to_payload(), (
        "unioned per-component sketches diverged from the whole-stream "
        "sketch -- the union algebra is broken"
    )

    return {
        "ndv.build.throughput": n / build_elapsed,
        "ndv.union.latency": union_elapsed / (parts - 1),
        "ndv.wire.compression_ratio": registers / max(merged.encoded_bytes(), 1),
    }


_BENCHMARKS: dict[str, Callable[..., dict[str, float]]] = {
    "ingest-throughput": _bench_ingest,
    "flush-latency": _bench_flush,
    "merge-throughput": _bench_merge,
    "estimate-latency": _bench_estimate,
    "network-ship": _bench_ship,
    "wal-replay": _bench_wal_replay,
    "concurrent-ingest": _bench_concurrent_ingest,
    "stability": _bench_stability,
    "memory-budget": _bench_memory_budget,
    "serving": _bench_serving,
    "ndv": _bench_ndv,
}


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (well-defined for tiny sample counts)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_suite(
    quick: bool = False,
    seed: int = 0,
    repetitions: int | None = None,
    only: tuple[str, ...] | None = None,
    timer: Callable[[], float] = time.perf_counter,
) -> dict[str, Any]:
    """Run the suite and return the schema-versioned report dict.

    Each repetition rebuilds every structure from scratch (fresh disks,
    trees, registries), so repetitions are independent samples; the
    report keeps all samples plus median/p95 per metric.
    """
    scale = QUICK_SCALE if quick else FULL_SCALE
    reps = repetitions if repetitions is not None else scale.repetitions
    if reps < 1:
        raise BenchmarkError(f"repetitions must be >= 1, got {reps}")
    names = tuple(only) if only else BENCHMARK_NAMES
    unknown = [name for name in names if name not in _BENCHMARKS]
    if unknown:
        raise BenchmarkError(
            f"unknown benchmark(s) {unknown}; known: {list(_BENCHMARKS)}"
        )
    samples: dict[str, list[float]] = {}
    for rep in range(reps):
        for name in names:
            # A fresh registry per benchmark keeps instrument state out
            # of the timed region and off the process-global registry.
            with use_registry(MetricsRegistry()):
                results = _BENCHMARKS[name](scale, seed + rep, timer)
            for metric, value in results.items():
                samples.setdefault(metric, []).append(value)
    metrics: dict[str, Any] = {}
    for metric, values in samples.items():
        unit, direction = METRIC_SPECS[metric]
        metrics[metric] = {
            "unit": unit,
            "direction": direction,
            "median": statistics.median(values),
            "p95": _percentile(values, 0.95),
            "samples": values,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "repro-perfsuite",
        "quick": quick,
        "seed": seed,
        "repetitions": reps,
        "benchmarks": list(names),
        "scale": scale.as_dict(),
        "env": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "created_unix": time.time(),
        "metrics": metrics,
    }


def report_filename(report: dict[str, Any]) -> str:
    """``BENCH_<UTC timestamp>.json`` for one report."""
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ", time.gmtime(report.get("created_unix", time.time()))
    )
    return f"BENCH_{stamp}.json"


def write_report(report: dict[str, Any], out_dir: str | Path) -> Path:
    """Write ``report`` into ``out_dir`` under its BENCH_* name."""
    target_dir = Path(out_dir)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / report_filename(report)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and structurally validate a BENCH report / baseline."""
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except FileNotFoundError as exc:
        raise BenchmarkError(f"baseline {source} does not exist") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"baseline {source} is not valid JSON: {exc}") from exc
    _validate_report(payload, label=str(source))
    return payload


def _validate_report(report: Any, label: str) -> None:
    if not isinstance(report, dict):
        raise BenchmarkError(f"{label}: report must be a JSON object")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchmarkError(
            f"{label}: schema_version {version!r} is not {SCHEMA_VERSION} "
            "(regenerate the baseline with `repro bench`)"
        )
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise BenchmarkError(f"{label}: missing or empty 'metrics' section")
    for name, entry in metrics.items():
        if not isinstance(entry, dict):
            raise BenchmarkError(f"{label}: metric {name!r} is not an object")
        if not isinstance(entry.get("median"), (int, float)):
            raise BenchmarkError(f"{label}: metric {name!r} has no numeric median")
        if entry.get("direction") not in ("higher", "lower"):
            raise BenchmarkError(
                f"{label}: metric {name!r} direction must be 'higher' or "
                f"'lower', got {entry.get('direction')!r}"
            )


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.25,
) -> list[str]:
    """The regression gate: current vs. baseline medians.

    A metric regresses when its median moves beyond ``tolerance``
    (fractional) in its *bad* direction; improvements never fail.
    Only metrics present in the baseline gate -- a suite may grow new
    metrics without invalidating old baselines.  A baseline metric
    missing from the current run is a regression *unless* the run's
    ``benchmarks`` list shows the producing benchmark was deliberately
    skipped (partial runs like ``--suite stability`` gate only what
    they measured).  Returns the list of human-readable regression
    descriptions (empty = pass).
    """
    if not 0.0 <= tolerance:
        raise BenchmarkError(f"tolerance must be >= 0, got {tolerance}")
    _validate_report(current, label="current run")
    _validate_report(baseline, label="baseline")
    ran = current.get("benchmarks")
    regressions = []
    for name, base_entry in baseline["metrics"].items():
        current_entry = current["metrics"].get(name)
        if current_entry is None:
            source = METRIC_SOURCES.get(name)
            if (
                source is not None
                and isinstance(ran, list)
                and source not in ran
            ):
                continue  # its benchmark was not part of this run
            regressions.append(
                f"{name}: present in baseline but missing from the current run"
            )
            continue
        base = float(base_entry["median"])
        now = float(current_entry["median"])
        direction = base_entry["direction"]
        if direction == "higher":
            floor = base * (1.0 - tolerance)
            if now < floor:
                regressions.append(
                    f"{name}: median {now:.6g} fell below {floor:.6g} "
                    f"(baseline {base:.6g} - {tolerance:.0%} tolerance)"
                )
        else:
            ceiling = base * (1.0 + tolerance)
            if now > ceiling:
                regressions.append(
                    f"{name}: median {now:.6g} rose above {ceiling:.6g} "
                    f"(baseline {base:.6g} + {tolerance:.0%} tolerance)"
                )
    return regressions


def check_budgets(report: dict[str, Any]) -> list[str]:
    """The absolute budget gate (orthogonal to the relative baseline
    gate): a budgeted metric fails when its *worst* sample -- not the
    median -- exceeds its documented ceiling, because a single
    over-budget stall window or over-budget memory peak is exactly the
    event the stability/arbitration work promises cannot happen.
    Returns violation descriptions (empty = pass); metrics absent from
    the report are not checked.
    """
    violations = []
    for name, ceiling in _BUDGET_CEILINGS.items():
        entry = report.get("metrics", {}).get(name)
        if entry is None:
            continue
        samples = entry.get("samples") or [entry["median"]]
        worst = max(float(sample) for sample in samples)
        if worst > ceiling:
            unit = METRIC_SPECS.get(name, ("", "lower"))[0]
            suffix = unit if unit != "ratio" else ""
            violations.append(
                f"{name}: worst sample {worst:.6g}{suffix} exceeds the "
                f"{ceiling:g}{suffix} budget ceiling"
            )
    return violations


def format_report(report: dict[str, Any]) -> str:
    """Human-readable table of one report's metrics."""
    lines = [
        f"repro perf suite (schema v{report['schema_version']}, "
        f"{'quick' if report.get('quick') else 'full'} scale, "
        f"seed {report.get('seed')}, {report.get('repetitions')} reps)"
    ]
    width = max(len(name) for name in report["metrics"])
    for name in sorted(report["metrics"]):
        entry = report["metrics"][name]
        lines.append(
            f"  {name:<{width}}  median {entry['median']:>12.6g} "
            f"{entry['unit']:<10} p95 {entry['p95']:>12.6g}"
        )
    return "\n".join(lines)


def format_regressions(regressions: list[str]) -> str:
    """Render the gate verdict."""
    if not regressions:
        return "bench compare: ok (no metric regressed beyond tolerance)"
    lines = ["bench compare: REGRESSION detected"]
    lines.extend(f"  - {entry}" for entry in regressions)
    return "\n".join(lines)


def iter_benchmark_names() -> Iterator[str]:
    """The registered benchmark names (stable order)."""
    return iter(BENCHMARK_NAMES)
