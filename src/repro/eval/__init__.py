"""Evaluation harness: metrics, labs, pipelines and figure drivers."""

from repro.eval.lab import AccuracyLab, ChangeableWorkloadLab, SynopsisSetup
from repro.eval.metrics import (
    ErrorAccumulator,
    ErrorMetrics,
    normalized_absolute_error,
)
from repro.eval.pipeline import IngestionBenchmark, IngestionMode, IngestionReport
from repro.eval.reporting import format_table
from repro.eval.truth import FrequencyIndex

__all__ = [
    "normalized_absolute_error",
    "ErrorAccumulator",
    "ErrorMetrics",
    "FrequencyIndex",
    "AccuracyLab",
    "ChangeableWorkloadLab",
    "SynopsisSetup",
    "IngestionBenchmark",
    "IngestionMode",
    "IngestionReport",
    "format_table",
]
