"""Fast exact ground truth for accuracy experiments.

Accuracy experiments answer hundreds of range queries per cell; asking
the LSM engine to scan for every one would dominate the runtime without
adding fidelity (the engine's counts are themselves exercised by the
integration tests).  A :class:`FrequencyIndex` snapshots the live
values of a field once and answers true range counts in O(log V).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterable

__all__ = ["FrequencyIndex"]


class FrequencyIndex:
    """Sorted (value, cumulative count) index over a value multiset."""

    def __init__(self, values: Iterable[int]) -> None:
        counts: dict[int, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        self._values = sorted(counts)
        self._cumulative = list(
            itertools.accumulate(counts[v] for v in self._values)
        )

    @property
    def total_records(self) -> int:
        """Number of records indexed."""
        return self._cumulative[-1] if self._cumulative else 0

    @property
    def distinct_values(self) -> int:
        """Number of distinct values."""
        return len(self._values)

    @property
    def min_value(self) -> int | None:
        """Smallest indexed value, or None when empty."""
        return self._values[0] if self._values else None

    @property
    def max_value(self) -> int | None:
        """Largest indexed value, or None when empty."""
        return self._values[-1] if self._values else None

    def count(self, lo: int, hi: int) -> int:
        """Exact number of records with value in ``[lo, hi]``."""
        if lo > hi or not self._values:
            return 0
        first = bisect.bisect_left(self._values, lo)
        last = bisect.bisect_right(self._values, hi) - 1
        if last < first:
            return 0
        below = self._cumulative[first - 1] if first > 0 else 0
        return self._cumulative[last] - below
