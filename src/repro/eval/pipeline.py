"""The ingestion-overhead pipeline (paper Section 4.2, Figure 2).

Measures the wall-clock cost of loading a dataset into the simulated
cluster under each statistics configuration, through three ingestion
paths:

* **bulkload** -- pre-sorted partitioned parallel load, one component
  per partition (Figure 2a);
* **socket feed** -- push-based continuous ingestion through the full
  LSM lifecycle (Figure 2b);
* **file feed** -- pull-based ingestion from local JSON-lines files
  (Figure 2b).

Alongside wall-clock time the report carries the simulated I/O and
network counters, which make the *mechanism* of the paper's claim
visible: statistics collection adds zero data-path I/O, only synopsis
shipping.
"""

from __future__ import annotations

import enum
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.config import StatisticsConfig
from repro.cluster.cluster import LSMCluster
from repro.cluster.feeds import DatasetFeedAdapter, FileFeed, SocketFeed
from repro.errors import ConfigurationError
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import MergePolicy
from repro.lsm.storage import IOStats
from repro.types import Domain

__all__ = ["IngestionMode", "IngestionReport", "IngestionBenchmark"]


class IngestionMode(enum.Enum):
    """The three ingestion paths of Figure 2."""

    BULKLOAD = "Bulkload"
    SOCKET_FEED = "SocketFeed"
    FILE_FEED = "FileFeed"


@dataclass(frozen=True)
class IngestionReport:
    """Measured cost of one ingestion run."""

    mode: IngestionMode
    stats_label: str
    records: int
    seconds: float
    disk_io: IOStats
    network_bytes: int
    stats_messages: int
    components: int

    @property
    def records_per_second(self) -> float:
        """Ingestion throughput."""
        return self.records / self.seconds if self.seconds > 0 else float("inf")


class IngestionBenchmark:
    """Runs one ingestion configuration end to end on a fresh cluster."""

    def __init__(
        self,
        documents: Callable[[], Iterator[dict[str, Any]]],
        num_records: int,
        value_field: str,
        value_domain: Domain,
        stats_config: StatisticsConfig,
        mode: IngestionMode,
        num_nodes: int = 2,
        partitions_per_node: int = 2,
        memtable_capacity: int = 4096,
        merge_policy_factory: Callable[[], MergePolicy] | None = None,
    ) -> None:
        self.documents = documents
        self.num_records = num_records
        self.value_field = value_field
        self.value_domain = value_domain
        self.stats_config = stats_config
        self.mode = mode
        self.num_nodes = num_nodes
        self.partitions_per_node = partitions_per_node
        self.memtable_capacity = memtable_capacity
        self.merge_policy_factory = merge_policy_factory

    def run(self) -> IngestionReport:
        """Build a fresh cluster, ingest, and report the cost."""
        cluster = LSMCluster(
            num_nodes=self.num_nodes,
            partitions_per_node=self.partitions_per_node,
            stats_config=self.stats_config,
        )
        cluster.create_dataset(
            "bench",
            primary_key="id",
            primary_domain=Domain(0, 2**62),
            indexes=[IndexSpec("value_idx", self.value_field, self.value_domain)],
            memtable_capacity=self.memtable_capacity,
            merge_policy_factory=self.merge_policy_factory,
        )
        adapter = DatasetFeedAdapter(cluster, "bench")

        if self.mode is IngestionMode.BULKLOAD:
            started = time.perf_counter()
            cluster.bulkload("bench", self.documents())
            elapsed = time.perf_counter() - started
        elif self.mode is IngestionMode.SOCKET_FEED:
            feed = SocketFeed(self.documents())
            started = time.perf_counter()
            feed.run(adapter)
            adapter.flush()
            elapsed = time.perf_counter() - started
        elif self.mode is IngestionMode.FILE_FEED:
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "feed.jsonl"
                FileFeed.write_file(path, self.documents())
                feed = FileFeed([path])
                started = time.perf_counter()
                feed.run(adapter)
                adapter.flush()
                elapsed = time.perf_counter() - started
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unknown ingestion mode {self.mode!r}")

        disk_io = _sum_io(node.disk.stats for node in cluster.nodes)
        label = (
            self.stats_config.synopsis_type.value
            if self.stats_config.synopsis_type is not None
            else "NoStats"
        )
        return IngestionReport(
            mode=self.mode,
            stats_label=label,
            records=self.num_records,
            seconds=elapsed,
            disk_io=disk_io,
            network_bytes=cluster.network.stats.bytes_sent,
            stats_messages=cluster.master.stats_messages_received,
            components=cluster.component_count("bench", "value_idx"),
        )


def _sum_io(stats: Iterable[IOStats]) -> IOStats:
    total = IOStats()
    for item in stats:
        total = total + item
    return total
