"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: float) -> str:
    """Compact scientific/decimal formatting for result cells."""
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3e}"
    return f"{value:.4g}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [
        [
            format_float(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
