"""Accuracy metrics (paper Section 4.1.2).

For each query the paper records the true cardinality ``C`` and the
estimate ``C_hat``, computes the absolute error normalised by the
dataset size ``N`` -- ``e_abs = |C - C_hat| / N`` -- and reports the L1
(average) metric over the query workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["normalized_absolute_error", "ErrorAccumulator", "ErrorMetrics"]


def normalized_absolute_error(
    true_count: float, estimate: float, total_records: int
) -> float:
    """``|C - C_hat| / N`` for one query."""
    if total_records <= 0:
        raise ConfigurationError("total_records must be positive")
    return abs(true_count - estimate) / total_records


@dataclass(frozen=True)
class ErrorMetrics:
    """Aggregated error over one query workload."""

    query_count: int
    l1_error: float  # mean normalised absolute error
    max_error: float
    mean_true_cardinality: float

    def __str__(self) -> str:
        return (
            f"L1={self.l1_error:.3e} max={self.max_error:.3e} "
            f"({self.query_count} queries)"
        )


class ErrorAccumulator:
    """Accumulates per-query errors into :class:`ErrorMetrics`."""

    def __init__(self, total_records: int) -> None:
        if total_records <= 0:
            raise ConfigurationError("total_records must be positive")
        self.total_records = total_records
        self._errors: list[float] = []
        self._true_sum = 0.0

    def add(self, true_count: float, estimate: float) -> float:
        """Record one query; returns its normalised absolute error."""
        error = normalized_absolute_error(true_count, estimate, self.total_records)
        self._errors.append(error)
        self._true_sum += true_count
        return error

    def metrics(self) -> ErrorMetrics:
        """The aggregate over everything recorded so far."""
        if not self._errors:
            raise ConfigurationError("no queries recorded")
        count = len(self._errors)
        return ErrorMetrics(
            query_count=count,
            l1_error=sum(self._errors) / count,
            max_error=max(self._errors),
            mean_true_cardinality=self._true_sum / count,
        )
