"""Figure 9: estimation accuracy on the WorldCup log dataset.

Feed-based ingestion with the Constant merge policy at its default
component count (5), a secondary index per log field, and range queries
whose length is 1% of each field's observed value range.  Budgets swept
16 -> 256.  Expected shapes: equi-width histograms cannot improve with
budget on the clustered fields (Timestamp/ClientID/ObjectID collapse
into one bucket); equi-height histograms and wavelets adapt, wavelets
typically 5-10x more accurate; the spiky categorical fields
(Status/Server) hurt every proximity-based synopsis.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CardinalityEstimator,
    LocalStatisticsSink,
    MergedSynopsisCache,
    StatisticsCatalog,
    StatisticsCollector,
    StatisticsConfig,
)
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
)
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.eval.truth import FrequencyIndex
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses.base import SynopsisType
from repro.types import Domain
from repro.workloads.worldcup import WORLDCUP_FIELDS, WorldCupGenerator

__all__ = ["DEFAULT_BUDGETS", "CONSTANT_POLICY_COMPONENTS", "run", "format_results"]

DEFAULT_BUDGETS = [16, 64, 256]
CONSTANT_POLICY_COMPONENTS = 5
"""AsterixDB's default for the Constant merge policy (Section 4.4)."""


class _Slot:
    def __init__(self, synopsis_type: SynopsisType, budget: int) -> None:
        self.catalog = StatisticsCatalog()
        self.cache = MergedSynopsisCache()
        self.collector = StatisticsCollector(
            StatisticsConfig(synopsis_type, budget),
            LocalStatisticsSink(self.catalog, self.cache),
        )
        self.estimator = CardinalityEstimator(self.catalog, self.cache)


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budgets: list[int] | None = None,
    synopsis_types: list[SynopsisType] | None = None,
) -> list[dict]:
    """One row per (field, synopsis, budget) cell."""
    budgets = budgets if budgets is not None else DEFAULT_BUDGETS
    synopsis_types = (
        synopsis_types if synopsis_types is not None else STANDARD_SYNOPSIS_TYPES
    )
    num_records = scale.total_records

    dataset = Dataset(
        "worldcup",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[
            IndexSpec(f"{field.name}_idx", field.name, field.domain)
            for field in WORLDCUP_FIELDS
        ],
        # Feed ingestion with the default Constant merge policy.
        memtable_capacity=max(1, num_records // (3 * CONSTANT_POLICY_COMPONENTS)),
        merge_policy=ConstantMergePolicy(CONSTANT_POLICY_COMPONENTS),
    )
    slots: dict[tuple[str, int], _Slot] = {}
    for synopsis_type in synopsis_types:
        for budget in budgets:
            slot = _Slot(synopsis_type, budget)
            for field in WORLDCUP_FIELDS:
                slot.collector.register_index(
                    dataset.secondary_tree(f"{field.name}_idx").name, field.domain
                )
            dataset.event_bus.subscribe(slot.collector)
            slots[(synopsis_type.value, budget)] = slot

    documents = list(WorldCupGenerator(num_records, seed=scale.seed).generate())
    for document in documents:
        dataset.insert(document)
    dataset.flush()

    rng = np.random.default_rng(scale.seed + 99)
    rows = []
    for field in WORLDCUP_FIELDS:
        values = [doc[field.name] for doc in documents]
        truth = FrequencyIndex(values)
        assert truth.min_value is not None and truth.max_value is not None
        # Query length = 1% of the field's observed range (paper §4.4).
        field_range = truth.max_value - truth.min_value
        length = max(1, field_range // 100)
        latest_start = max(truth.min_value, truth.max_value - length)
        starts = rng.integers(
            truth.min_value, latest_start, size=scale.queries_per_cell, endpoint=True
        )
        queries = [(int(s), min(int(s) + length, field.domain.hi)) for s in starts]
        index_name = dataset.secondary_tree(f"{field.name}_idx").name
        for (synopsis_label, budget), slot in slots.items():
            accumulator = ErrorAccumulator(num_records)
            for lo, hi in queries:
                estimate = slot.estimator.estimate(index_name, lo, hi)
                accumulator.add(truth.count(lo, hi), estimate)
            metrics = accumulator.metrics()
            rows.append(
                {
                    "field": field.name,
                    "synopsis": synopsis_label,
                    "budget": budget,
                    "l1_error": metrics.l1_error,
                }
            )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render as one table per synopsis type."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        sections.append(
            format_table(
                ["field", "budget", "normalized L1 error"],
                [[r["field"], r["budget"], r["l1_error"]] for r in subset],
                title=f"Figure 9 — {synopsis} on the WorldCup-like dataset",
            )
        )
    return "\n\n".join(sections)
