"""Figure 2: ingestion overhead of statistics collection.

Total ingestion time under four statistics configurations -- NoStats,
EquiWidth, EquiHeight, Wavelet -- through (a) a partitioned parallel
bulkload producing one component per partition and (b) continuous
socket/file feeds exercising the full LSM lifecycle.  Expected shape:
all three synopsis types land within noise of the NoStats baseline --
the framework adds no data-path I/O, which the report's simulated I/O
counters demonstrate exactly.
"""

from __future__ import annotations

from repro.core.config import DEFAULT_BUDGET, StatisticsConfig
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
)
from repro.eval.pipeline import IngestionBenchmark, IngestionMode, IngestionReport
from repro.eval.reporting import format_table
from repro.synopses.base import SynopsisType
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.tweets import VALUE_FIELD, TweetGenerator

__all__ = ["run", "format_results"]


def _stats_configs() -> list[StatisticsConfig]:
    configs = [StatisticsConfig.disabled()]
    configs.extend(
        StatisticsConfig(synopsis_type, DEFAULT_BUDGET)
        for synopsis_type in STANDARD_SYNOPSIS_TYPES
    )
    return configs


def run(
    scale: ExperimentScale = SMALL_SCALE,
    modes: list[IngestionMode] | None = None,
    synopsis_types: list[SynopsisType] | None = None,
    repeats: int = 1,
) -> list[IngestionReport]:
    """One report per (mode, statistics configuration) pair.

    ``repeats > 1`` re-runs each configuration and keeps the fastest
    run, damping scheduler noise (the paper averages three runs).
    """
    modes = modes if modes is not None else list(IngestionMode)
    configs = _stats_configs()
    if synopsis_types is not None:
        configs = [StatisticsConfig.disabled()] + [
            StatisticsConfig(t, DEFAULT_BUDGET) for t in synopsis_types
        ]
    distribution = make_distribution(
        scale, SpreadDistribution.ZIPF, FrequencyDistribution.ZIPF
    )

    reports = []
    for mode in modes:
        for config in configs:
            best: IngestionReport | None = None
            for repeat in range(max(1, repeats)):
                generator = TweetGenerator(distribution, seed=scale.seed)
                benchmark = IngestionBenchmark(
                    documents=generator.generate,
                    num_records=scale.total_records,
                    value_field=VALUE_FIELD,
                    value_domain=scale.domain,
                    stats_config=config,
                    mode=mode,
                    memtable_capacity=max(64, scale.total_records // 16),
                )
                report = benchmark.run()
                if best is None or report.seconds < best.seconds:
                    best = report
            assert best is not None
            reports.append(best)
    return reports


def format_results(reports: list[IngestionReport]) -> str:
    """Render one table per ingestion mode."""
    sections = []
    for mode in IngestionMode:
        subset = [r for r in reports if r.mode is mode]
        if not subset:
            continue
        baseline = next(
            (r.seconds for r in subset if r.stats_label == "NoStats"), None
        )
        rows = []
        for report in subset:
            relative = (
                report.seconds / baseline if baseline and baseline > 0 else 1.0
            )
            rows.append(
                [
                    report.stats_label,
                    report.seconds,
                    relative,
                    report.disk_io.pages_written,
                    report.network_bytes,
                    report.components,
                ]
            )
        sections.append(
            format_table(
                [
                    "stats",
                    "seconds",
                    "vs NoStats",
                    "pages written",
                    "net bytes",
                    "components",
                ],
                rows,
                title=f"Figure 2 — ingestion overhead ({mode.value})",
            )
        )
    return "\n\n".join(sections)
