"""Drivers for the beyond-the-paper extension experiments.

Two experiments the paper's Section 5 sketches but does not run:

* :func:`run_multidim` -- rectangle-cardinality accuracy of the 2-D
  synopses against the classic attribute-independence assumption, as
  attribute correlation grows;
* :func:`run_rtree` -- the LSM-ified R-tree's MBR page pruning and the
  accuracy of 2-D statistics piggybacked on its component streams.

Both are also wired into the CLI (``python -m repro run ext-multidim``)
and asserted by their ``benchmarks/bench_extension_*.py`` twins.
"""

from __future__ import annotations

import numpy as np

from repro.core.spatial import SpatialStatisticsConfig, SpatialStatisticsManager
from repro.eval.experiments.common import ExperimentScale, SMALL_SCALE
from repro.eval.metrics import ErrorAccumulator
from repro.eval.reporting import format_table
from repro.lsm.dataset import Dataset, SpatialIndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType, create_builder
from repro.synopses.multidim import Synopsis2DType, create_builder_2d
from repro.types import Domain

__all__ = [
    "run_multidim",
    "format_multidim_results",
    "run_rtree",
    "format_rtree_results",
]

# -- 2-D synopses vs. the independence assumption ---------------------------

_MD_X = Domain(0, 1023)
_MD_Y = Domain(0, 1023)
MULTIDIM_BUDGET = 1024
MULTIDIM_CORRELATIONS = [0.0, 0.5, 1.0]
_MD_RECORDS = 8000
_MD_QUERIES = 150


def _make_pairs(correlation: float, rng: np.random.Generator):
    """y mixes a copy of x with independent noise by ``correlation``."""
    x = rng.integers(0, _MD_X.length, size=_MD_RECORDS)
    independent = rng.integers(0, _MD_Y.length, size=_MD_RECORDS)
    take_x = rng.random(_MD_RECORDS) < correlation
    y = np.where(take_x, x, independent)
    return sorted(zip(x.tolist(), y.tolist()))


def _build_estimators(pairs):
    grid_builder = create_builder_2d(
        Synopsis2DType.GRID, (_MD_X, _MD_Y), MULTIDIM_BUDGET
    )
    wavelet_builder = create_builder_2d(
        Synopsis2DType.WAVELET, (_MD_X, _MD_Y), MULTIDIM_BUDGET
    )
    # The 1-D marginals share the same total space: budget/2 each.
    x_builder = create_builder(
        SynopsisType.EQUI_WIDTH, _MD_X, MULTIDIM_BUDGET // 2, len(pairs)
    )
    y_builder = create_builder(
        SynopsisType.EQUI_WIDTH, _MD_Y, MULTIDIM_BUDGET // 2, len(pairs)
    )
    for x, y in pairs:
        grid_builder.add(x, y)
        wavelet_builder.add(x, y)
        x_builder.add(x)
    for y in sorted(y for _x, y in pairs):
        y_builder.add(y)
    return (
        grid_builder.build(),
        wavelet_builder.build(),
        x_builder.build(),
        y_builder.build(),
    )


def run_multidim(scale: ExperimentScale = SMALL_SCALE) -> list[dict]:
    """One row per (correlation, estimation method)."""
    rng = np.random.default_rng(scale.seed)
    rows = []
    for correlation in MULTIDIM_CORRELATIONS:
        pairs = _make_pairs(correlation, rng)
        grid, wavelet, x_marginal, y_marginal = _build_estimators(pairs)
        xs = np.array([x for x, _y in pairs])
        ys = np.array([y for _x, y in pairs])
        accumulators = {
            "independence": ErrorAccumulator(_MD_RECORDS),
            "grid_2d": ErrorAccumulator(_MD_RECORDS),
            "wavelet_2d": ErrorAccumulator(_MD_RECORDS),
        }
        for _ in range(_MD_QUERIES):
            corners = rng.integers(0, _MD_X.length, size=4)
            lo_x, hi_x = sorted((int(corners[0]), int(corners[1])))
            lo_y, hi_y = sorted((int(corners[2]), int(corners[3])))
            true = int(
                np.sum((xs >= lo_x) & (xs <= hi_x) & (ys >= lo_y) & (ys <= hi_y))
            )
            independence = (
                x_marginal.estimate(lo_x, hi_x)
                * y_marginal.estimate(lo_y, hi_y)
                / _MD_RECORDS
            )
            accumulators["independence"].add(true, independence)
            accumulators["grid_2d"].add(true, grid.estimate(lo_x, hi_x, lo_y, hi_y))
            accumulators["wavelet_2d"].add(
                true, wavelet.estimate(lo_x, hi_x, lo_y, hi_y)
            )
        for method, accumulator in accumulators.items():
            rows.append(
                {
                    "correlation": correlation,
                    "method": method,
                    "l1_error": accumulator.metrics().l1_error,
                }
            )
    return rows


def format_multidim_results(rows: list[dict]) -> str:
    """Render the correlation sweep."""
    return format_table(
        ["correlation", "method", "normalized L1 error"],
        [[r["correlation"], r["method"], r["l1_error"]] for r in rows],
        title=(
            "Extension — 2-D synopses vs. the independence assumption "
            f"(budget {MULTIDIM_BUDGET})"
        ),
    )


# -- LSM-ified R-tree ---------------------------------------------------------

_RT_X = Domain(0, 4095)
_RT_Y = Domain(0, 4095)
_RT_POINTS = 10_000
_RT_QUERIES = 100
_RT_WINDOW = 256


def run_rtree(scale: ExperimentScale = SMALL_SCALE) -> dict:
    """Pruning + piggybacked-statistics metrics of the spatial index."""
    rng = np.random.default_rng(scale.seed)
    dataset = Dataset(
        "geo",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[SpatialIndexSpec("loc_idx", ("x", "y"), (_RT_X, _RT_Y))],
        memtable_capacity=_RT_POINTS // 8,
        merge_policy=ConstantMergePolicy(4),
    )
    manager = SpatialStatisticsManager(
        SpatialStatisticsConfig(Synopsis2DType.GRID, budget=1024)
    )
    manager.attach(dataset)

    xs = rng.integers(0, _RT_X.length, size=_RT_POINTS)
    ys = np.clip(xs + rng.integers(-300, 300, size=_RT_POINTS), 0, _RT_Y.hi)
    for pk in range(_RT_POINTS):
        dataset.insert({"id": pk, "x": int(xs[pk]), "y": int(ys[pk])})
    dataset.flush()

    disk = dataset.primary.disk
    tree = dataset.secondary_tree("loc_idx")

    def random_rect():
        corner_x = int(rng.integers(0, _RT_X.length - _RT_WINDOW))
        corner_y = int(rng.integers(0, _RT_Y.length - _RT_WINDOW))
        return (
            corner_x,
            corner_x + _RT_WINDOW - 1,
            corner_y,
            corner_y + _RT_WINDOW - 1,
        )

    before = disk.stats.snapshot()
    found = 0
    for _ in range(_RT_QUERIES):
        found += sum(1 for _r in dataset.search_spatial("loc_idx", *random_rect()))
    search_pages = disk.stats.delta(before).pages_read

    before = disk.stats.snapshot()
    for component in tree.components:
        for _record in component.scan():
            pass
    full_scan_pages = disk.stats.delta(before).pages_read * _RT_QUERIES

    errors = ErrorAccumulator(_RT_POINTS)
    for _ in range(_RT_QUERIES):
        rect = random_rect()
        true = dataset.count_spatial_range("loc_idx", *rect)
        errors.add(true, manager.estimate(dataset, "loc_idx", *rect))

    return {
        "search_pages_per_query": search_pages / _RT_QUERIES,
        "full_scan_pages_per_query": full_scan_pages / _RT_QUERIES,
        "matches_found": found,
        "stats_l1_error": errors.metrics().l1_error,
        "components": len(tree.components),
    }


def format_rtree_results(row: dict) -> str:
    """Render the R-tree metric row."""
    return format_table(
        ["metric", "value"],
        [[key, value] for key, value in row.items()],
        title="Extension — LSM-ified R-tree: pruning + piggybacked 2-D stats",
    )
