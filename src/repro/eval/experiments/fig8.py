"""Figure 8: query-time overhead, Bulkload vs. NoMerge ingestion.

Bulkload creates a single LSM component (one synopsis to consult);
feed-based ingestion under the NoMerge policy creates the maximum
number of components (one synopsis per flush).  Expected shape: the
NoMerge overhead is consistently higher than Bulkload's, but the
difference stays sub-millisecond and is similar across synopsis types
-- mergeability matters for *space*, not per-query latency
(Section 4.3.5); the companion space numbers make that visible.
"""

from __future__ import annotations

from repro.core.config import DEFAULT_BUDGET
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.experiments.fig3 import QUERY_LENGTH
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["DEFAULT_NOMERGE_FLUSHES", "run", "format_results"]

DEFAULT_NOMERGE_FLUSHES = 32
"""Flushed components the NoMerge side accumulates."""


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budget: int = DEFAULT_BUDGET,
    nomerge_flushes: int = DEFAULT_NOMERGE_FLUSHES,
    frequency: FrequencyDistribution = FrequencyDistribution.ZIPF,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (spread, synopsis, ingestion mode) cell."""
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    cell = 0
    for spread in spreads:
        for mode, memtable_capacity in [
            ("Bulkload", None),
            ("NoMerge", -(-scale.total_records // nomerge_flushes)),
        ]:
            cell += 1
            distribution = make_distribution(scale, spread, frequency, cell)
            lab = AccuracyLab(
                distribution,
                memtable_capacity=memtable_capacity,
                seed=scale.seed + cell,
            )
            setups = {
                synopsis_type: lab.add_config(synopsis_type, budget)
                for synopsis_type in STANDARD_SYNOPSIS_TYPES
            }
            lab.ingest()
            queries = list(
                make_query_generator(scale, cell).generate(
                    QueryType.FIXED_LENGTH, scale.queries_per_cell, QUERY_LENGTH
                )
            )
            for synopsis_type, setup in setups.items():
                overhead = lab.estimation_overhead(setup, queries, cold=True)
                rows.append(
                    {
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "mode": mode,
                        "components": lab.component_count,
                        "overhead_ms": overhead * 1e3,
                        "catalog_bytes": lab.catalog_bytes(setup),
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render as one table per synopsis type."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        sections.append(
            format_table(
                ["spread", "mode", "components", "overhead (ms)", "catalog bytes"],
                [
                    [
                        r["spread"],
                        r["mode"],
                        r["components"],
                        r["overhead_ms"],
                        r["catalog_bytes"],
                    ]
                    for r in subset
                ],
                title=f"Figure 8 — {synopsis}: NoMerge vs. Bulkload query overhead",
            )
        )
    return "\n\n".join(sections)
