"""Figure 3: estimation accuracy while varying the synopsis size.

FixedLength(128) queries; datasets with Uniform (3a), Zipf (3b) and
ZipfRandom (3c) frequency distributions crossed with all six spread
distributions; synopsis budgets swept 16 -> 1024 for all three synopsis
types.  Expected shapes: near-zero error for smooth CDFs, error falling
with budget elsewhere, histograms plateauing on skewed spreads where
wavelets keep improving.
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["DEFAULT_BUDGETS", "QUERY_LENGTH", "run", "format_results"]

DEFAULT_BUDGETS = [16, 64, 256, 1024]
QUERY_LENGTH = 128

_FREQUENCIES = [
    FrequencyDistribution.UNIFORM,
    FrequencyDistribution.ZIPF,
    FrequencyDistribution.ZIPF_RANDOM,
]


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budgets: list[int] | None = None,
    frequencies: list[FrequencyDistribution] | None = None,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (frequency, spread, synopsis, budget) cell."""
    budgets = budgets if budgets is not None else DEFAULT_BUDGETS
    frequencies = frequencies if frequencies is not None else _FREQUENCIES
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    cell = 0
    for frequency in frequencies:
        for spread in spreads:
            cell += 1
            distribution = make_distribution(scale, spread, frequency, cell)
            lab = AccuracyLab(distribution, seed=scale.seed + cell)
            setups = {
                (synopsis_type, budget): lab.add_config(synopsis_type, budget)
                for synopsis_type in STANDARD_SYNOPSIS_TYPES
                for budget in budgets
            }
            lab.ingest()
            queries = list(
                make_query_generator(scale, cell).generate(
                    QueryType.FIXED_LENGTH, scale.queries_per_cell, QUERY_LENGTH
                )
            )
            for (synopsis_type, budget), setup in setups.items():
                metrics = lab.evaluate(setup, queries)
                rows.append(
                    {
                        "frequency": frequency.value,
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "budget": budget,
                        "l1_error": metrics.l1_error,
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render the sweep as one table per frequency distribution."""
    sections = []
    for frequency in sorted({r["frequency"] for r in rows}):
        subset = [r for r in rows if r["frequency"] == frequency]
        table_rows = [
            [r["spread"], r["synopsis"], r["budget"], r["l1_error"]]
            for r in subset
        ]
        sections.append(
            format_table(
                ["spread", "synopsis", "budget", "normalized L1 error"],
                table_rows,
                title=f"Figure 3 — dataset with {frequency} frequencies",
            )
        )
    return "\n\n".join(sections)
