"""Figure 4: estimation accuracy for the four query types.

Datasets with Zipf frequencies, budget 256 (the value the paper fixes
after Figure 3).  Expected ordering of errors:
Point < FixedLength < HalfOpen ~ Random -- wider ranges cover a larger
fraction of the dataset, which the normalised L1 metric emphasises.
"""

from __future__ import annotations

from repro.core.config import DEFAULT_BUDGET
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.experiments.fig3 import QUERY_LENGTH
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["run", "format_results"]


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budget: int = DEFAULT_BUDGET,
    frequency: FrequencyDistribution = FrequencyDistribution.ZIPF,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (spread, synopsis, query type) cell."""
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    for cell, spread in enumerate(spreads, start=1):
        distribution = make_distribution(scale, spread, frequency, cell)
        lab = AccuracyLab(distribution, seed=scale.seed + cell)
        setups = {
            synopsis_type: lab.add_config(synopsis_type, budget)
            for synopsis_type in STANDARD_SYNOPSIS_TYPES
        }
        lab.ingest()
        for query_type in QueryType:
            queries = list(
                make_query_generator(scale, cell * 10 + 1).generate(
                    query_type, scale.queries_per_cell, QUERY_LENGTH
                )
            )
            for synopsis_type, setup in setups.items():
                metrics = lab.evaluate(setup, queries)
                rows.append(
                    {
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "query_type": query_type.value,
                        "l1_error": metrics.l1_error,
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render as one table per synopsis type."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        table_rows = [
            [r["spread"], r["query_type"], r["l1_error"]] for r in subset
        ]
        sections.append(
            format_table(
                ["spread", "query type", "normalized L1 error"],
                table_rows,
                title=f"Figure 4 — {synopsis} (Zipf frequencies)",
            )
        )
    return "\n\n".join(sections)
