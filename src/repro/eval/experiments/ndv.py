"""NDV sketch lane accuracy/size trade-off (docs/SKETCHES.md).

Sweeps the HLL precision ``p`` and the true distinct cardinality,
measuring the relative NDV error of the *lazily unioned* sketch (the
stream is split across several simulated components and folded by
register union, exactly as the master does) against the theoretical
standard error ``1.04/sqrt(2**p)``, alongside the wire cost: dense
register bytes vs the HBS-encoded form actually shipped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.eval.experiments.common import ExperimentScale
from repro.eval.reporting import format_table
from repro.synopses.hll import HyperLogLogBuilder
from repro.types import Domain

__all__ = ["run_ndv", "format_ndv_results", "NDV_PRECISIONS"]

NDV_PRECISIONS = [4, 6, 8, 10, 12]
_COMPONENTS = 8
_TRIALS = 5
_VALUE_DOMAIN = Domain(0, 2**62 - 1)


@dataclass(frozen=True)
class NDVCell:
    """One (precision, cardinality) sweep cell."""

    precision: int
    registers: int
    cardinality: int
    mean_rel_error: float
    theory_sigma: float
    dense_bytes: int
    mean_wire_bytes: float
    compression_ratio: float


def _unioned_sketch(values, precision: int):
    """Build one sketch per component slice, union them (the master's
    lazy fold) -- exactness of the union is what makes this equal to a
    single sketch over the whole stream."""
    slices = [values[i::_COMPONENTS] for i in range(_COMPONENTS)]
    merged = None
    for component_values in slices:
        builder = HyperLogLogBuilder(_VALUE_DOMAIN, 1 << precision)
        for value in component_values:
            builder.add(value)
        sketch = builder.build()
        merged = sketch if merged is None else merged.merge_with(sketch)
    return merged


def run_ndv(scale: ExperimentScale) -> list[NDVCell]:
    """Run the sweep at ``scale`` (cardinalities derive from
    ``scale.total_records``)."""
    cardinalities = [
        max(10, scale.total_records // 100),
        max(100, scale.total_records // 10),
        scale.total_records,
    ]
    cells: list[NDVCell] = []
    for precision in NDV_PRECISIONS:
        m = 1 << precision
        for cardinality in cardinalities:
            errors = []
            wire_bytes = []
            for trial in range(_TRIALS):
                rng = random.Random(
                    f"{scale.seed}:{precision}:{cardinality}:{trial}"
                )
                values = rng.sample(range(2**62 - 1), cardinality)
                sketch = _unioned_sketch(values, precision)
                estimate = sketch.cardinality()
                errors.append(abs(estimate - cardinality) / cardinality)
                wire_bytes.append(sketch.encoded_bytes())
            mean_wire = sum(wire_bytes) / len(wire_bytes)
            cells.append(
                NDVCell(
                    precision=precision,
                    registers=m,
                    cardinality=cardinality,
                    mean_rel_error=sum(errors) / len(errors),
                    theory_sigma=1.04 / m**0.5,
                    dense_bytes=m,
                    mean_wire_bytes=mean_wire,
                    compression_ratio=m / mean_wire if mean_wire else 0.0,
                )
            )
    return cells


def format_ndv_results(cells: list[NDVCell]) -> str:
    rows = [
        (
            cell.precision,
            cell.registers,
            cell.cardinality,
            cell.mean_rel_error,
            cell.theory_sigma,
            cell.dense_bytes,
            cell.mean_wire_bytes,
            cell.compression_ratio,
        )
        for cell in cells
    ]
    return format_table(
        (
            "p",
            "registers",
            "true NDV",
            "rel error",
            "sigma=1.04/sqrt(m)",
            "dense B",
            "HBS B",
            "ratio",
        ),
        rows,
        title="NDV sketch accuracy vs precision and HBS wire size",
    )
