"""Figure 7: accuracy under workloads with growing anti-matter ratios.

The changeable-feed workload of Section 4.3.4: the update and delete
ratios are scaled together from 0 to 0.3 (the structural maximum is
1/3), with staged forced flushes so the updates and deletes materialise
as anti-matter records in disk components.  Expected shape: accuracy
stays flat as the anti-matter fraction grows -- the separate
"anti"-synopsis twin absorbs the deletions exactly as the paper
reports, at a constant (2x) space factor.
"""

from __future__ import annotations

from repro.core.config import DEFAULT_BUDGET
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.experiments.fig3 import QUERY_LENGTH
from repro.eval.lab import ChangeableWorkloadLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["DEFAULT_RATIOS", "run", "format_results"]

DEFAULT_RATIOS = [0.0, 0.1, 0.2, 0.3]
"""Update ratio U and delete ratio D, scaled together (U = D)."""


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budget: int = DEFAULT_BUDGET,
    ratios: list[float] | None = None,
    frequency: FrequencyDistribution = FrequencyDistribution.ZIPF_RANDOM,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (spread, synopsis, ratio) cell."""
    ratios = ratios if ratios is not None else DEFAULT_RATIOS
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    cell = 0
    for spread in spreads:
        for ratio in ratios:
            cell += 1
            distribution = make_distribution(scale, spread, frequency, cell)
            lab = ChangeableWorkloadLab(
                distribution,
                update_ratio=ratio,
                delete_ratio=ratio,
                seed=scale.seed + cell,
            )
            setups = {
                synopsis_type: lab.add_config(synopsis_type, budget)
                for synopsis_type in STANDARD_SYNOPSIS_TYPES
            }
            lab.ingest()
            queries = list(
                make_query_generator(scale, cell).generate(
                    QueryType.FIXED_LENGTH, scale.queries_per_cell, QUERY_LENGTH
                )
            )
            for synopsis_type, setup in setups.items():
                metrics = lab.evaluate(setup, queries)
                rows.append(
                    {
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "ratio": ratio,
                        "antimatter_records": lab.antimatter_records_on_disk(),
                        "l1_error": metrics.l1_error,
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render as one table per synopsis type."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        sections.append(
            format_table(
                ["spread", "U=D ratio", "anti-matter", "normalized L1 error"],
                [
                    [r["spread"], r["ratio"], r["antimatter_records"], r["l1_error"]]
                    for r in subset
                ],
                title=(
                    f"Figure 7 — {synopsis}: accuracy vs. update/delete ratio "
                    "(ZipfRandom frequencies)"
                ),
            )
        )
    return "\n\n".join(sections)
