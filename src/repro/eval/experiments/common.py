"""Shared configuration of the reproduction experiments.

The paper's testbed ingests 50M ~1KB tweets into a 4-node AsterixDB
cluster over an int32 domain and answers 1000 queries per cell; the
pure-Python reproduction scales those constants down while preserving
every *ratio* that the result shapes depend on (synopsis budget vs.
distinct values, query length vs. spread, component counts).  Two
presets are provided; every experiment driver takes the scale as a
parameter, so the full-size run is one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.synopses.base import SynopsisType
from repro.types import Domain
from repro.workloads.distributions import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    SyntheticDistribution,
    generate_distribution,
)
from repro.workloads.queries import QueryWorkloadGenerator

__all__ = [
    "ExperimentScale",
    "SMALL_SCALE",
    "MEDIUM_SCALE",
    "STANDARD_SYNOPSIS_TYPES",
    "make_distribution",
    "make_query_generator",
]

STANDARD_SYNOPSIS_TYPES = [
    SynopsisType.EQUI_HEIGHT,
    SynopsisType.EQUI_WIDTH,
    SynopsisType.WAVELET,
]
"""The three synopsis families every figure compares."""


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs every experiment driver respects.

    Attributes:
        domain_length: Length of the secondary-key domain.
        num_values: Distinct secondary-key values.
        total_records: Records per synthetic dataset.
        queries_per_cell: Queries evaluated per result cell.
        seed: Base RNG seed (each cell derives its own).
    """

    domain_length: int = 2**16
    num_values: int = 500
    total_records: int = 10_000
    queries_per_cell: int = 200
    seed: int = 42

    @property
    def domain(self) -> Domain:
        """The secondary-key domain."""
        return Domain(0, self.domain_length - 1)

    def scaled(self, **overrides) -> "ExperimentScale":
        """A copy with some knobs overridden."""
        return replace(self, **overrides)


SMALL_SCALE = ExperimentScale()
"""Quick preset: minutes for the whole suite."""

MEDIUM_SCALE = ExperimentScale(
    domain_length=2**20,
    num_values=2_000,
    total_records=50_000,
    queries_per_cell=500,
)
"""Closer to the paper's ratios; tens of minutes for the whole suite."""


def make_distribution(
    scale: ExperimentScale,
    spread: SpreadDistribution,
    frequency: FrequencyDistribution,
    seed_offset: int = 0,
) -> SyntheticDistribution:
    """The synthetic dataset of one experiment cell."""
    return generate_distribution(
        DistributionSpec(
            spread=spread,
            frequency=frequency,
            domain=scale.domain,
            num_values=scale.num_values,
            total_records=scale.total_records,
            seed=scale.seed + seed_offset,
        )
    )


def make_query_generator(
    scale: ExperimentScale, seed_offset: int = 0
) -> QueryWorkloadGenerator:
    """A deterministic query generator for one experiment cell."""
    return QueryWorkloadGenerator(scale.domain, seed=scale.seed + 1_000 + seed_offset)
