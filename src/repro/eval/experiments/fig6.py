"""Figure 6: accuracy (6a) and query-time overhead (6b) as the number
of LSM components grows.

The component count is controlled by sizing the memtable so the
ingestion produces exactly K flushed components (the paper uses the
Constant merge policy to pin the count).  The *total* space allocated
to statistics stays fixed: each of the K per-component synopses gets
``total_budget / K`` elements.  Expected shapes: accuracy degrades
mildly with K (each synopsis holds fewer elements) and the estimation
overhead rises mildly (more synopses consulted per query).
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.experiments.fig3 import QUERY_LENGTH
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["DEFAULT_COMPONENT_COUNTS", "DEFAULT_TOTAL_BUDGET", "run", "format_results"]

DEFAULT_COMPONENT_COUNTS = [8, 16, 32, 64, 128]
DEFAULT_TOTAL_BUDGET = 2048
"""Fixed total statistics space: per-component budget = total / K."""


def run(
    scale: ExperimentScale = SMALL_SCALE,
    component_counts: list[int] | None = None,
    total_budget: int = DEFAULT_TOTAL_BUDGET,
    frequency: FrequencyDistribution = FrequencyDistribution.UNIFORM,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (spread, synopsis, component count) cell, carrying
    both the accuracy and the per-query estimation overhead."""
    component_counts = (
        component_counts
        if component_counts is not None
        else DEFAULT_COMPONENT_COUNTS
    )
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    cell = 0
    for spread in spreads:
        for num_components in component_counts:
            cell += 1
            per_component_budget = max(1, total_budget // num_components)
            distribution = make_distribution(scale, spread, frequency, cell)
            # Memtable sized for exactly `num_components` flushes.
            memtable_capacity = -(-scale.total_records // num_components)
            lab = AccuracyLab(
                distribution,
                memtable_capacity=memtable_capacity,
                seed=scale.seed + cell,
            )
            setups = {
                synopsis_type: lab.add_config(synopsis_type, per_component_budget)
                for synopsis_type in STANDARD_SYNOPSIS_TYPES
            }
            lab.ingest()
            queries = list(
                make_query_generator(scale, cell).generate(
                    QueryType.FIXED_LENGTH, scale.queries_per_cell, QUERY_LENGTH
                )
            )
            for synopsis_type, setup in setups.items():
                metrics = lab.evaluate(setup, queries)
                overhead = lab.estimation_overhead(setup, queries, cold=True)
                rows.append(
                    {
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "target_components": num_components,
                        "components": lab.component_count,
                        "budget_per_component": per_component_budget,
                        "l1_error": metrics.l1_error,
                        "overhead_ms": overhead * 1e3,
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render accuracy (6a) and overhead (6b) tables per synopsis."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        sections.append(
            format_table(
                ["spread", "components", "normalized L1 error"],
                [[r["spread"], r["components"], r["l1_error"]] for r in subset],
                title=f"Figure 6a — {synopsis}: accuracy vs. #components",
            )
        )
        sections.append(
            format_table(
                ["spread", "components", "query overhead (ms)"],
                [[r["spread"], r["components"], r["overhead_ms"]] for r in subset],
                title=f"Figure 6b — {synopsis}: estimation overhead vs. #components",
            )
        )
    return "\n\n".join(sections)
