"""Figure 5: accuracy of FixedLength queries as the length grows.

Datasets with Zipf frequencies, budget 256, range lengths swept
8 -> 256.  Expected shape: the normalised L1 error grows with the query
range, because wider ranges return a larger fraction of the dataset.
"""

from __future__ import annotations

from repro.core.config import DEFAULT_BUDGET
from repro.eval.experiments.common import (
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    SMALL_SCALE,
    make_distribution,
    make_query_generator,
)
from repro.eval.lab import AccuracyLab
from repro.eval.reporting import format_table
from repro.workloads.distributions import FrequencyDistribution, SpreadDistribution
from repro.workloads.queries import QueryType

__all__ = ["DEFAULT_LENGTHS", "run", "format_results"]

DEFAULT_LENGTHS = [8, 32, 128, 256]


def run(
    scale: ExperimentScale = SMALL_SCALE,
    budget: int = DEFAULT_BUDGET,
    lengths: list[int] | None = None,
    frequency: FrequencyDistribution = FrequencyDistribution.ZIPF,
    spreads: list[SpreadDistribution] | None = None,
) -> list[dict]:
    """One row per (spread, synopsis, query length) cell."""
    lengths = lengths if lengths is not None else DEFAULT_LENGTHS
    spreads = spreads if spreads is not None else list(SpreadDistribution)
    rows = []
    for cell, spread in enumerate(spreads, start=1):
        distribution = make_distribution(scale, spread, frequency, cell)
        lab = AccuracyLab(distribution, seed=scale.seed + cell)
        setups = {
            synopsis_type: lab.add_config(synopsis_type, budget)
            for synopsis_type in STANDARD_SYNOPSIS_TYPES
        }
        lab.ingest()
        for length in lengths:
            queries = list(
                make_query_generator(scale, cell * 100 + length).generate(
                    QueryType.FIXED_LENGTH, scale.queries_per_cell, length
                )
            )
            for synopsis_type, setup in setups.items():
                metrics = lab.evaluate(setup, queries)
                rows.append(
                    {
                        "spread": spread.value,
                        "synopsis": synopsis_type.value,
                        "length": length,
                        "l1_error": metrics.l1_error,
                    }
                )
    return rows


def format_results(rows: list[dict]) -> str:
    """Render as one table per synopsis type."""
    sections = []
    for synopsis in sorted({r["synopsis"] for r in rows}):
        subset = [r for r in rows if r["synopsis"] == synopsis]
        table_rows = [[r["spread"], r["length"], r["l1_error"]] for r in subset]
        sections.append(
            format_table(
                ["spread", "query length", "normalized L1 error"],
                table_rows,
                title=f"Figure 5 — {synopsis} (Zipf frequencies)",
            )
        )
    return "\n\n".join(sections)
