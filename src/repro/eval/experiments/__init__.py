"""One driver per figure of the paper's evaluation section."""

from repro.eval.experiments import (
    extensions,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    ndv,
)
from repro.eval.experiments.common import (
    MEDIUM_SCALE,
    SMALL_SCALE,
    STANDARD_SYNOPSIS_TYPES,
    ExperimentScale,
    make_distribution,
    make_query_generator,
)

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ndv",
    "extensions",
    "ExperimentScale",
    "SMALL_SCALE",
    "MEDIUM_SCALE",
    "STANDARD_SYNOPSIS_TYPES",
    "make_distribution",
    "make_query_generator",
]
