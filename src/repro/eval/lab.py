"""Accuracy laboratories: ingest once, evaluate many synopsis configs.

Because the collection framework piggybacks on LSM events, any number
of collectors can observe the *same* ingestion -- each synopsis
configuration (type x budget) gets its own collector, catalog, cache
and estimator, all fed by one pass over the data.  The accuracy
experiments (Figures 3-7, 9) exploit this: one ingest per distribution,
a dozen synopsis configurations measured on it.

Two labs:

* :class:`AccuracyLab` -- insert-only workloads realised from a
  :class:`~repro.workloads.distributions.SyntheticDistribution` (or any
  document stream), bulkloaded or fed through the flush lifecycle;
* :class:`ChangeableWorkloadLab` -- the Section 4.3.4 workload with a
  configurable update/delete ratio and staged forced flushes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.core import (
    CardinalityEstimator,
    LocalStatisticsSink,
    MergedSynopsisCache,
    StatisticsCatalog,
    StatisticsCollector,
    StatisticsConfig,
)
from repro.errors import ConfigurationError
from repro.eval.metrics import ErrorAccumulator, ErrorMetrics
from repro.eval.truth import FrequencyIndex
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import MergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses.base import SynopsisType
from repro.types import Domain
from repro.workloads.distributions import SyntheticDistribution
from repro.workloads.queries import RangeQuery
from repro.workloads.tweets import VALUE_FIELD, TweetGenerator

__all__ = ["SynopsisSetup", "AccuracyLab", "ChangeableWorkloadLab"]


@dataclass(frozen=True)
class SynopsisSetup:
    """One synopsis configuration under evaluation."""

    synopsis_type: SynopsisType
    budget: int

    @property
    def key(self) -> tuple[str, int]:
        return (self.synopsis_type.value, self.budget)


class _ConfigSlot:
    """Catalog/cache/estimator triple of one configuration."""

    def __init__(self, setup: SynopsisSetup) -> None:
        self.setup = setup
        self.catalog = StatisticsCatalog()
        self.cache = MergedSynopsisCache()
        self.collector = StatisticsCollector(
            StatisticsConfig(setup.synopsis_type, setup.budget),
            LocalStatisticsSink(self.catalog, self.cache),
        )
        self.estimator = CardinalityEstimator(self.catalog, self.cache)


class _MultiConfigDataset:
    """A local dataset with one collector attached per configuration."""

    def __init__(
        self,
        value_domain: Domain,
        memtable_capacity: int | None,
        merge_policy: MergePolicy | None,
    ) -> None:
        self.value_domain = value_domain
        self.dataset = Dataset(
            "lab",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**62),
            indexes=[IndexSpec("value_idx", VALUE_FIELD, value_domain)],
            memtable_capacity=memtable_capacity or 2**30,
            merge_policy=merge_policy,
        )
        self.index_name = self.dataset.secondary_tree("value_idx").name
        self._slots: dict[tuple[str, int], _ConfigSlot] = {}

    def add_config(self, setup: SynopsisSetup) -> None:
        if setup.key in self._slots:
            return
        slot = _ConfigSlot(setup)
        slot.collector.register_index(self.index_name, self.value_domain)
        self.dataset.event_bus.subscribe(slot.collector)
        self._slots[setup.key] = slot

    def slot(self, setup: SynopsisSetup) -> _ConfigSlot:
        try:
            return self._slots[setup.key]
        except KeyError:
            raise ConfigurationError(
                f"configuration {setup} was not added before ingest"
            ) from None

    @property
    def component_count(self) -> int:
        return len(self.dataset.secondary_tree("value_idx").components)


class AccuracyLab:
    """Insert-only accuracy experiments over one synthetic distribution.

    Args:
        distribution: The value/frequency sets the indexed field realises.
        memtable_capacity: ``None`` bulkloads the whole dataset into a
            single component; an integer drives incremental ingestion
            through flushes of that size.
        merge_policy: Optional merge policy for incremental ingestion.
        seed: Ingestion-order shuffle seed.
    """

    def __init__(
        self,
        distribution: SyntheticDistribution,
        memtable_capacity: int | None = None,
        merge_policy: MergePolicy | None = None,
        seed: int = 0,
    ) -> None:
        self.distribution = distribution
        self._multi = _MultiConfigDataset(
            distribution.spec.domain, memtable_capacity, merge_policy
        )
        self._seed = seed
        self._ingested = False

    def add_config(self, synopsis_type: SynopsisType, budget: int) -> SynopsisSetup:
        """Register a synopsis configuration before ingestion."""
        if self._ingested:
            raise ConfigurationError("cannot add configurations after ingest")
        setup = SynopsisSetup(synopsis_type, budget)
        self._multi.add_config(setup)
        return setup

    def ingest(self) -> None:
        """Realise the distribution into the dataset exactly once."""
        if self._ingested:
            raise ConfigurationError("already ingested")
        self._ingested = True
        generator = TweetGenerator(self.distribution, seed=self._seed)
        dataset = self._multi.dataset
        if dataset.memtable_capacity >= 2**30:
            dataset.bulkload(generator.generate())
        else:
            for document in generator.generate():
                dataset.insert(document)
            dataset.flush()

    @property
    def component_count(self) -> int:
        """Live components of the value index."""
        return self._multi.component_count

    @property
    def total_records(self) -> int:
        """Records the distribution realises."""
        return self.distribution.total_records

    def estimate(self, setup: SynopsisSetup, query: RangeQuery) -> float:
        """One estimate through the configured estimator."""
        slot = self._multi.slot(setup)
        return slot.estimator.estimate(self._multi.index_name, query.lo, query.hi)

    def evaluate(
        self, setup: SynopsisSetup, queries: Iterable[RangeQuery]
    ) -> ErrorMetrics:
        """Normalised-L1 accuracy of one configuration over a workload."""
        self._require_ingested()
        accumulator = ErrorAccumulator(self.total_records)
        for query in queries:
            true_count = self.distribution.true_range_count(query.lo, query.hi)
            accumulator.add(true_count, self.estimate(setup, query))
        return accumulator.metrics()

    def estimation_overhead(
        self, setup: SynopsisSetup, queries: Iterable[RangeQuery], cold: bool = True
    ) -> float:
        """Mean estimator wall-clock seconds per query.

        ``cold=True`` clears the merged-synopsis cache before every
        query, isolating the per-component combination cost that
        Figures 6b and 8 measure; ``cold=False`` measures the cached
        steady state.
        """
        self._require_ingested()
        slot = self._multi.slot(setup)
        total = 0.0
        count = 0
        for query in queries:
            if cold:
                slot.cache.clear()
            result = slot.estimator.estimate_detailed(
                self._multi.index_name, query.lo, query.hi
            )
            total += result.overhead_seconds
            count += 1
        if count == 0:
            raise ConfigurationError("no queries supplied")
        return total / count

    def catalog_bytes(self, setup: SynopsisSetup) -> int:
        """Catalog space the configuration's synopses occupy."""
        return self._multi.slot(setup).catalog.total_bytes()

    def _require_ingested(self) -> None:
        if not self._ingested:
            raise ConfigurationError("call ingest() first")


class ChangeableWorkloadLab:
    """The Section 4.3.4 workload: staged inserts + updates + deletes.

    The operation mix is parameterised by ``update_ratio`` and
    ``delete_ratio`` (each at most 1/3, as in the paper, because every
    update/delete must reference an existing record).  Ingestion is
    broken into ``stages`` with a forced flush after each, so later
    updates/deletes hit disk-resident records and generate anti-matter.
    """

    def __init__(
        self,
        distribution: SyntheticDistribution,
        update_ratio: float,
        delete_ratio: float,
        stages: int = 4,
        memtable_capacity: int = 2**30,
        merge_policy: MergePolicy | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= update_ratio <= 1.0 / 3 + 1e-9:
            raise ConfigurationError("update_ratio must be in [0, 1/3]")
        if not 0.0 <= delete_ratio <= 1.0 / 3 + 1e-9:
            raise ConfigurationError("delete_ratio must be in [0, 1/3]")
        if stages < 1:
            raise ConfigurationError("stages must be >= 1")
        self.distribution = distribution
        self.update_ratio = update_ratio
        self.delete_ratio = delete_ratio
        self.stages = stages
        self._seed = seed
        self._multi = _MultiConfigDataset(
            distribution.spec.domain, memtable_capacity, merge_policy
        )
        self._ingested = False
        self._truth: FrequencyIndex | None = None

    def add_config(self, synopsis_type: SynopsisType, budget: int) -> SynopsisSetup:
        """Register a synopsis configuration before ingestion."""
        if self._ingested:
            raise ConfigurationError("cannot add configurations after ingest")
        setup = SynopsisSetup(synopsis_type, budget)
        self._multi.add_config(setup)
        return setup

    def ingest(self) -> None:
        """Run the staged insert/update/delete workload."""
        if self._ingested:
            raise ConfigurationError("already ingested")
        self._ingested = True
        rng = np.random.default_rng(self._seed)
        dataset = self._multi.dataset
        generator = TweetGenerator(self.distribution, seed=self._seed)
        documents = list(generator.generate())
        total = len(documents)
        live: dict[int, int] = {}

        # Stage the inserts, force-flushing in between so that the
        # following updates/deletes reference persisted records.
        stage_size = -(-total // self.stages)
        for start in range(0, total, stage_size):
            for document in documents[start : start + stage_size]:
                dataset.insert(document)
                live[document["id"]] = document[VALUE_FIELD]
            dataset.flush()

        num_updates = int(self.update_ratio * total)
        num_deletes = int(self.delete_ratio * total)
        pks = np.asarray(sorted(live))
        # Deletes pick distinct victims; updates may repeat PKs but each
        # record is updated once at most (paper's assumption).
        victims = rng.choice(pks, size=num_deletes, replace=False)
        updatable = np.setdiff1d(pks, victims, assume_unique=False)
        updated = rng.choice(
            updatable, size=min(num_updates, len(updatable)), replace=False
        )

        values = np.asarray(self.distribution.values)
        weights = np.asarray(self.distribution.frequencies, dtype=np.float64)
        weights /= weights.sum()
        new_values = rng.choice(values, size=len(updated), p=weights)
        for pk, value in zip(updated, new_values):
            document = dict(dataset.get(int(pk)))
            document[VALUE_FIELD] = int(value)
            assert dataset.update(document)
            live[int(pk)] = int(value)
        dataset.flush()
        for pk in victims:
            assert dataset.delete(int(pk))
            del live[int(pk)]
        dataset.flush()
        self._truth = FrequencyIndex(live.values())

    @property
    def truth(self) -> FrequencyIndex:
        """Exact post-workload frequency index of live values."""
        if self._truth is None:
            raise ConfigurationError("call ingest() first")
        return self._truth

    @property
    def total_records(self) -> int:
        """Records inserted (the paper's normalisation constant ``N``)."""
        return self.distribution.total_records

    def antimatter_records_on_disk(self) -> int:
        """Anti-matter entries across the value index's components."""
        tree = self._multi.dataset.secondary_tree("value_idx")
        return sum(c.antimatter_count for c in tree.components)

    def evaluate(
        self, setup: SynopsisSetup, queries: Iterable[RangeQuery]
    ) -> ErrorMetrics:
        """Normalised-L1 accuracy against the post-workload truth."""
        truth = self.truth
        accumulator = ErrorAccumulator(self.total_records)
        slot = self._multi.slot(setup)
        for query in queries:
            estimate = slot.estimator.estimate(
                self._multi.index_name, query.lo, query.hi
            )
            accumulator.add(truth.count(query.lo, query.hi), estimate)
        return accumulator.metrics()

    def evaluate_ignoring_antimatter(
        self, setup: SynopsisSetup, queries: Iterable[RangeQuery]
    ) -> ErrorMetrics:
        """Ablation: estimates summing only the regular synopses.

        Drops the Section 3.3 anti-matter subtraction -- what a naive
        per-component scheme without the "anti"-twin would report.  The
        error this produces under churn is exactly what the twin
        synopsis buys.
        """
        truth = self.truth
        accumulator = ErrorAccumulator(self.total_records)
        slot = self._multi.slot(setup)
        entries = slot.catalog.entries_for(self._multi.index_name)
        for query in queries:
            estimate = sum(
                entry.synopsis.estimate(query.lo, query.hi) for entry in entries
            )
            accumulator.add(truth.count(query.lo, query.hi), estimate)
        return accumulator.metrics()
