"""The statistics collector: the LSM event observer.

This is the heart of the paper's framework.  The collector subscribes
to an LSM event bus; every time a disk component is written (flush,
merge or bulkload) it taps the key-sorted bulkload stream and feeds two
streaming builders -- one for matter records, one for anti-matter
(Section 3.3's synopsis-agnostic "anti"-twin).  When the component is
sealed, both synopses are handed to a :class:`StatisticsSink` --
a local catalog in single-node setups, a network shipper in the
cluster simulation.

Merges publish a fresh synopsis built from the merge cursor's stream
and retract the inputs' entries: "when computing local statistics
during an LSM-merge we choose to create new synopses from scratch
directly on the newly merged component, discarding earlier statistics
altogether" (Section 3.5).

Two kinds of registration:

* :meth:`StatisticsCollector.register_index` -- statistics on the
  index's own key (PK or SK), the paper's shipped scope; the sorted
  order comes for free from the index.
* :meth:`StatisticsCollector.register_attribute` -- statistics on an
  arbitrary record attribute observed through an index's stream, in
  which the attribute's values arrive *unsorted*.  Only order-
  insensitive synopsis families (GK sketches, reservoir samples) can
  serve this, which is exactly the paper's Section 5 future-work
  scenario ("relax the condition of relying on a sorted order ...
  methods based on sketches seem to be a promising data summary").
  Known limitation, inherited from the mechanism itself: primary-index
  tombstones carry no attribute values, so attribute-level anti-matter
  cannot be summarised -- deletes are invisible to attribute statistics
  until a merge reconciles them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence

from repro.core.config import StatisticsConfig
from repro.errors import ConfigurationError
from repro.lsm.columnar import ColumnarChunk, split_matter_anti
from repro.lsm.component import DiskComponent
from repro.lsm.events import ComponentWriteContext, RecordSink
from repro.lsm.record import Record
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.synopses.factory import create_builder
from repro.synopses.hll import HyperLogLogSynopsis, ndv_statistics_key
from repro.types import Domain

__all__ = [
    "StatisticsSink",
    "StatisticsCollector",
    "CollectorMetrics",
    "attribute_statistics_key",
    "ndv_statistics_key",
]


@dataclass
class CollectorMetrics:
    """Observability counters of one collector.

    The paper's overhead argument is made in wall-clock and I/O terms;
    these counters expose the collector's own share of the work so
    operators (and the fig2 harness) can attribute it precisely.
    """

    component_writes: int = 0
    synopses_published: int = 0
    matter_records_observed: int = 0
    antimatter_records_observed: int = 0
    values_skipped: int = 0
    finalize_seconds: float = 0.0
    sketch_register_bytes: int = 0
    sketch_wire_bytes: int = 0
    writes_by_event: dict[str, int] = field(default_factory=dict)

    def record_event(self, event_name: str) -> None:
        """Count one component write by its lifecycle event."""
        self.component_writes += 1
        self.writes_by_event[event_name] = (
            self.writes_by_event.get(event_name, 0) + 1
        )


def attribute_statistics_key(index_name: str, attribute: str) -> str:
    """Catalog key for attribute-level statistics tapped off an index."""
    return f"{index_name}#{attribute}"


class StatisticsSink(Protocol):
    """Destination for freshly built per-component synopses."""

    def publish(
        self,
        index_name: str,
        component_uid: int,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
    ) -> None:
        """Deliver the statistics of a newly written component."""

    def retract(self, index_name: str, component_uids: list[int]) -> None:
        """Drop the statistics of components superseded by a merge."""


@dataclass(frozen=True)
class _Instruments:
    """Registry instruments bound once per collector.

    The per-record tap (:meth:`_RegistrationSink.accept`) runs inside
    the ingestion hot path, so it only touches pre-bound counters --
    with the no-op registry those are shared do-nothing objects.
    """

    component_writes: Counter
    synopses_published: Counter
    synopses_rederived: Counter
    matter_records: Counter
    antimatter_records: Counter
    values_skipped: Counter
    build_seconds: Histogram
    sketch_register_bytes: Counter
    sketch_wire_bytes: Counter
    sketch_compression_ratio: Gauge

    @classmethod
    def bind(cls, registry: MetricsRegistry) -> "_Instruments":
        return cls(
            component_writes=registry.counter("collector.component_writes"),
            synopses_published=registry.counter("collector.synopses.published"),
            synopses_rederived=registry.counter("collector.synopses.rederived"),
            matter_records=registry.counter("collector.records.matter"),
            antimatter_records=registry.counter("collector.records.antimatter"),
            values_skipped=registry.counter("collector.values.skipped"),
            build_seconds=registry.histogram("synopsis.build.seconds"),
            sketch_register_bytes=registry.counter("sketch.registers.bytes"),
            sketch_wire_bytes=registry.counter("sketch.wire.bytes"),
            sketch_compression_ratio=registry.gauge("sketch.compression.ratio"),
        )


@dataclass(frozen=True)
class _Registration:
    """One statistics target riding on an index's component stream.

    ``synopsis_type``/``budget`` of ``None`` mean "use the configured
    family"; the NDV sketch lane pins them to ``HLL_SKETCH`` and its
    register count so it can ride *any* primary family.
    """

    statistics_key: str
    index_name: str
    domain: Domain
    value_extractor: Callable[[Record], Any] | None  # None -> index key
    synopsis_type: SynopsisType | None = None
    budget: int | None = None


def _note_sketch_shipment(
    metrics: CollectorMetrics,
    instruments: _Instruments,
    synopsis: Synopsis,
    anti_synopsis: Synopsis,
) -> None:
    """Account a published HLL twin's dense vs wire (HBS) bytes."""
    if not isinstance(synopsis, HyperLogLogSynopsis):
        return
    assert isinstance(anti_synopsis, HyperLogLogSynopsis)
    dense = synopsis.register_bytes() + anti_synopsis.register_bytes()
    wire = synopsis.encoded_bytes() + anti_synopsis.encoded_bytes()
    metrics.sketch_register_bytes += dense
    metrics.sketch_wire_bytes += wire
    instruments.sketch_register_bytes.inc(dense)
    instruments.sketch_wire_bytes.inc(wire)
    instruments.sketch_compression_ratio.set(
        metrics.sketch_register_bytes / metrics.sketch_wire_bytes
    )


class _RegistrationSink:
    """Per-registration tap feeding the matter/anti-matter builders."""

    def __init__(
        self,
        registration: _Registration,
        context: ComponentWriteContext,
        builder: SynopsisBuilder,
        anti_builder: SynopsisBuilder,
        sink: StatisticsSink,
        metrics: CollectorMetrics,
        instruments: _Instruments,
    ) -> None:
        self._registration = registration
        self._extractor = (
            registration.value_extractor
            if registration.value_extractor is not None
            else context.key_extractor
        )
        self._builder = builder
        self._anti_builder = anti_builder
        self._sink = sink
        self._metrics = metrics
        self._instruments = instruments

    def accept(self, record: Record) -> None:
        value = self._extractor(record)
        if value is None:
            # Attribute extractors return None for tombstones (no
            # payload) or records missing the attribute.
            self._metrics.values_skipped += 1
            self._instruments.values_skipped.inc()
            return
        if record.antimatter:
            self._metrics.antimatter_records_observed += 1
            self._instruments.antimatter_records.inc()
            self._anti_builder.add(value)
        else:
            self._metrics.matter_records_observed += 1
            self._instruments.matter_records.inc()
            self._builder.add(value)

    def accept_many(
        self, records: "Sequence[Record] | ColumnarChunk"
    ) -> None:
        """Observe one slice of the bulkload stream (batched hot path).

        Splits the chunk into matter/anti-matter value lists in one
        pass and feeds each builder's ``add_many`` tight loop; produces
        bit-identical synopses to per-record :meth:`accept` calls.

        Columnar chunks split through their columns (and, for raw-key
        registrations over pure-matter integer chunks, hand the typed
        key buffer straight to ``add_many`` with no copy at all);
        extractors the columnar registry cannot map fall back to the
        chunk's memoized ``records()`` materialisation.
        """
        extractor = self._extractor
        if isinstance(records, ColumnarChunk):
            split = split_matter_anti(records, extractor)
            if split is not None:
                matter_seq, anti_seq, skipped = split
                self._observe_split(matter_seq, anti_seq, skipped)
                return
            records = records.records()
        matter_values: list[Any] = []
        anti_values: list[Any] = []
        skipped = 0
        for record in records:
            value = extractor(record)
            if value is None:
                skipped += 1
            elif record.antimatter:
                anti_values.append(value)
            else:
                matter_values.append(value)
        self._observe_split(matter_values, anti_values, skipped)

    def _observe_split(
        self,
        matter_values: Sequence[Any],
        anti_values: Sequence[Any],
        skipped: int,
    ) -> None:
        metrics = self._metrics
        instruments = self._instruments
        if skipped:
            metrics.values_skipped += skipped
            instruments.values_skipped.inc(skipped)
        if anti_values:
            metrics.antimatter_records_observed += len(anti_values)
            instruments.antimatter_records.inc(len(anti_values))
            self._anti_builder.add_many(anti_values)
        if matter_values:
            metrics.matter_records_observed += len(matter_values)
            instruments.matter_records.inc(len(matter_values))
            self._builder.add_many(matter_values)

    def finish(self, component: DiskComponent) -> None:
        started = time.perf_counter()
        synopsis = self._builder.build()
        anti_synopsis = self._anti_builder.build()
        elapsed = time.perf_counter() - started
        self._metrics.finalize_seconds += elapsed
        self._instruments.build_seconds.observe(elapsed)
        _note_sketch_shipment(
            self._metrics, self._instruments, synopsis, anti_synopsis
        )
        self._sink.publish(
            self._registration.statistics_key,
            component.uid,
            synopsis,
            anti_synopsis,
        )
        self._metrics.synopses_published += 2
        self._instruments.synopses_published.inc(2)


class _CompositeSink:
    """Fans one component write out to several registration sinks."""

    def __init__(self, sinks: list[_RegistrationSink]) -> None:
        self._sinks = sinks

    def accept(self, record: Record) -> None:
        for sink in self._sinks:
            sink.accept(record)

    def accept_many(
        self, records: "Sequence[Record] | ColumnarChunk"
    ) -> None:
        for sink in self._sinks:
            sink.accept_many(records)

    def finish(self, component: DiskComponent) -> None:
        for sink in self._sinks:
            sink.finish(component)


class StatisticsCollector:
    """LSM event observer building synopses for registered targets."""

    def __init__(
        self,
        config: StatisticsConfig,
        sink: StatisticsSink,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not config.enabled:
            raise ConfigurationError(
                "StatisticsCollector requires an enabled configuration; "
                "for the NoStats baseline simply do not attach a collector"
            )
        self.config = config
        self.sink = sink
        self.metrics = CollectorMetrics()
        self._instruments = _Instruments.bind(
            registry if registry is not None else get_registry()
        )
        # index name -> registrations tapping that index's stream
        self._registrations: dict[str, list[_Registration]] = {}

    def register_index(self, index_name: str, domain: Domain) -> None:
        """Enable statistics on one LSM index's key over ``domain``."""
        self._register(
            _Registration(index_name, index_name, domain, None)
        )

    def register_attribute(
        self,
        index_name: str,
        attribute: str,
        domain: Domain,
        value_extractor: Callable[[Record], Any] | None = None,
    ) -> str:
        """Enable statistics on an arbitrary (unsorted) record attribute.

        The attribute's values are read off ``index_name``'s component
        stream (normally the primary index, whose records carry the full
        payload).  Requires an order-insensitive synopsis family; the
        default extractor reads ``record.value[attribute]``.

        Returns the statistics key to query the estimator with.
        """
        synopsis_type = self.config.synopsis_type
        assert synopsis_type is not None
        if synopsis_type.requires_sorted_input:
            raise ConfigurationError(
                f"synopsis type {synopsis_type.value} requires sorted input "
                "and cannot summarise a non-indexed attribute; use a "
                "gk_sketch or reservoir_sample configuration"
            )
        if value_extractor is None:
            def value_extractor(record: Record) -> Any:
                payload = record.value
                if not isinstance(payload, dict):
                    return None
                return payload.get(attribute)

            # Tag the closure so the columnar tap can read the payload
            # column directly instead of materialising records
            # (ColumnarChunk.payload_column has identical None rules).
            value_extractor.payload_field = attribute  # type: ignore[attr-defined]

        key = attribute_statistics_key(index_name, attribute)
        self._register(_Registration(key, index_name, domain, value_extractor))
        return key

    def _register(self, registration: _Registration) -> None:
        bucket = self._registrations.setdefault(registration.index_name, [])
        bucket[:] = [
            existing
            for existing in bucket
            if existing.statistics_key != registration.statistics_key
        ]
        bucket.append(registration)
        # The NDV lane: every configured-family target gets an HLL twin
        # registration under its ``#ndv`` key, sharing the extractor
        # and the component stream (docs/SKETCHES.md lifecycle).
        if self.config.ndv_enabled and registration.synopsis_type is None:
            self._register(
                _Registration(
                    ndv_statistics_key(registration.statistics_key),
                    registration.index_name,
                    registration.domain,
                    registration.value_extractor,
                    synopsis_type=SynopsisType.HLL_SKETCH,
                    budget=1 << self.config.ndv_precision,
                )
            )

    def _builder_pair(
        self, registration: _Registration, expected_records: int
    ) -> tuple[SynopsisBuilder, SynopsisBuilder]:
        """The matter/anti builder twins for one registration."""
        synopsis_type = (
            registration.synopsis_type
            if registration.synopsis_type is not None
            else self.config.synopsis_type
        )
        assert synopsis_type is not None
        budget = (
            registration.budget
            if registration.budget is not None
            else self.config.budget
        )
        return (
            create_builder(
                synopsis_type, registration.domain, budget, expected_records
            ),
            create_builder(
                synopsis_type, registration.domain, budget, expected_records
            ),
        )

    def registered_keys(self) -> list[str]:
        """All statistics keys with collection enabled."""
        return sorted(
            registration.statistics_key
            for bucket in self._registrations.values()
            for registration in bucket
        )

    # Backwards-compatible alias: index registrations keyed by name.
    def registered_indexes(self) -> list[str]:
        """All statistics keys (index names and attribute keys)."""
        return self.registered_keys()

    # -- LSMEventObserver ----------------------------------------------------

    def begin_component_write(
        self, context: ComponentWriteContext
    ) -> RecordSink | None:
        registrations = self._registrations.get(context.index_name)
        if not registrations:
            return None
        self.metrics.record_event(context.event_type.value)
        self._instruments.component_writes.inc()
        sinks = [
            _RegistrationSink(
                registration,
                context,
                *self._builder_pair(registration, context.expected_records),
                self.sink,
                self.metrics,
                self._instruments,
            )
            for registration in registrations
        ]
        if len(sinks) == 1:
            return sinks[0]
        return _CompositeSink(sinks)

    def component_replaced(
        self,
        index_name: str,
        old_components: tuple[DiskComponent, ...],
        new_component: DiskComponent,
    ) -> None:
        uids = [c.uid for c in old_components]
        for registration in self._registrations.get(index_name, ()):
            self.sink.retract(registration.statistics_key, uids)

    def components_recovered(
        self,
        index_name: str,
        components: Sequence[DiskComponent],
        key_extractor: Callable[[Record], Any],
    ) -> None:
        """Re-derive and republish synopses for recovered components.

        Crash recovery reinstates disk components from the manifest
        without replaying the component-write stream, so the synopses
        their pre-crash incarnations published must be rebuilt by
        scanning the components directly.  Each component is summarised
        with the same builder geometry as the original write (the
        descriptor persists ``expected_records``), so deterministic
        synopsis families reproduce the pre-crash payloads exactly;
        randomised families (reservoir samples) are only statistically
        equivalent.
        """
        registrations = self._registrations.get(index_name)
        if not registrations:
            return
        for component in components:
            for registration in registrations:
                extractor = (
                    registration.value_extractor
                    if registration.value_extractor is not None
                    else key_extractor
                )
                builder, anti_builder = self._builder_pair(
                    registration, component.expected_records
                )
                matter_values: list[Any] = []
                anti_values: list[Any] = []
                skipped = 0
                for record in component.scan():
                    value = extractor(record)
                    if value is None:
                        skipped += 1
                    elif record.antimatter:
                        anti_values.append(value)
                    else:
                        matter_values.append(value)
                if skipped:
                    self.metrics.values_skipped += skipped
                    self._instruments.values_skipped.inc(skipped)
                if anti_values:
                    self._anti_add(anti_builder, anti_values)
                if matter_values:
                    self._matter_add(builder, matter_values)
                started = time.perf_counter()
                synopsis = builder.build()
                anti_synopsis = anti_builder.build()
                elapsed = time.perf_counter() - started
                self.metrics.finalize_seconds += elapsed
                self._instruments.build_seconds.observe(elapsed)
                _note_sketch_shipment(
                    self.metrics, self._instruments, synopsis, anti_synopsis
                )
                self.sink.publish(
                    registration.statistics_key,
                    component.uid,
                    synopsis,
                    anti_synopsis,
                )
                self.metrics.synopses_published += 2
                self._instruments.synopses_published.inc(2)
                self._instruments.synopses_rederived.inc(2)

    def _matter_add(self, builder: SynopsisBuilder, values: list[Any]) -> None:
        self.metrics.matter_records_observed += len(values)
        self._instruments.matter_records.inc(len(values))
        builder.add_many(values)

    def _anti_add(self, builder: SynopsisBuilder, values: list[Any]) -> None:
        self.metrics.antimatter_records_observed += len(values)
        self._instruments.antimatter_records.inc(len(values))
        builder.add_many(values)
