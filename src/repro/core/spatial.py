"""Statistics on composite-key indexes (2-D; the paper's Section 5).

Wires the multidimensional synopses of :mod:`repro.synopses.multidim`
into the same event-driven framework as the 1-D statistics: a
:class:`SpatialStatisticsCollector` taps the component streams of
composite-key indexes (whose bulkload order is lexicographic in
``(SK1, SK2)`` -- exactly what the 2-D builders require), builds a
regular and an anti-matter synopsis per component, and a
:class:`SpatialCardinalityEstimator` combines the catalogued entries
into rectangle-cardinality estimates with the same
regular-minus-anti-matter rule as the paper's Algorithm 2.

The catalog is shared infrastructure: :class:`~repro.core.catalog.
StatisticsCatalog` only needs ``payload_bytes``/``estimate`` duck
typing from what it stores, so 2-D entries live in their own catalog
instance with identical versioning semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.catalog import StatisticsCatalog
from repro.core.collector import StatisticsSink
from repro.errors import ConfigurationError
from repro.lsm.component import DiskComponent
from repro.lsm.dataset import Dataset
from repro.lsm.events import ComponentWriteContext, RecordSink
from repro.lsm.record import Record
from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.synopses.multidim.factory2d import create_builder_2d
from repro.types import Domain

__all__ = [
    "SpatialStatisticsConfig",
    "SpatialStatisticsCollector",
    "SpatialEstimateResult",
    "SpatialCardinalityEstimator",
    "SpatialStatisticsManager",
]


@dataclass(frozen=True)
class SpatialStatisticsConfig:
    """Configuration of the 2-D statistics framework."""

    synopsis_type: Synopsis2DType = Synopsis2DType.GRID
    budget: int = 1024

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {self.budget}")


class _SpatialComponentSink:
    """Per-component-write tap feeding the 2-D builders."""

    def __init__(
        self,
        context: ComponentWriteContext,
        builder: Synopsis2DBuilder,
        anti_builder: Synopsis2DBuilder,
        sink: StatisticsSink,
    ) -> None:
        self._context = context
        self._builder = builder
        self._anti_builder = anti_builder
        self._sink = sink

    def accept(self, record: Record) -> None:
        x, y = self._context.key_extractor(record)
        if record.antimatter:
            self._anti_builder.add(x, y)
        else:
            self._builder.add(x, y)

    def finish(self, component: DiskComponent) -> None:
        self._sink.publish(
            self._context.index_name,
            component.uid,
            self._builder.build(),  # type: ignore[arg-type]
            self._anti_builder.build(),  # type: ignore[arg-type]
        )


class SpatialStatisticsCollector:
    """LSM event observer for composite-key indexes."""

    def __init__(
        self, config: SpatialStatisticsConfig, sink: StatisticsSink
    ) -> None:
        self.config = config
        self.sink = sink
        self._domains: dict[str, tuple[Domain, Domain]] = {}

    def register_index(
        self, index_name: str, domains: tuple[Domain, Domain]
    ) -> None:
        """Enable 2-D statistics for one composite-key index."""
        self._domains[index_name] = domains

    # -- LSMEventObserver -----------------------------------------------------

    def begin_component_write(
        self, context: ComponentWriteContext
    ) -> RecordSink | None:
        domains = self._domains.get(context.index_name)
        if domains is None:
            return None
        return _SpatialComponentSink(
            context,
            create_builder_2d(self.config.synopsis_type, domains, self.config.budget),
            create_builder_2d(self.config.synopsis_type, domains, self.config.budget),
            self.sink,
        )

    def component_replaced(
        self,
        index_name: str,
        old_components: tuple[DiskComponent, ...],
        new_component: DiskComponent,
    ) -> None:
        if index_name not in self._domains:
            return
        self.sink.retract(index_name, [c.uid for c in old_components])


@dataclass(frozen=True)
class SpatialEstimateResult:
    """A rectangle estimate plus diagnostics."""

    estimate: float
    synopses_consulted: int
    overhead_seconds: float


class SpatialCardinalityEstimator:
    """Rectangle-cardinality estimation over catalogued 2-D synopses."""

    def __init__(self, catalog: StatisticsCatalog) -> None:
        self.catalog = catalog

    def estimate(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> float:
        """Estimated records inside the inclusive rectangle."""
        return self.estimate_detailed(index_name, lo_x, hi_x, lo_y, hi_y).estimate

    def estimate_detailed(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> SpatialEstimateResult:
        """Estimate with diagnostics (per-component combination)."""
        started = time.perf_counter()
        entries = self.catalog.entries_for(index_name)
        total = 0.0
        for entry in entries:
            synopsis = entry.synopsis
            anti = entry.anti_synopsis
            assert isinstance(synopsis, Synopsis2D) and isinstance(anti, Synopsis2D)
            total += synopsis.estimate(lo_x, hi_x, lo_y, hi_y)
            total -= anti.estimate(lo_x, hi_x, lo_y, hi_y)
        return SpatialEstimateResult(
            max(total, 0.0), len(entries), time.perf_counter() - started
        )


class _CatalogSink:
    """Statistics sink writing into a dedicated 2-D catalog."""

    def __init__(self, catalog: StatisticsCatalog) -> None:
        self.catalog = catalog

    def publish(self, index_name, component_uid, synopsis, anti_synopsis):
        self.catalog.put(
            index_name, "local", 0, component_uid, synopsis, anti_synopsis
        )

    def retract(self, index_name, component_uids):
        self.catalog.retract(index_name, "local", 0, component_uids)


class SpatialStatisticsManager:
    """Catalog + collector + estimator for composite-key statistics."""

    def __init__(self, config: SpatialStatisticsConfig) -> None:
        self.config = config
        self.catalog = StatisticsCatalog()
        self.collector = SpatialStatisticsCollector(
            config, _CatalogSink(self.catalog)
        )
        self.estimator = SpatialCardinalityEstimator(self.catalog)

    def attach(self, dataset: Dataset) -> None:
        """Enable 2-D statistics for every composite-key and R-tree
        index of a dataset (both stream lexicographically ordered
        (x, y) pairs)."""
        for spec in dataset.composite_indexes.values():
            self.register(dataset, spec)
        for spatial_spec in dataset.spatial_indexes.values():
            self.register(dataset, spatial_spec)
        dataset.event_bus.subscribe(self.collector)

    def register(self, dataset: Dataset, spec) -> None:
        """Enable 2-D statistics for one composite or spatial index."""
        tree = dataset.secondary_tree(spec.name)
        self.collector.register_index(tree.name, spec.domains)

    def estimate(
        self,
        dataset: Dataset,
        index_name: str,
        lo_x: int,
        hi_x: int,
        lo_y: int,
        hi_y: int,
    ) -> float:
        """Rectangle-cardinality estimate on a composite index."""
        full_name = dataset.secondary_tree(index_name).name
        return self.estimator.estimate(full_name, lo_x, hi_x, lo_y, hi_y)
