"""Range-cardinality estimation over catalogued synopses (Algorithm 2).

For a range query on an indexed attribute the total estimate combines
every catalogued per-component synopsis: regular estimates add,
anti-matter estimates subtract (Section 3.3).  For mergeable synopsis
types the estimator opportunistically folds the per-component synopses
into one merged pair, caches it on the cluster-controller side, and
answers subsequent queries from the cache until new statistics arrive
(Algorithm 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.errors import MergeabilityError, SynopsisError
from repro.obs.registry import MetricsRegistry, get_registry, sanitize_segment
from repro.synopses.base import Synopsis
from repro.synopses.hll import HyperLogLogSynopsis, ndv_statistics_key

__all__ = ["EstimateResult", "NDVEstimate", "CardinalityEstimator"]


@dataclass(frozen=True)
class EstimateResult:
    """An estimate plus the bookkeeping the evaluation reports.

    Attributes:
        estimate: The (non-negative) cardinality estimate.
        synopses_consulted: Per-component synopses read (0 on a cache hit).
        from_cache: Whether the merged-synopsis fast path answered.
        overhead_seconds: Wall-clock time spent inside the estimator --
            the "query time overhead" of Figures 6b and 8.
        degraded: Whether this answer came from the degraded path (a
            possibly-stale cached synopsis served under overload);
            always ``False`` on the primary estimate path.
    """

    estimate: float
    synopses_consulted: int
    from_cache: bool
    overhead_seconds: float
    degraded: bool = False


@dataclass(frozen=True)
class NDVEstimate:
    """A distinct-value estimate with its anti-matter interval.

    Deletes make the true NDV uncertain: a key counted by the matter
    sketch may have been fully erased by tombstones, but register
    unions cannot subtract.  The framework therefore reports the
    interval ``[max(0, matter - anti), matter]`` and takes the
    conservative lower end as the point estimate (docs/SKETCHES.md).

    Attributes:
        ndv: The point estimate (the interval's conservative low end).
        lower: Interval low end, ``max(0, matter_ndv - anti_ndv)``.
        upper: Interval high end, ``matter_ndv`` (no key can be
            distinct in the dataset without appearing as matter).
        matter_ndv: The unioned matter sketch's cardinality.
        anti_ndv: The unioned anti-matter sketch's cardinality.
        synopses_consulted: Per-component sketches read (0 on a cache
            hit).
        from_cache: Whether the cached unioned pair answered.
        overhead_seconds: Wall-clock time inside the estimator.
    """

    ndv: float
    lower: float
    upper: float
    matter_ndv: float
    anti_ndv: float
    synopses_consulted: int
    from_cache: bool
    overhead_seconds: float


class CardinalityEstimator:
    """Implements the paper's Algorithm 2."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        cache: MergedSynopsisCache | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.catalog = catalog
        self.cache = cache
        self._obs = registry if registry is not None else get_registry()
        self._m_estimates = self._obs.counter("estimator.estimate.count")
        self._m_cache_hits = self._obs.counter("estimator.cache_hit.count")
        self._m_lazy_merges = self._obs.counter("estimator.lazy_merge.count")
        self._h_estimate = self._obs.histogram("estimator.estimate.seconds")
        self._h_lazy_merge = self._obs.histogram("estimator.lazy_merge.seconds")
        self._m_unions = self._obs.counter("sketch.union.count")

    def _observe(self, elapsed: float, synopsis: Synopsis | None) -> None:
        """Record one estimate's latency, overall and per synopsis type."""
        self._m_estimates.inc()
        self._h_estimate.observe(elapsed)
        if synopsis is not None:
            label = sanitize_segment(synopsis.synopsis_type.value)
            self._obs.histogram(
                f"estimator.estimate.seconds.{label}"
            ).observe(elapsed)

    def estimate(self, index_name: str, lo: int, hi: int) -> float:
        """The cardinality estimate for ``lo <= key <= hi``."""
        return self.estimate_detailed(index_name, lo, hi).estimate

    def estimate_detailed(self, index_name: str, lo: int, hi: int) -> EstimateResult:
        """Estimate with overhead/caching diagnostics."""
        started = time.perf_counter()
        version = self.catalog.version_for(index_name)

        # Fast path: a fresh merged synopsis answers directly.
        if self.cache is not None:
            cached = self.cache.get(index_name, version)
            if cached is not None:
                estimate = max(
                    cached.synopsis.estimate(lo, hi)
                    - cached.anti_synopsis.estimate(lo, hi),
                    0.0,
                )
                elapsed = time.perf_counter() - started
                self._m_cache_hits.inc()
                self._observe(elapsed, cached.synopsis)
                return EstimateResult(estimate, 0, True, elapsed)

        # Slow path: combine every per-component synopsis, merging along
        # the way when the type allows it.
        entries = self.catalog.entries_for(index_name)
        total = 0.0
        merged: Synopsis | None = None
        merged_anti: Synopsis | None = None
        # Merging requires one homogeneous mergeable family; a catalog
        # can transiently hold mixed types/parameters after a
        # reconfiguration, in which case only the summation path runs.
        mergeable = bool(entries) and all(
            e.synopsis.mergeable
            and e.synopsis.synopsis_type is entries[0].synopsis.synopsis_type
            for e in entries
        )
        merge_seconds = 0.0
        merges_ran = 0
        for entry in entries:
            contribution = entry.synopsis.estimate(lo, hi)
            contribution -= entry.anti_synopsis.estimate(lo, hi)
            total += contribution
            if mergeable and self.cache is not None:
                if merged is None:
                    merged, merged_anti = entry.synopsis, entry.anti_synopsis
                else:
                    assert merged_anti is not None
                    merge_started = time.perf_counter()
                    try:
                        merged = merged.merge_with(entry.synopsis)
                        merged_anti = merged_anti.merge_with(entry.anti_synopsis)
                        merges_ran += 1
                    except MergeabilityError:
                        # Incompatible parameters (domain/budget drift):
                        # give up on caching, keep summing.
                        mergeable = False
                        merged = merged_anti = None
                    finally:
                        merge_seconds += time.perf_counter() - merge_started

        # Cache (and account for) a lazy merge only when one actually
        # ran.  With a single catalog entry nothing was merged: caching
        # it would alias the catalog-owned synopsis objects into the
        # cache and inflate the lazy-merge metrics with zero-time
        # observations, while the summation path is already as cheap as
        # a cache hit.
        if merges_ran and merged is not None and merged_anti is not None:
            assert self.cache is not None
            self.cache.put(index_name, merged, merged_anti, version)
            self._m_lazy_merges.inc()
            self._h_lazy_merge.observe(merge_seconds)

        elapsed = time.perf_counter() - started
        self._observe(elapsed, entries[0].synopsis if entries else None)
        return EstimateResult(
            max(total, 0.0),
            len(entries),
            False,
            elapsed,
        )

    def estimate_ndv(self, index_name: str) -> float:
        """Point NDV estimate for ``index_name``'s sketch lane."""
        return self.estimate_ndv_detailed(index_name).ndv

    def estimate_ndv_detailed(self, index_name: str) -> NDVEstimate:
        """Distinct-value estimate from the ``#ndv`` sketch lane.

        Unions every catalogued per-component HLL pair register-wise
        (exact -- no accuracy is lost relative to one sketch built over
        the union of the streams), caches the unioned pair under the
        sketch lane's own key, and reports the anti-matter interval.
        ``index_name`` is the *target* key; the sketch lane key is
        derived from it, so callers query the same name they would pass
        to :meth:`estimate`.
        """
        started = time.perf_counter()
        key = ndv_statistics_key(index_name)
        version = self.catalog.version_for(key)

        if self.cache is not None:
            cached = self.cache.get(key, version)
            if cached is not None:
                result = self._ndv_from_pair(
                    cached.synopsis, cached.anti_synopsis, 0, True, started
                )
                self._m_cache_hits.inc()
                self._observe(result.overhead_seconds, cached.synopsis)
                return result

        entries = self.catalog.entries_for(key)
        if not entries:
            raise SynopsisError(
                f"no NDV sketches catalogued under {key!r}; is the "
                "collector configured with ndv_enabled?"
            )
        merged = entries[0].synopsis
        merged_anti = entries[0].anti_synopsis
        merge_seconds = 0.0
        merges_ran = 0
        for entry in entries[1:]:
            merge_started = time.perf_counter()
            merged = merged.merge_with(entry.synopsis)
            merged_anti = merged_anti.merge_with(entry.anti_synopsis)
            merge_seconds += time.perf_counter() - merge_started
            merges_ran += 1
            self._m_unions.inc(2)  # one matter + one anti register union
        if merges_ran and self.cache is not None:
            self.cache.put(key, merged, merged_anti, version)
            self._m_lazy_merges.inc()
            self._h_lazy_merge.observe(merge_seconds)

        result = self._ndv_from_pair(
            merged, merged_anti, len(entries), False, started
        )
        self._observe(result.overhead_seconds, merged)
        return result

    def _ndv_from_pair(
        self,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
        consulted: int,
        from_cache: bool,
        started: float,
    ) -> NDVEstimate:
        if not isinstance(synopsis, HyperLogLogSynopsis) or not isinstance(
            anti_synopsis, HyperLogLogSynopsis
        ):
            raise SynopsisError(
                "NDV estimation requires hll_sketch synopses, found "
                f"{synopsis.synopsis_type.value}"
            )
        matter_ndv = synopsis.cardinality()
        anti_ndv = anti_synopsis.cardinality()
        lower = max(0.0, matter_ndv - anti_ndv)
        return NDVEstimate(
            ndv=lower,
            lower=lower,
            upper=matter_ndv,
            matter_ndv=matter_ndv,
            anti_ndv=anti_ndv,
            synopses_consulted=consulted,
            from_cache=from_cache,
            overhead_seconds=time.perf_counter() - started,
        )
