"""Range-cardinality estimation over catalogued synopses (Algorithm 2).

For a range query on an indexed attribute the total estimate combines
every catalogued per-component synopsis: regular estimates add,
anti-matter estimates subtract (Section 3.3).  For mergeable synopsis
types the estimator opportunistically folds the per-component synopses
into one merged pair, caches it on the cluster-controller side, and
answers subsequent queries from the cache until new statistics arrive
(Algorithm 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.errors import MergeabilityError
from repro.obs.registry import MetricsRegistry, get_registry, sanitize_segment
from repro.synopses.base import Synopsis

__all__ = ["EstimateResult", "CardinalityEstimator"]


@dataclass(frozen=True)
class EstimateResult:
    """An estimate plus the bookkeeping the evaluation reports.

    Attributes:
        estimate: The (non-negative) cardinality estimate.
        synopses_consulted: Per-component synopses read (0 on a cache hit).
        from_cache: Whether the merged-synopsis fast path answered.
        overhead_seconds: Wall-clock time spent inside the estimator --
            the "query time overhead" of Figures 6b and 8.
        degraded: Whether this answer came from the degraded path (a
            possibly-stale cached synopsis served under overload);
            always ``False`` on the primary estimate path.
    """

    estimate: float
    synopses_consulted: int
    from_cache: bool
    overhead_seconds: float
    degraded: bool = False


class CardinalityEstimator:
    """Implements the paper's Algorithm 2."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        cache: MergedSynopsisCache | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.catalog = catalog
        self.cache = cache
        self._obs = registry if registry is not None else get_registry()
        self._m_estimates = self._obs.counter("estimator.estimate.count")
        self._m_cache_hits = self._obs.counter("estimator.cache_hit.count")
        self._m_lazy_merges = self._obs.counter("estimator.lazy_merge.count")
        self._h_estimate = self._obs.histogram("estimator.estimate.seconds")
        self._h_lazy_merge = self._obs.histogram("estimator.lazy_merge.seconds")

    def _observe(self, elapsed: float, synopsis: Synopsis | None) -> None:
        """Record one estimate's latency, overall and per synopsis type."""
        self._m_estimates.inc()
        self._h_estimate.observe(elapsed)
        if synopsis is not None:
            label = sanitize_segment(synopsis.synopsis_type.value)
            self._obs.histogram(
                f"estimator.estimate.seconds.{label}"
            ).observe(elapsed)

    def estimate(self, index_name: str, lo: int, hi: int) -> float:
        """The cardinality estimate for ``lo <= key <= hi``."""
        return self.estimate_detailed(index_name, lo, hi).estimate

    def estimate_detailed(self, index_name: str, lo: int, hi: int) -> EstimateResult:
        """Estimate with overhead/caching diagnostics."""
        started = time.perf_counter()
        version = self.catalog.version_for(index_name)

        # Fast path: a fresh merged synopsis answers directly.
        if self.cache is not None:
            cached = self.cache.get(index_name, version)
            if cached is not None:
                estimate = max(
                    cached.synopsis.estimate(lo, hi)
                    - cached.anti_synopsis.estimate(lo, hi),
                    0.0,
                )
                elapsed = time.perf_counter() - started
                self._m_cache_hits.inc()
                self._observe(elapsed, cached.synopsis)
                return EstimateResult(estimate, 0, True, elapsed)

        # Slow path: combine every per-component synopsis, merging along
        # the way when the type allows it.
        entries = self.catalog.entries_for(index_name)
        total = 0.0
        merged: Synopsis | None = None
        merged_anti: Synopsis | None = None
        # Merging requires one homogeneous mergeable family; a catalog
        # can transiently hold mixed types/parameters after a
        # reconfiguration, in which case only the summation path runs.
        mergeable = bool(entries) and all(
            e.synopsis.mergeable
            and e.synopsis.synopsis_type is entries[0].synopsis.synopsis_type
            for e in entries
        )
        merge_seconds = 0.0
        merges_ran = 0
        for entry in entries:
            contribution = entry.synopsis.estimate(lo, hi)
            contribution -= entry.anti_synopsis.estimate(lo, hi)
            total += contribution
            if mergeable and self.cache is not None:
                if merged is None:
                    merged, merged_anti = entry.synopsis, entry.anti_synopsis
                else:
                    assert merged_anti is not None
                    merge_started = time.perf_counter()
                    try:
                        merged = merged.merge_with(entry.synopsis)
                        merged_anti = merged_anti.merge_with(entry.anti_synopsis)
                        merges_ran += 1
                    except MergeabilityError:
                        # Incompatible parameters (domain/budget drift):
                        # give up on caching, keep summing.
                        mergeable = False
                        merged = merged_anti = None
                    finally:
                        merge_seconds += time.perf_counter() - merge_started

        # Cache (and account for) a lazy merge only when one actually
        # ran.  With a single catalog entry nothing was merged: caching
        # it would alias the catalog-owned synopsis objects into the
        # cache and inflate the lazy-merge metrics with zero-time
        # observations, while the summation path is already as cheap as
        # a cache hit.
        if merges_ran and merged is not None and merged_anti is not None:
            assert self.cache is not None
            self.cache.put(index_name, merged, merged_anti, version)
            self._m_lazy_merges.inc()
            self._h_lazy_merge.observe(merge_seconds)

        elapsed = time.perf_counter() - started
        self._observe(elapsed, entries[0].synopsis if entries else None)
        return EstimateResult(
            max(total, 0.0),
            len(entries),
            False,
            elapsed,
        )
