"""The merged-synopsis cache (Algorithm 2's fast path).

"To amortize the cost of computing estimates during query optimization,
we periodically merge appropriate synopses (i.e., wavelets and
equi-width histograms) and cache the produced synopsis on the Cluster
Controller side ... we recompute a whole combined synopsis whenever a
new piece of statistics is received from a storage node rather than
maintaining it incrementally, and we invalidate the previous merged
version at that time." (Section 3.5)

Staleness is detected by comparing the cached catalog version against
the catalog's current per-index version.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synopses.base import Synopsis

__all__ = ["CachedMergedSynopsis", "MergedSynopsisCache"]


@dataclass(frozen=True)
class CachedMergedSynopsis:
    """A merged synopsis pair plus the catalog version it was built at."""

    synopsis: Synopsis
    anti_synopsis: Synopsis
    version: int


class MergedSynopsisCache:
    """Per-index cache of merged (regular, anti-matter) synopses."""

    def __init__(self) -> None:
        self._cache: dict[str, CachedMergedSynopsis] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, index_name: str, current_version: int) -> CachedMergedSynopsis | None:
        """The cached merge, or ``None`` when absent or stale.

        A stale entry is invalidated on sight (Algorithm 2 lines 6-8).
        """
        cached = self._cache.get(index_name)
        if cached is None:
            self.misses += 1
            return None
        if cached.version != current_version:
            del self._cache[index_name]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return cached

    def put(
        self,
        index_name: str,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
        version: int,
    ) -> None:
        """Cache the merged pair computed at catalog ``version``."""
        self._cache[index_name] = CachedMergedSynopsis(
            synopsis, anti_synopsis, version
        )

    def invalidate(self, index_name: str) -> None:
        """Explicitly drop a cached merge."""
        if self._cache.pop(index_name, None) is not None:
            self.invalidations += 1

    def clear(self) -> None:
        """Drop everything (does not reset counters)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
