"""The merged-synopsis cache (paper Section 3.5, Algorithm 2's fast path).

"To amortize the cost of computing estimates during query optimization,
we periodically merge appropriate synopses (i.e., wavelets and
equi-width histograms) and cache the produced synopsis on the Cluster
Controller side ... we recompute a whole combined synopsis whenever a
new piece of statistics is received from a storage node rather than
maintaining it incrementally, and we invalidate the previous merged
version at that time." (Section 3.5)

This is the cache consulted by Algorithm 2's ``isStale`` test:
staleness is detected by comparing the cached catalog version against
the catalog's current per-index version, and a stale entry is dropped
on sight (Algorithm 2 lines 6-8) before the estimator falls back to
the per-component summation path.

Cache traffic is observable twice over: the legacy ``hits`` /
``misses`` / ``invalidations`` attributes (kept for the ablation
benchmarks) and the ``cache.merged.*`` metrics of the injected
:class:`~repro.obs.registry.MetricsRegistry` (docs/OBSERVABILITY.md),
which let a ``repro stats`` snapshot report the hit ratio that makes
Figure 6b's flat overhead curve possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.base import Synopsis

__all__ = ["CachedMergedSynopsis", "MergedSynopsisCache"]


@dataclass(frozen=True)
class CachedMergedSynopsis:
    """A merged synopsis pair plus the catalog version it was built at."""

    synopsis: Synopsis
    anti_synopsis: Synopsis
    version: int


class MergedSynopsisCache:
    """Per-index cache of merged (regular, anti-matter) synopses."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._cache: dict[str, CachedMergedSynopsis] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        obs = registry if registry is not None else get_registry()
        self._m_hit = obs.counter("cache.merged.hit")
        self._m_miss = obs.counter("cache.merged.miss")
        self._m_invalidation = obs.counter("cache.merged.invalidation")
        self._g_size = obs.gauge("cache.merged.size")

    def get(self, index_name: str, current_version: int) -> CachedMergedSynopsis | None:
        """The cached merge, or ``None`` when absent or stale.

        A stale entry is invalidated on sight (Algorithm 2 lines 6-8).
        """
        cached = self._cache.get(index_name)
        if cached is None:
            self.misses += 1
            self._m_miss.inc()
            return None
        if cached.version != current_version:
            del self._cache[index_name]
            self.invalidations += 1
            self.misses += 1
            self._m_invalidation.inc()
            self._m_miss.inc()
            self._g_size.set(len(self._cache))
            return None
        self.hits += 1
        self._m_hit.inc()
        return cached

    def put(
        self,
        index_name: str,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
        version: int,
    ) -> None:
        """Cache the merged pair computed at catalog ``version``."""
        self._cache[index_name] = CachedMergedSynopsis(
            synopsis, anti_synopsis, version
        )
        self._g_size.set(len(self._cache))

    def invalidate(self, index_name: str) -> None:
        """Explicitly drop a cached merge."""
        if self._cache.pop(index_name, None) is not None:
            self.invalidations += 1
            self._m_invalidation.inc()
            self._g_size.set(len(self._cache))

    def clear(self) -> None:
        """Drop everything (does not reset counters)."""
        self._cache.clear()
        self._g_size.set(0)

    def __len__(self) -> int:
        return len(self._cache)
