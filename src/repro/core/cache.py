"""The merged-synopsis cache (paper Section 3.5, Algorithm 2's fast path).

"To amortize the cost of computing estimates during query optimization,
we periodically merge appropriate synopses (i.e., wavelets and
equi-width histograms) and cache the produced synopsis on the Cluster
Controller side ... we recompute a whole combined synopsis whenever a
new piece of statistics is received from a storage node rather than
maintaining it incrementally, and we invalidate the previous merged
version at that time." (Section 3.5)

This is the cache consulted by Algorithm 2's ``isStale`` test:
staleness is detected by comparing the cached catalog version against
the catalog's current per-index version, and a stale entry is dropped
on sight (Algorithm 2 lines 6-8) before the estimator falls back to
the per-component summation path.

The cache is *capacity-bounded*: entries are kept in least-recently-used
order (a hit refreshes recency) and inserting past ``capacity_bytes``
evicts from the cold end until the budget holds again -- the eviction
lever the per-node :class:`~repro.lsm.memory.MemoryArbiter` pulls when
an estimate-light phase shrinks the cache share.  Eviction is safe by
construction: a victim merely costs one deterministic re-merge on the
next estimate for its index, so cache pressure can never change an
estimate's value (``racecheck --memory`` exercises exactly this).

Cache traffic is observable twice over: the legacy ``hits`` /
``misses`` / ``invalidations`` / ``evictions`` attributes (kept for the
ablation benchmarks) and the ``cache.*`` metrics of the injected
:class:`~repro.obs.registry.MetricsRegistry` (docs/OBSERVABILITY.md),
which let a ``repro stats`` snapshot report the hit ratio that makes
Figure 6b's flat overhead curve possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.base import Synopsis

__all__ = ["CachedMergedSynopsis", "MergedSynopsisCache"]

_ENTRY_OVERHEAD_BYTES = 64
"""Fixed per-entry cost: key string, dataclass, dict slot."""


@dataclass(frozen=True)
class CachedMergedSynopsis:
    """A merged synopsis pair plus the catalog version it was built at."""

    synopsis: Synopsis
    anti_synopsis: Synopsis
    version: int

    def memory_bytes(self) -> int:
        """Accounted footprint of this entry (payload model bytes)."""
        return (
            _ENTRY_OVERHEAD_BYTES
            + self.synopsis.payload_bytes()
            + self.anti_synopsis.payload_bytes()
        )


class MergedSynopsisCache:
    """Per-index LRU cache of merged (regular, anti-matter) synopses.

    ``capacity_bytes=None`` (the default) keeps the historical unbounded
    behaviour; with a capacity the cache holds its accounted bytes under
    the bound, except that the most recent entry is always admitted --
    a single oversized merge must not wedge the fast path off entirely.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        capacity_bytes: int | None = None,
    ) -> None:
        # Insertion order doubles as recency order: hits reinsert.
        self._cache: dict[str, CachedMergedSynopsis] = {}
        self._capacity = capacity_bytes
        self._bytes = 0
        self._bytes_listeners: list = []
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        obs = registry if registry is not None else get_registry()
        self._m_hit = obs.counter("cache.merged.hit")
        self._m_miss = obs.counter("cache.merged.miss")
        self._m_invalidation = obs.counter("cache.merged.invalidation")
        self._m_evictions = obs.counter("cache.evictions")
        self._g_size = obs.gauge("cache.merged.size")
        self._g_bytes = obs.gauge("cache.bytes")

    @property
    def capacity_bytes(self) -> int | None:
        """The current byte bound (``None`` = unbounded)."""
        return self._capacity

    def memory_bytes(self) -> int:
        """Accounted resident bytes, maintained incrementally."""
        return self._bytes

    def add_bytes_listener(self, listener) -> None:
        """Register a callback fired (with the new byte total) whenever
        the cache's accounted bytes change -- how an attached
        :class:`~repro.lsm.memory.MemoryArbiter` keeps its accounted
        total and high-water mark current between dataset publishes."""
        self._bytes_listeners.append(listener)

    def set_capacity(self, capacity_bytes: int | None) -> None:
        """Re-target the bound (the arbiter's share-adaptation hook);
        shrinking evicts immediately from the cold end."""
        self._capacity = capacity_bytes
        self._evict_over_capacity()

    def get(self, index_name: str, current_version: int) -> CachedMergedSynopsis | None:
        """The cached merge, or ``None`` when absent or stale.

        A stale entry is invalidated on sight (Algorithm 2 lines 6-8);
        a hit refreshes the entry's LRU recency.
        """
        cached = self._cache.get(index_name)
        if cached is None:
            self.misses += 1
            self._m_miss.inc()
            return None
        if cached.version != current_version:
            self._drop(index_name, cached)
            self.invalidations += 1
            self.misses += 1
            self._m_invalidation.inc()
            self._m_miss.inc()
            return None
        # Move to the hot end: delete + reinsert keeps dict order = LRU.
        del self._cache[index_name]
        self._cache[index_name] = cached
        self.hits += 1
        self._m_hit.inc()
        return cached

    def peek(self, index_name: str) -> CachedMergedSynopsis | None:
        """The cached merge for an index *regardless of staleness*.

        The degraded-answer path of the estimate service: under
        overload a possibly-stale merged synopsis beats a shed request.
        Deliberately side-effect free -- no staleness invalidation, no
        LRU refresh, no hit/miss accounting -- so degraded reads cannot
        perturb the primary path's behaviour or metrics.
        """
        return self._cache.get(index_name)

    def put(
        self,
        index_name: str,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
        version: int,
    ) -> None:
        """Cache the merged pair computed at catalog ``version``."""
        previous = self._cache.pop(index_name, None)
        if previous is not None:
            self._bytes -= previous.memory_bytes()
        entry = CachedMergedSynopsis(synopsis, anti_synopsis, version)
        self._cache[index_name] = entry
        self._bytes += entry.memory_bytes()
        self._evict_over_capacity()
        self._publish()

    def invalidate(self, index_name: str) -> None:
        """Explicitly drop a cached merge."""
        cached = self._cache.get(index_name)
        if cached is not None:
            self._drop(index_name, cached)
            self.invalidations += 1
            self._m_invalidation.inc()

    def clear(self) -> None:
        """Drop everything (does not reset counters)."""
        self._cache.clear()
        self._bytes = 0
        self._publish()

    def __len__(self) -> int:
        return len(self._cache)

    def _evict_over_capacity(self) -> None:
        """Evict cold entries until the bound holds (keeps >= 1 entry)."""
        if self._capacity is None:
            return
        while self._bytes > self._capacity and len(self._cache) > 1:
            victim_name = next(iter(self._cache))
            victim = self._cache.pop(victim_name)
            self._bytes -= victim.memory_bytes()
            self.evictions += 1
            self._m_evictions.inc()
        self._publish()

    def _drop(self, index_name: str, cached: CachedMergedSynopsis) -> None:
        del self._cache[index_name]
        self._bytes -= cached.memory_bytes()
        self._publish()

    def _publish(self) -> None:
        self._g_size.set(len(self._cache))
        self._g_bytes.set(self._bytes)
        for listener in self._bytes_listeners:
            listener(self._bytes)
