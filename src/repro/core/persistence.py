"""Catalog persistence.

The paper persists synopses "in the system catalog, so that [they] can
be used during query optimization" (Section 3.4) -- surviving restarts
is the point of a catalog.  This module serialises a
:class:`~repro.core.catalog.StatisticsCatalog` to a JSON file and
restores it, re-inserting entries in their original version order so
relative freshness (which the merged-synopsis cache's staleness check
relies on) is preserved.  Absolute version numbers restart from the
entry count, which is harmless: caches are empty after a restart.

Format version 2 adds two integrity guards (the catalog file is the
one artefact that crosses process lifetimes, so it gets the same
paranoia as the WAL and manifest):

* a CRC-32 ``checksum`` over the canonical JSON of the entry list, so
  a truncated or bit-flipped file is rejected instead of silently
  loading a partial catalog, and
* per-entry ``epoch`` stamps, preserving the node-restart fencing
  state across a master restart.

Version-1 files (no checksum, no epochs) are rejected with a
:class:`~repro.errors.CatalogError` naming both versions -- the format
guard, not silent best-effort parsing.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any

from repro.core.catalog import StatisticsCatalog
from repro.errors import CatalogError
from repro.synopses.factory import synopsis_from_payload

__all__ = ["save_catalog", "load_catalog", "CATALOG_FORMAT_VERSION"]

CATALOG_FORMAT_VERSION = 2


def _entries_checksum(entries: list[dict[str, Any]]) -> int:
    """CRC-32 over the canonical (sorted-key, compact) entries JSON."""
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode())


def save_catalog(catalog: StatisticsCatalog, path: str | Path) -> int:
    """Serialise every live entry; returns the number written."""
    entries: list[dict[str, Any]] = []
    for index_name in catalog.index_names():
        for entry in catalog.entries_for(index_name):
            entries.append(
                {
                    "index": entry.index_name,
                    "node": entry.node_id,
                    "partition": entry.partition_id,
                    "component_uid": entry.component_uid,
                    "version": entry.version,
                    "epoch": entry.epoch,
                    "synopsis": entry.synopsis.to_payload(),
                    "anti_synopsis": entry.anti_synopsis.to_payload(),
                }
            )
    entries.sort(key=lambda e: e["version"])
    document = {
        "format": CATALOG_FORMAT_VERSION,
        "checksum": _entries_checksum(entries),
        "entries": entries,
    }
    Path(path).write_text(json.dumps(document))
    return len(entries)


def load_catalog(path: str | Path) -> StatisticsCatalog:
    """Restore a catalog saved by :func:`save_catalog`.

    Raises :class:`~repro.errors.CatalogError` on a missing file,
    malformed JSON, an unsupported format version, a checksum mismatch
    (truncation/bit rot), or structurally invalid entries.
    """
    path = Path(path)
    if not path.exists():
        raise CatalogError(f"no catalog file at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CatalogError(f"corrupt catalog file {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise CatalogError(f"catalog file {path} is not a JSON object")
    if document.get("format") != CATALOG_FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog format {document.get('format')!r} "
            f"(expected {CATALOG_FORMAT_VERSION})"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise CatalogError(f"catalog file {path} has no entry list")
    if document.get("checksum") != _entries_checksum(entries):
        raise CatalogError(
            f"catalog file {path} failed its checksum "
            "(truncated or corrupted)"
        )
    catalog = StatisticsCatalog()
    for position, entry in enumerate(entries):
        try:
            catalog.put(
                entry["index"],
                entry["node"],
                entry["partition"],
                entry["component_uid"],
                synopsis_from_payload(entry["synopsis"]),
                synopsis_from_payload(entry["anti_synopsis"]),
                epoch=int(entry.get("epoch", 0)),
            )
        except (KeyError, TypeError) as exc:
            raise CatalogError(
                f"catalog file {path}: malformed entry {position}: {exc!r}"
            ) from exc
    return catalog
