"""Catalog persistence.

The paper persists synopses "in the system catalog, so that [they] can
be used during query optimization" (Section 3.4) -- surviving restarts
is the point of a catalog.  This module serialises a
:class:`~repro.core.catalog.StatisticsCatalog` to a JSON file and
restores it, re-inserting entries in their original version order so
relative freshness (which the merged-synopsis cache's staleness check
relies on) is preserved.  Absolute version numbers restart from the
entry count, which is harmless: caches are empty after a restart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.catalog import StatisticsCatalog
from repro.errors import CatalogError
from repro.synopses.factory import synopsis_from_payload

__all__ = ["save_catalog", "load_catalog", "CATALOG_FORMAT_VERSION"]

CATALOG_FORMAT_VERSION = 1


def save_catalog(catalog: StatisticsCatalog, path: str | Path) -> int:
    """Serialise every live entry; returns the number written."""
    entries: list[dict[str, Any]] = []
    for index_name in catalog.index_names():
        for entry in catalog.entries_for(index_name):
            entries.append(
                {
                    "index": entry.index_name,
                    "node": entry.node_id,
                    "partition": entry.partition_id,
                    "component_uid": entry.component_uid,
                    "version": entry.version,
                    "synopsis": entry.synopsis.to_payload(),
                    "anti_synopsis": entry.anti_synopsis.to_payload(),
                }
            )
    entries.sort(key=lambda e: e["version"])
    document = {"format": CATALOG_FORMAT_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(document))
    return len(entries)


def load_catalog(path: str | Path) -> StatisticsCatalog:
    """Restore a catalog saved by :func:`save_catalog`."""
    path = Path(path)
    if not path.exists():
        raise CatalogError(f"no catalog file at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CatalogError(f"corrupt catalog file {path}: {exc}") from exc
    if document.get("format") != CATALOG_FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog format {document.get('format')!r} "
            f"(expected {CATALOG_FORMAT_VERSION})"
        )
    catalog = StatisticsCatalog()
    for entry in document["entries"]:
        catalog.put(
            entry["index"],
            entry["node"],
            entry["partition"],
            entry["component_uid"],
            synopsis_from_payload(entry["synopsis"]),
            synopsis_from_payload(entry["anti_synopsis"]),
        )
    return catalog
