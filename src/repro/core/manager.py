"""Single-node convenience wiring of the statistics framework.

:class:`StatisticsManager` bundles a catalog, a merged-synopsis cache,
a collector and an estimator, and attaches them to datasets -- the
whole paper pipeline without the cluster simulation.  The distributed
variant lives in :mod:`repro.cluster`, which reuses the same pieces but
ships synopses over the simulated network.
"""

from __future__ import annotations

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.core.collector import StatisticsCollector
from repro.core.config import StatisticsConfig
from repro.core.estimator import (
    CardinalityEstimator,
    EstimateResult,
    NDVEstimate,
)
from repro.lsm.dataset import Dataset
from repro.obs.registry import MetricsRegistry, get_registry
from repro.synopses.base import Synopsis

__all__ = ["LocalStatisticsSink", "StatisticsManager"]

LOCAL_NODE_ID = "local"


class LocalStatisticsSink:
    """Statistics sink writing straight into an in-process catalog."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        cache: MergedSynopsisCache | None = None,
        node_id: str = LOCAL_NODE_ID,
        partition_id: int = 0,
    ) -> None:
        self.catalog = catalog
        self.cache = cache
        self.node_id = node_id
        self.partition_id = partition_id

    def publish(
        self,
        index_name: str,
        component_uid: int,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
    ) -> None:
        self.catalog.put(
            index_name,
            self.node_id,
            self.partition_id,
            component_uid,
            synopsis,
            anti_synopsis,
        )
        if self.cache is not None:
            self.cache.invalidate(index_name)

    def retract(self, index_name: str, component_uids: list[int]) -> None:
        self.catalog.retract(
            index_name, self.node_id, self.partition_id, component_uids
        )
        if self.cache is not None:
            self.cache.invalidate(index_name)


class StatisticsManager:
    """Catalog + cache + collector + estimator for a local deployment."""

    def __init__(
        self,
        config: StatisticsConfig,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.catalog = StatisticsCatalog()
        self.cache = (
            MergedSynopsisCache(self.registry) if config.cache_merged else None
        )
        self.collector: StatisticsCollector | None = None
        if config.enabled:
            sink = LocalStatisticsSink(self.catalog, self.cache)
            self.collector = StatisticsCollector(config, sink, self.registry)
        self.estimator = CardinalityEstimator(
            self.catalog, self.cache, self.registry
        )

    def metrics_snapshot(self) -> dict:
        """JSON-ready dump of this manager's metrics registry."""
        return self.registry.snapshot()

    def attach(self, dataset: Dataset) -> None:
        """Enable statistics for a dataset's primary and secondary keys.

        A no-op under the NoStats baseline, so callers can attach
        unconditionally and switch behaviour purely via configuration.
        """
        if self.collector is None:
            return
        self.collector.register_index(
            dataset.primary.name, dataset.primary_domain
        )
        for spec in dataset.indexes.values():
            tree = dataset.secondary_tree(spec.name)
            self.collector.register_index(tree.name, spec.domain)
        dataset.event_bus.subscribe(self.collector)

    def register_attribute(
        self, dataset: Dataset, attribute: str, domain
    ) -> None:
        """Enable statistics on a non-indexed attribute (Section 5
        future work); requires an order-insensitive synopsis type."""
        if self.collector is None:
            return
        self.collector.register_attribute(
            dataset.primary.name, attribute, domain
        )

    def estimate_attribute(
        self, dataset: Dataset, attribute: str, lo: int, hi: int
    ) -> float:
        """Range-cardinality estimate on a registered attribute."""
        from repro.core.collector import attribute_statistics_key

        key = attribute_statistics_key(dataset.primary.name, attribute)
        return self.estimator.estimate(key, lo, hi)

    def estimate(self, dataset: Dataset, index_name: str, lo: int, hi: int) -> float:
        """Range-cardinality estimate on one of the dataset's indexes
        (``"primary"`` or a secondary index name)."""
        return self.estimate_detailed(dataset, index_name, lo, hi).estimate

    def estimate_detailed(
        self, dataset: Dataset, index_name: str, lo: int, hi: int
    ) -> EstimateResult:
        """Like :meth:`estimate`, with overhead/caching diagnostics."""
        return self.estimator.estimate_detailed(
            self._full_name(dataset, index_name), lo, hi
        )

    def estimate_ndv(self, dataset: Dataset, index_name: str = "primary") -> float:
        """Distinct-value estimate for one of the dataset's indexes
        (requires ``ndv_enabled`` in the configuration)."""
        return self.estimate_ndv_detailed(dataset, index_name).ndv

    def estimate_ndv_detailed(
        self, dataset: Dataset, index_name: str = "primary"
    ) -> NDVEstimate:
        """Like :meth:`estimate_ndv`, with the anti-matter interval and
        caching diagnostics."""
        return self.estimator.estimate_ndv_detailed(
            self._full_name(dataset, index_name)
        )

    @staticmethod
    def _full_name(dataset: Dataset, index_name: str) -> str:
        if index_name == "primary":
            return dataset.primary.name
        return dataset.secondary_tree(index_name).name
