"""Statistics framework configuration.

Mirrors the paper's system configuration: the synopsis type and the
per-synopsis element budget ("The construction algorithms each produce
a synopsis with a predefined number of elements (bucket/coefficient
budget) that is specified in the system's configuration file",
Section 3.2).  A ``synopsis_type`` of ``None`` is the evaluation's
*NoStats* baseline: the collector is disabled entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.synopses.base import SynopsisType

__all__ = [
    "StatisticsConfig",
    "DEFAULT_BUDGET",
    "DEFAULT_NDV_PRECISION",
]

DEFAULT_BUDGET = 256
"""The budget the paper fixes after Section 4.3.1 ("the synopsis with
256 elements provides excellent accuracy")."""

DEFAULT_NDV_PRECISION = 10
"""Default HLL precision ``p`` for the NDV sketch lane: 1024 one-byte
registers per sketch, ~3.3% standard error (docs/SKETCHES.md)."""


@dataclass(frozen=True)
class StatisticsConfig:
    """Immutable configuration of the statistics-collection framework.

    Attributes:
        synopsis_type: Which synopsis family to build, or ``None`` to
            disable statistics collection (the NoStats baseline).
        budget: Elements (buckets or coefficients) per synopsis.
        cache_merged: Whether the cluster controller caches merged
            synopses for mergeable types (Algorithm 2's fast path).
        ndv_enabled: Whether every registered statistics target also
            builds a matter/anti HyperLogLog twin per component (the
            ``#ndv`` sketch lane feeding ``estimate_ndv``).
        ndv_precision: HLL precision ``p`` of the NDV lane -- each
            sketch holds ``2**p`` one-byte registers.
    """

    synopsis_type: SynopsisType | None = SynopsisType.EQUI_WIDTH
    budget: int = DEFAULT_BUDGET
    cache_merged: bool = True
    ndv_enabled: bool = False
    ndv_precision: int = DEFAULT_NDV_PRECISION

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {self.budget}")
        if not 2 <= self.ndv_precision <= 18:
            raise ConfigurationError(
                f"ndv_precision must be in [2, 18], got {self.ndv_precision}"
            )

    @property
    def enabled(self) -> bool:
        """Whether statistics collection is active."""
        return self.synopsis_type is not None

    @classmethod
    def disabled(cls) -> "StatisticsConfig":
        """The NoStats baseline configuration."""
        return cls(synopsis_type=None)
