"""The statistics catalog.

"Each LSM-framework event creates a local synopsis which is sent over
the network to the master node; [the] synopsis is persisted in the
system catalog, so that it can be used during query optimization"
(Section 3.4).  The catalog keys every entry by (index, node,
partition, component) -- one regular synopsis plus its anti-matter twin
per disk component -- and keeps a per-index version counter so the
merged-synopsis cache can detect staleness (Algorithm 2's ``isStale``).

The catalog is safe under *at-least-once* delivery, the contract of the
retrying network sink:

* a duplicate publish (same key, identical payload) is a no-op and does
  not bump the version, so cache invalidation only fires on actual
  change;
* a retract leaves a *tombstone* per retracted component, so a publish
  that was delayed past its own retraction cannot resurrect a
  merged-away component's statistics;
* a duplicate retract removes nothing and does not bump the version.

Component uids are allocated from a process-global counter and never
reused, so a tombstone can never block a legitimate future publish;
tombstones are kept for the catalog's lifetime (they are three-element
tuples -- bounded by the total number of components ever merged away).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError
from repro.synopses.base import Synopsis

__all__ = ["StatisticsEntry", "StatisticsCatalog"]


@dataclass(frozen=True)
class StatisticsEntry:
    """One component's statistics as stored in the catalog.

    Attributes:
        index_name: Fully qualified LSM index name.
        node_id: Storage node that produced the synopsis.
        partition_id: Data partition on that node.
        component_uid: Unique id of the summarised disk component.
        synopsis: Summary of the component's matter records.
        anti_synopsis: Summary of its anti-matter records (Section 3.3).
        version: Catalog version at insertion time.
        epoch: Restart epoch of the producing node; a node that crashed
            and recovered publishes under a higher epoch, and its reset
            message clears the lower-epoch entries it replaces.
    """

    index_name: str
    node_id: str
    partition_id: int
    component_uid: int
    synopsis: Synopsis
    anti_synopsis: Synopsis
    version: int
    epoch: int = 0


class StatisticsCatalog:
    """In-memory system catalog of per-component synopses."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[tuple[str, int, int], StatisticsEntry]] = {}
        self._versions: dict[str, int] = {}
        # Per index: (node, partition, uid) triples whose statistics
        # were retracted -- late/replayed publishes for them are no-ops.
        self._tombstones: dict[str, set[tuple[str, int, int]]] = {}

    def put(
        self,
        index_name: str,
        node_id: str,
        partition_id: int,
        component_uid: int,
        synopsis: Synopsis,
        anti_synopsis: Synopsis,
        epoch: int = 0,
    ) -> StatisticsEntry | None:
        """Insert (or replace) the statistics of one component.

        Idempotent under redelivery: returns ``None`` without touching
        the catalog when the component was already retracted (its
        tombstone wins over a late publish), and returns the existing
        entry -- no version bump -- when an identical publish is
        already stored.  A put carrying *different* statistics for an
        existing key still replaces the entry (a deliberate re-publish),
        and so does a put under a newer epoch: a recovered node's
        re-derived statistics must not be mistaken for duplicates of
        its pre-crash ones.
        """
        key = (node_id, partition_id, component_uid)
        if key in self._tombstones.get(index_name, ()):
            return None
        bucket = self._entries.setdefault(index_name, {})
        existing = bucket.get(key)
        if (
            existing is not None
            and existing.epoch == epoch
            and self._same_payload(existing, synopsis, anti_synopsis)
        ):
            return existing
        version = self._bump(index_name)
        entry = StatisticsEntry(
            index_name,
            node_id,
            partition_id,
            component_uid,
            synopsis,
            anti_synopsis,
            version,
            epoch,
        )
        bucket[key] = entry
        return entry

    def retract(
        self,
        index_name: str,
        node_id: str,
        partition_id: int,
        component_uids: list[int],
    ) -> int:
        """Drop the entries of superseded (merged-away) components;
        returns how many were actually removed.

        Every named component is tombstoned (even when its publish has
        not arrived yet), so delayed or replayed publishes cannot
        resurrect it.  The version bumps only when live entries actually
        changed, keeping cache invalidation tied to real catalog change.
        """
        bucket = self._entries.get(index_name, {})
        tombstones = self._tombstones.setdefault(index_name, set())
        removed = 0
        for component_uid in component_uids:
            key = (node_id, partition_id, component_uid)
            tombstones.add(key)
            if bucket.pop(key, None) is not None:
                removed += 1
        if removed:
            self._bump(index_name)
        return removed

    def reset_partition(
        self,
        index_name: str,
        node_id: str,
        partition_id: int,
        below_epoch: int,
    ) -> int:
        """Drop every entry of one node/partition published under an
        epoch older than ``below_epoch``; returns how many were removed.

        A recovered node sends this *before* republishing: the entries
        its crashed incarnation delivered describe components whose
        post-recovery identities (uids) are fresh, so the stale ones
        would otherwise double-count the partition forever.
        """
        bucket = self._entries.get(index_name, {})
        stale = [
            key
            for key, entry in bucket.items()
            if key[0] == node_id
            and key[1] == partition_id
            and entry.epoch < below_epoch
        ]
        for key in stale:
            del bucket[key]
        if stale:
            self._bump(index_name)
        return len(stale)

    @staticmethod
    def _same_payload(
        existing: StatisticsEntry, synopsis: Synopsis, anti_synopsis: Synopsis
    ) -> bool:
        if existing.synopsis is synopsis and existing.anti_synopsis is anti_synopsis:
            return True
        return (
            existing.synopsis.to_payload() == synopsis.to_payload()
            and existing.anti_synopsis.to_payload() == anti_synopsis.to_payload()
        )

    def entries_for(self, index_name: str) -> list[StatisticsEntry]:
        """All live entries for an index, in insertion-version order."""
        bucket = self._entries.get(index_name)
        if bucket is None:
            return []
        return sorted(bucket.values(), key=lambda e: e.version)

    def version_for(self, index_name: str) -> int:
        """Monotone per-index version; bumps on every put/retract."""
        return self._versions.get(index_name, 0)

    def index_names(self) -> list[str]:
        """All indexes with catalogued statistics."""
        return sorted(self._entries)

    def entry_count(self, index_name: str | None = None) -> int:
        """Number of live entries, for one index or overall."""
        if index_name is not None:
            return len(self._entries.get(index_name, {}))
        return sum(len(bucket) for bucket in self._entries.values())

    def total_bytes(self, index_name: str | None = None) -> int:
        """Approximate catalog space consumed by synopses.

        The paper's mergeability trade-off (Section 3.5) is primarily a
        *space* trade-off; this is the number the ablation benchmarks
        report.
        """
        if index_name is not None:
            names = [index_name]
            if index_name not in self._entries:
                raise CatalogError(f"no statistics for index {index_name!r}")
        else:
            names = list(self._entries)
        total = 0
        for name in names:
            for entry in self._entries[name].values():
                total += entry.synopsis.payload_bytes()
                total += entry.anti_synopsis.payload_bytes()
        return total

    def _bump(self, index_name: str) -> int:
        version = self._versions.get(index_name, 0) + 1
        self._versions[index_name] = version
        return version
