"""The lightweight statistics-collection framework (Section 3)."""

from repro.core.cache import CachedMergedSynopsis, MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog, StatisticsEntry
from repro.core.collector import (
    CollectorMetrics,
    StatisticsCollector,
    StatisticsSink,
    attribute_statistics_key,
)
from repro.core.persistence import load_catalog, save_catalog
from repro.core.config import DEFAULT_BUDGET, StatisticsConfig
from repro.core.estimator import CardinalityEstimator, EstimateResult
from repro.core.manager import LocalStatisticsSink, StatisticsManager
from repro.core.spatial import (
    SpatialCardinalityEstimator,
    SpatialEstimateResult,
    SpatialStatisticsCollector,
    SpatialStatisticsConfig,
    SpatialStatisticsManager,
)

__all__ = [
    "StatisticsConfig",
    "DEFAULT_BUDGET",
    "StatisticsCatalog",
    "StatisticsEntry",
    "MergedSynopsisCache",
    "CachedMergedSynopsis",
    "StatisticsCollector",
    "StatisticsSink",
    "CollectorMetrics",
    "attribute_statistics_key",
    "save_catalog",
    "load_catalog",
    "CardinalityEstimator",
    "EstimateResult",
    "LocalStatisticsSink",
    "StatisticsManager",
    "SpatialStatisticsConfig",
    "SpatialStatisticsCollector",
    "SpatialCardinalityEstimator",
    "SpatialEstimateResult",
    "SpatialStatisticsManager",
]
