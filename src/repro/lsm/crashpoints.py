"""Seeded crash injection for the LSM lifecycle.

Real LSM engines earn their durability story by surviving power loss at
the worst possible instant; this module provides the simulated worst
instants.  A :class:`CrashInjector` is threaded through the WAL,
manifest and the flush/merge/bulkload paths of
:class:`~repro.lsm.tree.LSMTree`; at each named *crash point* it may
raise :class:`SimulatedCrash`, modelling the process dying right there.

The crash model matches the storage simulation: everything already
appended to the :class:`~repro.lsm.storage.SimulatedDisk` (including
its superblock) survives; every in-memory object -- memtables, WAL
group buffers, component lists, statistics outboxes -- is lost.  Crash
points are registered only *immediately after* a durable action (a WAL
group commit, a manifest append, a sealed component build), so at every
crash point the on-disk state is exactly what a crashed process would
have fsynced -- which is what recovery must be able to restore from.

Styled after :mod:`repro.cluster.faults`: a frozen plan object, one
seeded RNG, deterministic replay from ``(seed, point)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["CRASH_POINTS", "SimulatedCrash", "CrashPlan", "CrashInjector"]

CRASH_POINTS = (
    "wal.commit",
    "wal.truncate",
    "manifest.begin",
    "manifest.commit",
    "txn.commit",
    "flush.rotate",
    "flush.build",
    "merge.build",
    "merge.splice",
    "merge.cleanup",
    "bulkload.build",
)
"""Every registered crash point, in rough lifecycle order.

``wal.commit``      after a WAL group commit page is durable
``wal.truncate``    after the superblock points at the fresh WAL file,
                    before the old file is deleted (orphan window)
``manifest.begin``  after a ``*_BEGIN`` manifest entry is durable
``manifest.commit`` after a ``*_COMMIT`` manifest entry is durable
``txn.commit``      after a dataset flush transaction commit is durable
``flush.rotate``    after the memtable rotated into the immutable queue,
                    before the flush builds anything (memory-only state:
                    recovery is identical to crashing before the flush)
``flush.build``     after a flush built+sealed its component file,
                    before the manifest commit installs it
``merge.build``     after a merge built+sealed the merged component,
                    before the manifest commit installs it
``merge.splice``    after the merge's manifest commit is durable, before
                    the in-memory component list is spliced (recovery
                    must install the committed merged component)
``merge.cleanup``   after the merge committed, before the replaced
                    component files are deleted
``bulkload.build``  after a bulkload built+sealed its component file,
                    before the manifest commit installs it
"""


class SimulatedCrash(BaseException):
    """The simulated process death raised at an armed crash point.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    the library's internal ``except Exception`` fault-isolation blocks
    -- which must survive a *sink* failing, not a *process* dying --
    can never accidentally swallow a crash.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class CrashPlan:
    """Where and when one crash fires.

    Attributes:
        point: The registered crash point to die at.
        hit: Fire on the ``hit``-th passage through the point (1-based),
            so a plan can target e.g. the third flush instead of the
            first.
    """

    point: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ConfigurationError(
                f"unknown crash point {self.point!r}; "
                f"registered: {', '.join(CRASH_POINTS)}"
            )
        if self.hit < 1:
            raise ConfigurationError(f"hit must be >= 1, got {self.hit}")


class CrashInjector:
    """Raises :class:`SimulatedCrash` once, at a planned crash point.

    The injector is one-shot: after firing it disarms itself, so the
    recovery that follows (and the rest of the run) proceeds crash-free
    -- each injected fault is examined in isolation, exactly like the
    wire faults of :mod:`repro.cluster.faults` are seeded one plan at a
    time.  Passage counts are kept per point either way, so harnesses
    can assert a point was actually exercised.
    """

    def __init__(
        self,
        plan: CrashPlan | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.plan = plan
        self.fired: SimulatedCrash | None = None
        self.hits: dict[str, int] = {}
        obs = registry if registry is not None else get_registry()
        self._m_crashes = obs.counter("crash.injected")

    @classmethod
    def seeded(
        cls,
        seed: int,
        point: str,
        max_hit: int = 3,
        registry: MetricsRegistry | None = None,
    ) -> "CrashInjector":
        """A plan for ``point`` whose hit number is drawn from
        ``random.Random(seed)`` in ``[1, max_hit]`` -- deterministic per
        seed, so a failing crashcheck run is replayable."""
        rng = random.Random(f"{seed}:{point}")
        return cls(CrashPlan(point, rng.randint(1, max_hit)), registry=registry)

    def reached(self, point: str) -> None:
        """Record a passage through ``point``; crash if the plan says so."""
        if point not in CRASH_POINTS:
            raise ConfigurationError(f"unregistered crash point {point!r}")
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        plan = self.plan
        if (
            plan is not None
            and self.fired is None
            and plan.point == point
            and plan.hit == hit
        ):
            crash = SimulatedCrash(point, hit)
            self.fired = crash
            self._m_crashes.inc()
            raise crash
