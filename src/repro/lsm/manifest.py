"""Component manifest: the durable source of truth for LSM structure.

Real LSM engines persist the set of live SSTables in a MANIFEST log;
recovery replays it to learn which files are components and which are
garbage.  This module is that log for the simulated disk.  Every
component-creating operation is *two-phase*:

1. a ``*.begin`` entry records the intent (flush/merge/bulkload about
   to build a file) -- if the process dies mid-build, the half-built
   file has no commit entry and recovery GCs it as an orphan;
2. a ``*.commit`` entry atomically installs the built component by
   persisting its :class:`ComponentDescriptor` (and, for merges, the
   file ids it replaces).

Dataset flushes add a transaction layer on top: each per-tree flush
commit is stamped with a transaction id, and the whole multi-tree flush
only takes effect once the matching ``txn.commit`` entry is durable.
Replay *voids* component commits whose transaction never committed, so
a crash between two trees' flushes can never install the primary's
component without its secondaries' (no torn dataset flush).

Every entry carries a checksum; replay verifies it and raises
:class:`~repro.errors.ManifestError` on corruption.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ManifestError
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.storage import FileHandle, SimulatedDisk
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["Manifest", "ManifestState", "ComponentDescriptor", "MANIFEST_EVENTS"]

MANIFEST_EVENTS = ("flush", "merge", "bulkload")
"""Component-creating operations the manifest records."""


@dataclass(frozen=True)
class ComponentDescriptor:
    """Everything recovery needs to reopen one disk component.

    ``ordinal`` is the manifest entry index of the commit that installed
    the component.  Within a tree, ordinals follow creation order, so
    recovery can mint fresh component uids in the same relative order as
    the crashed process did -- the statistics catalog compares component
    identity by rank, not by raw uid.
    """

    tree: str
    min_seq: int
    max_seq: int
    matter_count: int
    antimatter_count: int
    expected_records: int
    btree: dict[str, Any]
    ordinal: int

    @property
    def file_id(self) -> int:
        return self.btree["file_id"]


@dataclass
class ManifestState:
    """The result of replaying a manifest log.

    Attributes:
        components: Per-tree live descriptors, **newest first** (the
            order :class:`~repro.lsm.tree.LSMTree` keeps components in).
        committed_txns: Ids of flush transactions that fully committed.
        next_txn: First unused transaction id.
    """

    components: dict[str, list[ComponentDescriptor]] = field(
        default_factory=dict
    )
    committed_txns: set[int] = field(default_factory=set)
    next_txn: int = 0

    def live_file_ids(self) -> set[int]:
        """Component files referenced by the live descriptors."""
        return {
            descriptor.file_id
            for descriptors in self.components.values()
            for descriptor in descriptors
        }

    def descriptors_by_ordinal(self) -> list[ComponentDescriptor]:
        """All live descriptors across trees, in creation order."""
        return sorted(
            (
                descriptor
                for descriptors in self.components.values()
                for descriptor in descriptors
            ),
            key=lambda descriptor: descriptor.ordinal,
        )


def _entry_checksum(kind: str, tree: str | None, txn: int | None, payload: Any) -> int:
    return zlib.crc32(repr((kind, tree, txn, payload)).encode())


class Manifest:
    """An append-only log of component lifecycle entries.

    Args:
        disk: The partition's simulated disk.
        name: Namespace (e.g. ``"orders.p3"``); the manifest file id is
            kept under ``manifest:<name>`` in the disk's superblock.
        recover: Reopen the existing manifest named in the superblock
            instead of starting a fresh one.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        name: str,
        recover: bool = False,
        crash_injector: CrashInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.disk = disk
        self.name = name
        self._injector = crash_injector
        obs = registry if registry is not None else get_registry()
        self._m_entries = obs.counter("manifest.entries")
        self._m_txns = obs.counter("manifest.txns")
        superblock_key = self._superblock_key
        if recover and superblock_key in disk.superblock:
            self._file = FileHandle(disk, disk.superblock[superblock_key])
        else:
            self._file = disk.create_file()
            disk.superblock[superblock_key] = self._file.file_id
        # Seed the txn counter past anything already logged so restarted
        # nodes never reuse a transaction id.
        self._next_txn = 0
        if recover:
            self._next_txn = self.replay().next_txn

    @property
    def _superblock_key(self) -> str:
        return f"manifest:{self.name}"

    @property
    def file_id(self) -> int:
        """Id of the manifest file (a live reference for GC)."""
        return self._file.file_id

    def _fire(self, point: str) -> None:
        if self._injector is not None:
            self._injector.reached(point)

    def _append(
        self,
        kind: str,
        tree: str | None,
        txn: int | None,
        payload: Any,
    ) -> None:
        self._file.append_page(
            {
                "kind": kind,
                "tree": tree,
                "txn": txn,
                "payload": payload,
                "crc": _entry_checksum(kind, tree, txn, payload),
            }
        )
        self._m_entries.inc()

    # -- write path ------------------------------------------------------

    def begin(
        self,
        event: str,
        tree: str,
        txn: int | None = None,
        payload: Any = None,
    ) -> None:
        """Record intent: ``event`` on ``tree`` is about to build a file."""
        if event not in MANIFEST_EVENTS:
            raise ManifestError(f"unknown manifest event {event!r}")
        self._append(f"{event}.begin", tree, txn, payload)
        self._fire("manifest.begin")

    def commit(
        self,
        event: str,
        tree: str,
        descriptor: ComponentDescriptor,
        replaces: tuple[int, ...] = (),
        txn: int | None = None,
    ) -> None:
        """Atomically install a built component.

        ``replaces`` names the file ids of the components a merge
        supersedes; flush/bulkload commits replace nothing.
        """
        if event not in MANIFEST_EVENTS:
            raise ManifestError(f"unknown manifest event {event!r}")
        payload = {
            "descriptor": {
                "tree": descriptor.tree,
                "min_seq": descriptor.min_seq,
                "max_seq": descriptor.max_seq,
                "matter_count": descriptor.matter_count,
                "antimatter_count": descriptor.antimatter_count,
                "expected_records": descriptor.expected_records,
                "btree": dict(descriptor.btree),
            },
            "replaces": list(replaces),
        }
        self._append(f"{event}.commit", tree, txn, payload)
        self._fire("manifest.commit")

    def begin_txn(self) -> int:
        """Open a multi-tree flush transaction; returns its id."""
        txn = self._next_txn
        self._next_txn += 1
        self._append("txn.begin", None, txn, None)
        return txn

    def commit_txn(self, txn: int) -> None:
        """Durably commit a flush transaction: every component commit
        stamped with ``txn`` takes effect at once."""
        self._append("txn.commit", None, txn, None)
        self._m_txns.inc()
        self._fire("txn.commit")

    # -- recovery --------------------------------------------------------

    def replay(self) -> ManifestState:
        """Fold the log into the current live-component state."""
        entries = [
            self._read_entry(page_no) for page_no in range(self._file.num_pages)
        ]

        state = ManifestState()
        for entry in entries:
            txn = entry["txn"]
            if txn is not None:
                state.next_txn = max(state.next_txn, txn + 1)
            if entry["kind"] == "txn.commit":
                state.committed_txns.add(txn)

        for ordinal, entry in enumerate(entries):
            kind = entry["kind"]
            if not kind.endswith(".commit") or kind == "txn.commit":
                continue
            txn = entry["txn"]
            if txn is not None and txn not in state.committed_txns:
                continue  # voided: its dataset flush never committed
            descriptor = self._descriptor_from(entry, ordinal)
            # Oldest-first while folding; reversed to newest-first below.
            live = state.components.setdefault(descriptor.tree, [])
            replaces = set(entry["payload"]["replaces"])
            if replaces:
                self._splice_merge(live, descriptor, replaces)
            else:
                live.append(descriptor)

        state.components = {
            tree: list(reversed(descriptors))
            for tree, descriptors in state.components.items()
        }
        return state

    def _splice_merge(
        self,
        live: list[ComponentDescriptor],
        merged: ComponentDescriptor,
        replaces: set[int],
    ) -> None:
        indices = [
            i for i, d in enumerate(live) if d.file_id in replaces
        ]
        if len(indices) != len(replaces):
            raise ManifestError(
                f"manifest {self.name!r}: merge commit for "
                f"{merged.tree!r} replaces unknown components"
            )
        if indices != list(range(indices[0], indices[-1] + 1)):
            raise ManifestError(
                f"manifest {self.name!r}: merge commit for "
                f"{merged.tree!r} replaces a non-contiguous run"
            )
        live[indices[0] : indices[-1] + 1] = [merged]

    def _descriptor_from(
        self, entry: dict[str, Any], ordinal: int
    ) -> ComponentDescriptor:
        raw = entry["payload"]["descriptor"]
        try:
            return ComponentDescriptor(
                tree=raw["tree"],
                min_seq=raw["min_seq"],
                max_seq=raw["max_seq"],
                matter_count=raw["matter_count"],
                antimatter_count=raw["antimatter_count"],
                expected_records=raw["expected_records"],
                btree=raw["btree"],
                ordinal=ordinal,
            )
        except (KeyError, TypeError) as exc:
            raise ManifestError(
                f"manifest {self.name!r}: malformed descriptor in entry "
                f"{ordinal} ({exc})"
            ) from exc

    def _read_entry(self, page_no: int) -> dict[str, Any]:
        page = self._file.read_page(page_no)
        if not isinstance(page, dict) or "kind" not in page:
            raise ManifestError(
                f"manifest {self.name!r}: page {page_no} is not an entry"
            )
        expected = _entry_checksum(
            page["kind"], page.get("tree"), page.get("txn"), page.get("payload")
        )
        if page.get("crc") != expected:
            raise ManifestError(
                f"manifest {self.name!r}: checksum mismatch on entry {page_no}"
            )
        return page
