"""Background maintenance scheduling for the LSM lifecycle.

AsterixDB runs flushes and merges on worker threads while ingestion
continues; this module supplies that subsystem in three interchangeable
modes so the same engine code serves production *and* deterministic
testing:

* :class:`SyncScheduler` -- ``submit`` runs the task inline on the
  calling thread.  Maintenance stays synchronous with the write that
  triggered it, byte-for-byte the pre-scheduler behaviour.  The default.
* :class:`ThreadPoolScheduler` -- a bounded pool of real ``threading``
  workers.  Used by production-style runs and the thread-stress suite.
* :class:`VirtualScheduler` -- a seeded single-threaded step-executor:
  pending tasks wait until the harness calls :meth:`~VirtualScheduler.step`
  (or ``drain``/``wait``), and each step picks the next lane by seeded
  choice.  Every interleaving is replayable from ``(seed, op script)``,
  the same design lever the fault and crash harnesses use.

**Lanes.**  Tasks are submitted into named FIFO *lanes*; a lane never
runs two tasks concurrently and never reorders them (except explicit
``front=True`` continuations, which jump the lane's queue).  All
maintenance of one dataset shares one lane, which is what makes the
concurrent modes end bit-identical to a synchronous run: per dataset,
flushes install in rotation order and each flush's merge continuations
run before the next flush, exactly the decision sequence the inline
code produces -- only the interleaving *between* datasets (and with the
ingest/query/stats traffic) varies.

**Fair dispatch.**  Submissions carry a ``kind`` (``"flush"``,
``"merge"``, or generic ``"task"``).  The thread-pool mode uses it to
keep writers stall-free: while any registered backpressure probe
reports the immutable queue near capacity, ready *flush* lanes are
dispatched ahead of merge lanes -- bounded by a starvation limit so
merges always make progress.  Reordering only ever happens *across*
lanes, whose relative order is already unconstrained, so the per-lane
determinism argument above is untouched.

Metrics (docs/OBSERVABILITY.md): ``scheduler.tasks.submitted`` /
``.completed`` / ``.failed`` (``completed`` counts successes only, so
``submitted == completed + failed + pending`` at all times),
``scheduler.queue.depth``, ``scheduler.task.seconds``,
``scheduler.dispatch.flush_first``, and the backpressure pair
``scheduler.stalls`` / ``scheduler.stall.seconds``.
"""

from __future__ import annotations

import random
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable

from repro.errors import ConfigurationError, SchedulerError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "MaintenanceScheduler",
    "SyncScheduler",
    "ThreadPoolScheduler",
    "VirtualScheduler",
    "SchedulerError",
    "SCHEDULER_MODES",
    "make_scheduler",
    "DEFAULT_MAX_WORKERS",
    "MERGE_STARVATION_LIMIT",
]

SCHEDULER_MODES = ("sync", "threads", "virtual")
"""The supported ``scheduler=`` modes, see :func:`make_scheduler`."""

DEFAULT_MAX_WORKERS = 2
"""Worker threads of a :class:`ThreadPoolScheduler` unless overridden."""

DEFAULT_LANE = "default"

MERGE_STARVATION_LIMIT = 4
"""Consecutive flush-first dispatches before a waiting merge lane is
served regardless of backpressure (starvation protection)."""


Task = Callable[[], None]


class MaintenanceScheduler(ABC):
    """Common contract of the three scheduler modes."""

    #: One of :data:`SCHEDULER_MODES`; also keys ``make_scheduler``.
    mode: str = "abstract"

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        obs = registry if registry is not None else get_registry()
        self._m_submitted = obs.counter("scheduler.tasks.submitted")
        self._m_completed = obs.counter("scheduler.tasks.completed")
        self._m_failed = obs.counter("scheduler.tasks.failed")
        self._m_stalls = obs.counter("scheduler.stalls")
        self._m_flush_first = obs.counter("scheduler.dispatch.flush_first")
        self._g_depth = obs.gauge("scheduler.queue.depth")
        self._h_task = obs.histogram("scheduler.task.seconds")
        self._h_stall = obs.histogram("scheduler.stall.seconds")
        self._pressure_probes: list[Callable[[], bool]] = []

    @property
    def inline(self) -> bool:
        """True when ``submit`` runs tasks on the calling thread
        immediately (the synchronous compatibility mode)."""
        return False

    @abstractmethod
    def submit(
        self,
        task: Task,
        lane: str = DEFAULT_LANE,
        front: bool = False,
        kind: str = "task",
    ) -> None:
        """Enqueue ``task`` on ``lane``.  ``front=True`` puts it at the
        head of the lane (a continuation of the task that submitted it);
        lanes are otherwise strict FIFO and never run two tasks at once.
        ``kind`` classifies the task (``"flush"``/``"merge"``/``"task"``)
        for fair dispatch; it never affects per-lane ordering.
        """

    def add_pressure_probe(self, probe: Callable[[], bool]) -> None:
        """Register a backpressure probe (True = writers are close to
        stalling).  The thread-pool dispatcher consults the probes to
        prioritize flush lanes; the deterministic modes ignore them."""
        self._pressure_probes.append(probe)

    def _under_pressure(self) -> bool:
        for probe in self._pressure_probes:
            try:
                if probe():
                    return True
            except Exception:
                continue  # a dead probe must never wedge dispatch
        return False

    @abstractmethod
    def drain(self) -> None:
        """Run/await every pending task (including ones submitted while
        draining) until the scheduler is idle.  Task failures captured
        off-thread are re-raised here."""

    @abstractmethod
    def pending_count(self) -> int:
        """Tasks submitted but not yet completed."""

    def wait(self, predicate: Callable[[], bool]) -> None:
        """Backpressure hook: block (or, in virtual mode, run pending
        tasks) until ``predicate()`` holds or no pending task can change
        it.  Records a stall when it could not return immediately *and*
        the scheduler could actually make progress -- with nothing
        pending (sync mode always, idle virtual/threads) nothing can
        flip the predicate, so counting a stall would report phantom
        backpressure."""
        if predicate():
            return
        if self.pending_count() == 0:
            return
        self._m_stalls.inc()
        started = time.perf_counter()
        try:
            self._wait(predicate)
        finally:
            self._h_stall.observe(time.perf_counter() - started)

    @abstractmethod
    def _wait(self, predicate: Callable[[], bool]) -> None:
        """Mode-specific blocking loop behind :meth:`wait`."""

    def shutdown(self) -> None:
        """Release worker resources; pending tasks are discarded (the
        crash-restart semantics: in-memory work in flight is lost)."""

    def _run_task(self, task: Task) -> BaseException | None:
        """Execute one task with timing/outcome accounting; returns the
        failure instead of raising so callers choose propagation."""
        started = time.perf_counter()
        try:
            task()
        except BaseException as exc:  # SimulatedCrash included
            self._m_failed.inc()
            return exc
        finally:
            self._h_task.observe(time.perf_counter() - started)
            self._g_depth.inc(-1)
        # Success only: a failed task must count in exactly one of
        # completed/failed so submitted == completed + failed + pending.
        self._m_completed.inc()
        return None


class SyncScheduler(MaintenanceScheduler):
    """Runs every task inline at submit time (legacy behaviour)."""

    mode = "sync"

    @property
    def inline(self) -> bool:
        return True

    def submit(
        self,
        task: Task,
        lane: str = DEFAULT_LANE,
        front: bool = False,
        kind: str = "task",
    ) -> None:
        self._m_submitted.inc()
        self._g_depth.inc(1)
        failure = self._run_task(task)
        if failure is not None:
            raise failure

    def drain(self) -> None:
        return  # nothing is ever pending

    def pending_count(self) -> int:
        return 0

    def _wait(self, predicate: Callable[[], bool]) -> None:
        return  # no background task can change the predicate


class VirtualScheduler(MaintenanceScheduler):
    """A deterministic seeded step-executor.

    Tasks accumulate in their lanes until the harness advances the
    scheduler: :meth:`step` runs exactly one task from a seeded-random
    non-empty lane, :meth:`drain` steps until idle, and :meth:`wait`
    steps until the predicate holds.  Replaying the same seed against
    the same submission sequence reproduces the interleaving exactly.
    Task exceptions (including :class:`~repro.lsm.crashpoints.SimulatedCrash`)
    propagate on the calling thread at the step that ran the task.
    """

    mode = "virtual"

    def __init__(
        self, seed: int | str = 0, registry: MetricsRegistry | None = None
    ) -> None:
        super().__init__(registry)
        self._rng = random.Random(f"scheduler:{seed}")
        self._lanes: dict[str, deque[Task]] = {}

    def submit(
        self,
        task: Task,
        lane: str = DEFAULT_LANE,
        front: bool = False,
        kind: str = "task",
    ) -> None:
        queue = self._lanes.setdefault(lane, deque())
        if front:
            queue.appendleft(task)
        else:
            queue.append(task)
        self._m_submitted.inc()
        self._g_depth.inc(1)

    def pending_count(self) -> int:
        return sum(len(queue) for queue in self._lanes.values())

    def step(self) -> bool:
        """Run one pending task from a seeded-random lane; returns
        False when nothing was pending."""
        nonempty = sorted(lane for lane, queue in self._lanes.items() if queue)
        if not nonempty:
            return False
        lane = (
            nonempty[0]
            if len(nonempty) == 1
            else self._rng.choice(nonempty)
        )
        task = self._lanes[lane].popleft()
        failure = self._run_task(task)
        if failure is not None:
            raise failure
        return True

    def drain(self) -> None:
        while self.step():
            pass

    def _wait(self, predicate: Callable[[], bool]) -> None:
        while not predicate():
            if not self.step():
                return  # idle and still false: nothing will change it

    def shutdown(self) -> None:
        discarded = self.pending_count()
        if discarded:
            self._g_depth.inc(-discarded)
        self._lanes.clear()


class ThreadPoolScheduler(MaintenanceScheduler):
    """A bounded pool of real worker threads with lane-FIFO dispatch.

    A lane is handed to a worker only while no other worker is running
    one of its tasks, so the per-lane serialization the determinism
    argument rests on holds under true concurrency.  Failures are
    captured and re-raised by the next :meth:`drain` (maintenance must
    never kill a writer thread silently).

    Dispatch is FIFO across ready lanes, with one exception: while a
    backpressure probe reports writers near the stall point, a ready
    lane whose head task is a *flush* is served before merge lanes, so
    a long merge in one dataset cannot back up the immutable queues of
    the others.  At most :data:`MERGE_STARVATION_LIMIT` consecutive
    dispatches may skip ahead of a waiting merge lane before it is
    served regardless -- merges are what keep the component count (and
    with it, read amplification) bounded."""

    mode = "threads"

    def __init__(
        self,
        max_workers: int = DEFAULT_MAX_WORKERS,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        super().__init__(registry)
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._lanes: dict[str, deque[tuple[Task, str]]] = {}
        self._ready: deque[str] = deque()  # lanes with work, not running
        self._running: set[str] = set()
        self._pending = 0
        self._failures: list[BaseException] = []
        self._shutdown = False
        self._merge_deferrals = 0  # consecutive flush-first dispatches
        self._workers = [
            threading.Thread(
                target=self._work,
                name=f"lsm-maintenance-{index}",
                daemon=True,
            )
            for index in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    def submit(
        self,
        task: Task,
        lane: str = DEFAULT_LANE,
        front: bool = False,
        kind: str = "task",
    ) -> None:
        with self._changed:
            if self._shutdown:
                raise SchedulerError("submit on a shut-down scheduler")
            queue = self._lanes.setdefault(lane, deque())
            if front:
                queue.appendleft((task, kind))
            else:
                queue.append((task, kind))
            self._pending += 1
            if lane not in self._running and lane not in self._ready:
                self._ready.append(lane)
            self._m_submitted.inc()
            self._g_depth.inc(1)
            self._changed.notify()

    def pending_count(self) -> int:
        with self._mutex:
            return self._pending

    def add_pressure_probe(self, probe: Callable[[], bool]) -> None:
        with self._mutex:
            self._pressure_probes.append(probe)

    def _lane_kind(self, lane: str) -> str:
        queue = self._lanes.get(lane)
        return queue[0][1] if queue else "task"

    def _pick_lane(self) -> str:
        """Choose the next ready lane (lock held, ``_ready`` nonempty).

        FIFO by default; under backpressure a flush lane may jump ahead
        of merge lanes, bounded by :data:`MERGE_STARVATION_LIMIT`."""
        head = self._ready[0]
        if (
            len(self._ready) > 1
            and self._lane_kind(head) != "flush"
            and self._merge_deferrals < MERGE_STARVATION_LIMIT
            and self._under_pressure()
        ):
            for index in range(1, len(self._ready)):
                candidate = self._ready[index]
                if self._lane_kind(candidate) == "flush":
                    del self._ready[index]
                    self._merge_deferrals += 1
                    self._m_flush_first.inc()
                    return candidate
        self._ready.popleft()
        self._merge_deferrals = 0
        return head

    def _work(self) -> None:
        while True:
            with self._changed:
                while not self._ready and not self._shutdown:
                    self._changed.wait()
                if self._shutdown:
                    return
                lane = self._pick_lane()
                task, _kind = self._lanes[lane].popleft()
                self._running.add(lane)
            failure = self._run_task(task)
            with self._changed:
                self._running.discard(lane)
                self._pending -= 1
                if failure is not None:
                    self._failures.append(failure)
                if self._lanes.get(lane):
                    self._ready.append(lane)
                self._changed.notify_all()

    def drain(self) -> None:
        with self._changed:
            while self._pending and not self._shutdown:
                self._changed.wait()
            failures, self._failures = self._failures, []
        if failures:
            first = failures[0]
            if isinstance(first, BaseException) and not isinstance(
                first, Exception
            ):
                raise first  # e.g. SimulatedCrash: never wrap process death
            raise SchedulerError(
                f"{len(failures)} background maintenance task(s) failed; "
                f"first: {first!r}"
            ) from first

    def _wait(self, predicate: Callable[[], bool]) -> None:
        with self._changed:
            while not predicate():
                if not self._pending or self._shutdown:
                    return
                self._changed.wait(timeout=0.1)

    def shutdown(self) -> None:
        with self._changed:
            if not self._shutdown:
                self._shutdown = True
                # Queued tasks are discarded (crash-restart semantics);
                # account for them so queue.depth/_pending return to 0
                # instead of leaking the discarded work forever.
                discarded = sum(len(q) for q in self._lanes.values())
                if discarded:
                    self._pending -= discarded
                    self._g_depth.inc(-discarded)
                self._lanes.clear()
                self._ready.clear()
            self._changed.notify_all()
        for worker in self._workers:
            if worker is not threading.current_thread():
                worker.join(timeout=5.0)


def make_scheduler(
    mode: str,
    seed: int | str = 0,
    max_workers: int = DEFAULT_MAX_WORKERS,
    registry: MetricsRegistry | None = None,
) -> MaintenanceScheduler:
    """Build a scheduler from its mode name (``"sync"`` | ``"threads"``
    | ``"virtual"``), the form the dataset/cluster constructors and the
    README document."""
    if mode == "sync":
        return SyncScheduler(registry=registry)
    if mode == "threads":
        return ThreadPoolScheduler(max_workers=max_workers, registry=registry)
    if mode == "virtual":
        return VirtualScheduler(seed=seed, registry=registry)
    raise ConfigurationError(
        f"unknown scheduler mode {mode!r}; expected one of {SCHEDULER_MODES}"
    )
