"""Bloom filters for LSM disk components.

Every LSM point lookup must consult components newest-to-oldest until
the key is found; without filters that is one random B-tree descent per
component.  AsterixDB (like most LSM engines) attaches a Bloom filter
to each disk component so lookups skip components that certainly do not
hold the key.  The filter is populated from the same bulkload stream
the statistics framework taps -- one more rider on the unified
``bulkload()`` routine, at zero extra I/O.

Implementation: a plain bit array with double hashing (Kirsch &
Mitzenmacher: ``h_i = h1 + i * h2`` gives k independent-enough probes
from two base hashes).
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = ["BloomFilter"]


def _base_hashes(key: Any) -> tuple[int, int]:
    digest = hashlib.md5(repr(key).encode()).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:16], "little") | 1  # odd -> full cycle
    return h1, h2


class BloomFilter:
    """A fixed-size Bloom filter over arbitrary hashable keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 1 or num_hashes < 1:
            raise ConfigurationError(
                f"invalid Bloom parameters bits={num_bits} hashes={num_hashes}"
            )
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(-(-num_bits // 8))
        self.num_added = 0

    @classmethod
    def for_capacity(cls, expected_keys: int, fpp: float = 0.01) -> "BloomFilter":
        """Size the filter for ``expected_keys`` at false-positive rate
        ``fpp`` (standard optimal-parameter formulas)."""
        if not 0.0 < fpp < 1.0:
            raise ConfigurationError(f"fpp must be in (0, 1), got {fpp}")
        expected_keys = max(1, expected_keys)
        num_bits = max(8, int(-expected_keys * math.log(fpp) / (math.log(2) ** 2)))
        num_hashes = max(1, round(num_bits / expected_keys * math.log(2)))
        return cls(num_bits, num_hashes)

    def add(self, key: Any) -> None:
        """Insert a key."""
        h1, h2 = _base_hashes(key)
        for i in range(self.num_hashes):
            position = (h1 + i * h2) % self.num_bits
            self._bits[position >> 3] |= 1 << (position & 7)
        self.num_added += 1

    def add_all(self, keys: Iterable[Any]) -> None:
        """Insert every key."""
        for key in keys:
            self.add(key)

    def might_contain(self, key: Any) -> bool:
        """False means definitely absent; True means possibly present."""
        h1, h2 = _base_hashes(key)
        for i in range(self.num_hashes):
            position = (h1 + i * h2) % self.num_bits
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def __contains__(self, key: Any) -> bool:
        return self.might_contain(key)
