"""Simulated page-oriented disk with I/O accounting.

The paper's evaluation ran on real disks; here the "disk" is an
in-process page store that charges every page access to an
:class:`IOStats` ledger, distinguishing sequential from random accesses
(the crucial distinction in the LSM cost argument: a flush is one
sequential write of a whole component, an index probe is a random read).
Benchmarks report these counters alongside wall-clock time so the
*relative* overhead claims of the paper (Fig. 2) can be checked without
physical hardware.

A file is an append-only sequence of fixed-role pages; files are
immutable once sealed, mirroring immutable LSM disk components.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StorageError

__all__ = ["IOStats", "SimulatedDisk", "FileHandle", "DEFAULT_PAGE_BYTES"]

DEFAULT_PAGE_BYTES = 4096
"""Nominal page size used for byte accounting."""


@dataclass
class IOStats:
    """Counters for simulated I/O traffic."""

    pages_written: int = 0
    pages_read: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    files_created: int = 0
    files_deleted: int = 0
    pages_deleted: int = 0
    bytes_reclaimed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(**self.__dict__)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in self.__dict__
            }
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.__dict__
            }
        )


@dataclass
class _File:
    """Backing storage of one simulated file."""

    file_id: int
    pages: list[Any] = field(default_factory=list)
    sealed: bool = False
    deleted: bool = False
    last_read_page: int = -2  # sentinel so page 0 is never "sequential"


class FileHandle:
    """A reference to a file on a :class:`SimulatedDisk`.

    Handles are cheap and can be shared; the disk enforces the
    immutable-once-sealed contract.
    """

    def __init__(self, disk: "SimulatedDisk", file_id: int) -> None:
        self._disk = disk
        self.file_id = file_id

    def append_page(self, data: Any) -> int:
        """Append a page; returns its page number."""
        return self._disk.append_page(self.file_id, data)

    def read_page(self, page_no: int) -> Any:
        """Read one page, charging sequential or random I/O."""
        return self._disk.read_page(self.file_id, page_no)

    def seal(self) -> None:
        """Make the file immutable."""
        self._disk.seal(self.file_id)

    def delete(self) -> None:
        """Reclaim the file (e.g. after a merge supersedes a component)."""
        self._disk.delete_file(self.file_id)

    @property
    def num_pages(self) -> int:
        """Number of pages currently in the file."""
        return self._disk.num_pages(self.file_id)


class SimulatedDisk:
    """An in-process disk of append-only page files.

    Args:
        page_bytes: Nominal page size for byte accounting.
        cache_pages: Capacity of the LRU buffer cache; 0 (the default)
            disables caching so every page access is charged I/O --
            useful when experiments need deterministic I/O counts.
            Pages enter the cache on write (a flushed component's pages
            are warm) and on read misses.
    """

    def __init__(
        self, page_bytes: int = DEFAULT_PAGE_BYTES, cache_pages: int = 0
    ) -> None:
        if page_bytes <= 0:
            raise StorageError(f"page_bytes must be positive, got {page_bytes}")
        if cache_pages < 0:
            raise StorageError(f"cache_pages must be >= 0, got {cache_pages}")
        self.page_bytes = page_bytes
        self.cache_pages = cache_pages
        self.stats = IOStats()
        self._files: dict[int, _File] = {}
        self._next_file_id = 0
        # One disk serves every partition of a node, so background
        # flush/merge builds on worker threads append and read pages
        # concurrently with the application thread; the mutex keeps file
        # ids unique and the stats/cache bookkeeping consistent.  RLock
        # because orphan GC deletes files one by one.
        self._mutex = threading.RLock()
        # LRU buffer cache: (file_id, page_no) -> page object.
        self._cache: OrderedDict[tuple[int, int], Any] = OrderedDict()
        # The "superblock": a tiny fixed-location key/value area real
        # filesystems reserve for boot-strapping metadata.  Recovery
        # reads the current WAL/manifest file ids and the node epoch
        # from here; like file pages, its contents survive a simulated
        # crash (only in-memory objects are lost).  Feed consumers also
        # checkpoint their durable cursors here (see cluster/feeds.py);
        # prefer the superblock_get/superblock_put accessors for
        # cross-thread traffic -- a feed thread checkpoints while
        # maintenance workers run against the same disk.
        self.superblock: dict[str, Any] = {}

    def superblock_get(self, key: str, default: Any = None) -> Any:
        """Read one superblock entry under the disk mutex."""
        with self._mutex:
            return self.superblock.get(key, default)

    def superblock_put(self, key: str, value: Any) -> None:
        """Write one superblock entry under the disk mutex.  Each write
        models an atomic in-place update of the fixed-location area (a
        single-sector write on a real disk), so a simulated crash sees
        either the old or the new value, never a torn one."""
        with self._mutex:
            self.superblock[key] = value

    def create_file(self) -> FileHandle:
        """Create a new empty file."""
        with self._mutex:
            file_id = self._next_file_id
            self._next_file_id += 1
            self._files[file_id] = _File(file_id)
            self.stats.files_created += 1
            return FileHandle(self, file_id)

    def append_page(self, file_id: int, data: Any) -> int:
        """Append a page to an unsealed file (a sequential write)."""
        with self._mutex:
            file = self._live_file(file_id)
            if file.sealed:
                raise StorageError(f"file {file_id} is sealed (immutable)")
            file.pages.append(data)
            self.stats.pages_written += 1
            self.stats.bytes_written += self.page_bytes
            page_no = len(file.pages) - 1
            self._cache_insert(file_id, page_no, data)
            return page_no

    def read_page(self, file_id: int, page_no: int) -> Any:
        """Read a page, classifying the access as sequential or random.

        A buffer-cache hit returns the page without charging any I/O.
        """
        with self._mutex:
            file = self._live_file(file_id)
            if not 0 <= page_no < len(file.pages):
                raise StorageError(
                    f"page {page_no} out of range for file {file_id} "
                    f"({len(file.pages)} pages)"
                )
            if self.cache_pages:
                cached = self._cache.get((file_id, page_no))
                if cached is not None:
                    self._cache.move_to_end((file_id, page_no))
                    self.stats.cache_hits += 1
                    return cached
                self.stats.cache_misses += 1
            self.stats.pages_read += 1
            self.stats.bytes_read += self.page_bytes
            if page_no == file.last_read_page + 1:
                self.stats.sequential_reads += 1
            else:
                self.stats.random_reads += 1
            file.last_read_page = page_no
            page = file.pages[page_no]
            self._cache_insert(file_id, page_no, page)
            return page

    def _cache_insert(self, file_id: int, page_no: int, page: Any) -> None:
        if not self.cache_pages:
            return
        self._cache[(file_id, page_no)] = page
        self._cache.move_to_end((file_id, page_no))
        while len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)

    def seal(self, file_id: int) -> None:
        """Mark a file immutable; further appends raise."""
        with self._mutex:
            self._live_file(file_id).sealed = True

    def delete_file(self, file_id: int) -> None:
        """Delete a file and free its pages (and cached copies).

        The reclaimed space is charged to ``pages_deleted`` /
        ``bytes_reclaimed`` so merge GC and recovery orphan-GC are
        visible in :class:`IOStats`.
        """
        with self._mutex:
            file = self._live_file(file_id)
            freed_pages = len(file.pages)
            file.deleted = True
            file.pages = []
            self.stats.files_deleted += 1
            self.stats.pages_deleted += freed_pages
            self.stats.bytes_reclaimed += freed_pages * self.page_bytes
            if self.cache_pages:
                stale = [key for key in self._cache if key[0] == file_id]
                for key in stale:
                    del self._cache[key]

    def delete_files_except(self, keep: "set[int]") -> list[int]:
        """Delete every live file whose id is not in ``keep`` (orphan
        garbage collection after a crash); returns the deleted ids."""
        with self._mutex:
            orphans = [
                file_id
                for file_id, file in self._files.items()
                if not file.deleted and file_id not in keep
            ]
            for file_id in orphans:
                self.delete_file(file_id)
            return orphans

    def num_pages(self, file_id: int) -> int:
        """Page count of a live file."""
        with self._mutex:
            return len(self._live_file(file_id).pages)

    @property
    def live_files(self) -> int:
        """Number of files created and not yet deleted."""
        with self._mutex:
            return sum(1 for f in self._files.values() if not f.deleted)

    def live_file_ids(self) -> set[int]:
        """Ids of all files created and not yet deleted."""
        with self._mutex:
            return {
                file_id for file_id, f in self._files.items() if not f.deleted
            }

    def _live_file(self, file_id: int) -> _File:
        file = self._files.get(file_id)
        if file is None:
            raise StorageError(f"unknown file {file_id}")
        if file.deleted:
            raise StorageError(f"file {file_id} was deleted")
        return file
