"""The LSM-tree: one LSM-ified index.

Ties together the mutable in-memory component, the immutable disk
components, the merge policy and the event bus.  All three component-
creating operations -- flush, merge and initial bulkload -- funnel
through one ``_write_component`` routine that consumes a key-sorted
record stream, which is exactly the paper's unified ``bulkload()``
abstraction (Section 3.1) and the single place where statistics
observers tap the data flow.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Iterable, Iterator

from repro.errors import BulkloadError, RecoveryError, StorageError
from repro.lsm.bloom import BloomFilter
from repro.lsm.btree import (
    DEFAULT_FANOUT,
    DEFAULT_LEAF_CAPACITY,
    btree_from_descriptor,
    build_btree,
    build_btree_chunks,
)
from repro.lsm.columnar import (
    ColumnarChunk,
    columnar_chunk_stream,
    register_summary_extractor,
)
from repro.lsm.component import ComponentId, DiskComponent
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.cursor import merge_streams, reconcile
from repro.lsm.events import (
    ComponentWriteContext,
    EventBus,
    LSMEventType,
    RecordSink,
    accept_batch,
)
from repro.lsm.manifest import ComponentDescriptor, Manifest
from repro.lsm.memtable import MemTable
from repro.lsm.merge_policy import MergePolicy, NoMergePolicy
from repro.lsm.pacing import MergePacer
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk
from repro.lsm.wal import WriteAheadLog
from repro.obs.registry import MetricsRegistry, get_registry, sanitize_segment
from repro.obs.tracing import span
from repro.util.npbackend import numpy_backend_enabled

__all__ = [
    "LSMTree",
    "SequenceGenerator",
    "DEFAULT_MEMTABLE_CAPACITY",
    "DEFAULT_WRITE_BATCH_SIZE",
]

DEFAULT_MEMTABLE_CAPACITY = 4096
"""Records buffered in memory before an automatic flush."""

DEFAULT_WRITE_BATCH_SIZE = 512
"""Records drained per chunk on the batched component-write path."""

_CHUNK_INDEX_BUILDERS: dict[Any, Callable[..., Any]] = {
    build_btree: build_btree_chunks,
}
"""Chunk-consuming twins of per-record index builders.  Builders
without a twin (e.g. the LSM-ified R-tree) receive a flattened record
stream, so custom physical structures keep working unchanged."""


class SequenceGenerator:
    """Monotonic sequence numbers, shareable across a dataset's indexes.

    Thread-safe: the DML path and background maintenance may both need
    numbers (e.g. concurrent writers behind the dataset's DML lock on
    different datasets sharing a partition sequence)."""

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._last = start - 1
        self._lock = threading.Lock()

    def next(self) -> int:
        """The next sequence number."""
        with self._lock:
            value = self._next
            self._next = value + 1
            self._last = value
            return value

    def reserve(self, count: int) -> range:
        """Atomically claim ``count`` consecutive sequence numbers.

        The columnar bulkload path stamps a whole chunk with one
        reservation instead of ``count`` lock round-trips; the numbers
        issued are exactly those ``count`` successive :meth:`next`
        calls would have produced, so the per-record oracle path
        assigns identical seqnums.
        """
        if count < 0:
            raise ValueError(f"reserve of negative count {count}")
        with self._lock:
            first = self._next
            self._next = first + count
            if count:
                self._last = self._next - 1
            return range(first, first + count)

    @property
    def last(self) -> int:
        """The most recently issued sequence number."""
        return self._last


def _default_key_extractor(record: Record) -> Any:
    """Primary indexes summarise the key itself."""
    return record.key


# The raw-key registration unlocks the collector's zero-copy typed-key
# fast path for every primary index (docs/DATAPATH.md).
register_summary_extractor(_default_key_extractor, raw_key=True)


class LSMTree:
    """A single LSM index (primary or secondary)."""

    def __init__(
        self,
        name: str,
        disk: SimulatedDisk,
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy: MergePolicy | None = None,
        event_bus: EventBus | None = None,
        sequence: SequenceGenerator | None = None,
        key_extractor: Callable[[Record], Any] | None = None,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
        auto_flush: bool = True,
        bloom_fpp: float | None = 0.01,
        index_builder: Callable[..., Any] | None = None,
        registry: MetricsRegistry | None = None,
        write_batch_size: int | None = DEFAULT_WRITE_BATCH_SIZE,
        manifest: Manifest | None = None,
        wal: WriteAheadLog | None = None,
        crash_injector: CrashInjector | None = None,
        merge_pacer: "MergePacer | None" = None,
    ) -> None:
        if memtable_capacity < 1:
            raise StorageError(
                f"memtable_capacity must be >= 1, got {memtable_capacity}"
            )
        if write_batch_size is not None and write_batch_size < 1:
            raise StorageError(
                f"write_batch_size must be >= 1 or None, got {write_batch_size}"
            )
        self.name = name
        self.disk = disk
        self.memtable = MemTable()
        self.memtable_capacity = memtable_capacity
        self.merge_policy = (
            merge_policy if merge_policy is not None else NoMergePolicy()
        )
        self.event_bus = event_bus if event_bus is not None else EventBus()
        self.sequence = sequence if sequence is not None else SequenceGenerator()
        self.key_extractor = (
            key_extractor
            if key_extractor is not None
            else _default_key_extractor
        )
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.auto_flush = auto_flush
        self.bloom_fpp = bloom_fpp
        # The physical structure of disk components: defaults to the
        # B-tree; LSM-ified R-trees plug in build_rtree here.  Any
        # builder must accept (disk, records, leaf_capacity, fanout)
        # and return the DiskBTree scan/lookup interface.
        self.index_builder = index_builder if index_builder is not None else build_btree
        # Durability hooks.  With a manifest, every component-creating
        # operation becomes two-phase (begin/commit entries) so recovery
        # can tell installed components from half-built orphans.  The
        # WAL hook is for standalone trees; dataset trees leave it None
        # and the dataset logs each op atomically across its indexes.
        if manifest is not None and self.index_builder is not build_btree:
            raise StorageError(
                f"durable LSM tree {name!r} requires the B-tree index "
                "builder (custom structures have no manifest descriptor)"
            )
        self._manifest = manifest
        self._wal = wal
        self._injector = crash_injector
        # Optional merge rate limit (repro.lsm.pacing).  Only the merge
        # build path consults it -- flushes and bulkloads are what the
        # pacer protects, so they always run unthrottled.
        self.merge_pacer = merge_pacer
        # None disables batching: the legacy per-record tap/build path
        # (kept as the compatibility fallback and the perf baseline).
        self.write_batch_size = write_batch_size
        self._index_chunk_builder = _CHUNK_INDEX_BUILDERS.get(self.index_builder)
        # Newest first, matching lookup order.
        self._components: list[DiskComponent] = []
        # Rotated memtables awaiting a background flush, oldest first.
        # The tree lock covers every mutation of the in-memory state a
        # reader snapshots: active-memtable writes, rotation, and the
        # component-list install/splice.  Maintenance runs its builds
        # outside the lock, so writers never wait out a flush or merge.
        self._immutables: list[MemTable] = []
        self._lock = threading.RLock()
        self.flush_count = 0
        self.merge_count = 0
        # Observer taps are fault-isolated: a crashing statistics sink
        # must never fail ingestion (the framework is a passenger, not
        # a driver).  Failures are counted here and the sink is dropped
        # for the remainder of that component write.
        self.observer_failures = 0
        # Instruments bind once at construction (docs/OBSERVABILITY.md);
        # the per-record tap loop stays registry-free -- record counts
        # are added in bulk when a component seals.
        self._obs = registry if registry is not None else get_registry()
        self._m_flush = self._obs.counter("lsm.flush.count")
        self._m_merge = self._obs.counter("lsm.merge.count")
        self._m_bulkload = self._obs.counter("lsm.bulkload.count")
        self._m_matter = self._obs.counter("lsm.records.matter")
        self._m_anti = self._obs.counter("lsm.records.antimatter")
        self._m_observer_failures = self._obs.counter("lsm.observer.failures")
        self._m_recovered = self._obs.counter("recovery.components")
        self._g_components = self._obs.gauge(
            f"lsm.components.{sanitize_segment(name)}"
        )
        # Columnar data-path instruments (docs/DATAPATH.md): chunk
        # traffic, the chunk-size distribution, and whether the numpy
        # compute backend is active.  Fallback materialisations are
        # counted by the chunks themselves (repro.lsm.columnar).
        self._m_col_chunks = self._obs.counter("ingest.columnar.chunks")
        self._h_col_chunk_records = self._obs.histogram(
            "ingest.columnar.chunk_records",
            buckets=(1.0, 8.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0),
        )
        self._obs.gauge("ingest.columnar.numpy_backend").set(
            1.0 if numpy_backend_enabled() else 0.0
        )

    def _fire(self, point: str) -> None:
        if self._injector is not None:
            self._injector.reached(point)

    # -- write path ------------------------------------------------------

    def upsert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` or replace its current version."""
        self._write(Record.matter(key, value, seqnum=self.sequence.next()))

    insert = upsert

    def delete(self, key: Any) -> None:
        """Delete ``key`` by writing an anti-matter record."""
        self._write(Record.anti(key, seqnum=self.sequence.next()))

    def write_record(self, record: Record) -> None:
        """Apply a pre-built record (used by the dataset layer, which
        assigns one sequence number to all index entries of an op)."""
        self._write(record)

    def _write(self, record: Record) -> None:
        # Log before the memtable accepts: an acknowledged write must
        # survive a crash even though the memtable is volatile.
        if self._wal is not None:
            self._wal.append(self.name, record)
        with self._lock:
            self.memtable.write(record)
            full = len(self.memtable) >= self.memtable_capacity
        if self.auto_flush and full:
            self.flush()

    # -- lifecycle events --------------------------------------------------

    def rotate(self) -> bool:
        """Seal the active memtable into the immutable queue and start a
        fresh one, so subsequent writes never wait on the flush that will
        persist the sealed records.  Returns False when the memtable was
        empty (nothing to rotate).

        Rotation is pure in-memory state: a crash here loses exactly the
        same acknowledged-but-unflushed records as a crash before the
        flush, and WAL replay restores them either way.
        """
        with self._lock:
            if not self.memtable:
                return False
            self._immutables.append(self.memtable)
            self.memtable = MemTable()
        self._fire("flush.rotate")
        return True

    @property
    def immutable_count(self) -> int:
        """Rotated memtables not yet flushed to disk."""
        with self._lock:
            return len(self._immutables)

    def memory_breakdown(self) -> tuple[int, int, int, int]:
        """Accounted bytes as ``(active, immutable, bloom, resident)``
        (docs/MEMORY.md pools).  Memtable bytes are incremental counters
        and the component list is policy-bounded, so this is a handful
        of int reads under the tree lock -- cheap enough for the write
        path to publish after every operation."""
        with self._lock:
            active = self.memtable.memory_bytes()
            immutable = sum(m.memory_bytes() for m in self._immutables)
            bloom = 0
            resident = 0
            for component in self._components:
                component_bloom = component.bloom_bytes()
                bloom += component_bloom
                resident += component.memory_bytes() - component_bloom
        return active, immutable, bloom, resident

    def memory_bytes(self) -> int:
        """Total accounted footprint across every pool."""
        return sum(self.memory_breakdown())

    @property
    def fully_flushed(self) -> bool:
        """True when every acknowledged write is in a disk component
        (no active-memtable records, no rotated memtables pending) --
        the condition under which a shared WAL may truncate."""
        with self._lock:
            return not self.memtable and not self._immutables

    def flush(
        self, txn: int | None = None, run_merge: bool = True
    ) -> DiskComponent | None:
        """Persist the in-memory component(s); returns the newest disk
        component built, or ``None`` when there was nothing to flush.

        Rotates the active memtable, then drains the immutable queue
        inline -- so on the default synchronous scheduler this is the
        same one-memtable-one-component operation it always was, while
        under a background scheduler it doubles as the drain-everything
        barrier.  With a manifest attached each flush is two-phase: a
        begin entry precedes the build (so a half-built file is
        recognisably an orphan) and the commit entry installs the sealed
        component.  ``txn`` stamps the commit with a dataset flush
        transaction; ``run_merge=False`` defers merge-policy evaluation
        so the dataset can commit the transaction across all its trees
        first.
        """
        self.rotate()
        component: DiskComponent | None = None
        while self.immutable_count:
            component = self.flush_one_immutable(txn)
        if run_merge:
            self._maybe_merge()
        return component

    def flush_one_immutable(self, txn: int | None = None) -> DiskComponent:
        """Build and install a disk component from the oldest rotated
        memtable (the background flush task body; also the inline drain
        step of :meth:`flush`)."""
        with self._lock:
            if not self._immutables:
                raise StorageError(
                    f"no immutable memtable to flush in LSM tree {self.name!r}"
                )
            memtable = self._immutables[0]
        seq_range = memtable.seqnum_range
        assert seq_range is not None
        if self._wal is not None:
            self._wal.sync()
        if self._manifest is not None:
            self._manifest.begin("flush", self.name, txn=txn)
        batch = self.write_batch_size
        with span("lsm.flush", self._obs):
            component = self._write_component(
                LSMEventType.FLUSH,
                ComponentId(*seq_range),
                stream=(memtable.sorted_records() if batch is None else None),
                chunks=(
                    memtable.sorted_columnar_chunks(batch)
                    if batch is not None
                    else None
                ),
                expected_records=len(memtable),
            )
            self._fire("flush.build")
            if self._manifest is not None:
                self._manifest.commit(
                    "flush", self.name, self._descriptor(component), txn=txn
                )
            with self._lock:
                self._immutables.pop(0)
                self._components.insert(0, component)
            self.flush_count += 1
            self._m_flush.inc()
            self._g_components.set(len(self._components))
        if self._wal is not None:
            self._maybe_truncate_wal()
        return component

    def _maybe_truncate_wal(self) -> None:
        # Truncation is safe only once every acknowledged write is in a
        # disk component: with rotated memtables (or a refilled active
        # one) still pending, the log must keep covering them.  Replay
        # skips records <= max_flushed_seqnum, so deferring truncation
        # costs space, never correctness.
        assert self._wal is not None
        with self._lock:
            quiesced = not self.memtable and not self._immutables
        if quiesced:
            self._wal.truncate()

    def bulkload(
        self,
        records: Iterable[Record],
        expected_records: int,
        txn: int | None = None,
    ) -> DiskComponent:
        """Initial load of a sorted matter-record stream into an empty tree.

        The stream must be strictly sorted by key and free of
        anti-matter (there is nothing on disk to cancel yet).
        """
        if self._components or self.memtable or self._immutables:
            raise BulkloadError(
                f"bulkload into non-empty LSM tree {self.name!r}"
            )
        batch = self.write_batch_size

        def stamped() -> Iterator[Record]:
            for record in records:
                if record.antimatter:
                    raise BulkloadError("bulkload stream contains anti-matter")
                yield Record.matter(
                    record.key, record.value, seqnum=self.sequence.next()
                )

        def stamped_chunks() -> Iterator[ColumnarChunk]:
            # The columnar hot lane: the input records are read once
            # into key/value columns and the whole chunk is stamped
            # with one seqnum reservation -- no per-row Record is ever
            # allocated, yet the seqnums (and therefore the component)
            # are identical to the per-record oracle path above.
            iterator = iter(records)
            while True:
                keys: list[Any] = []
                values: list[Any] = []
                for record in itertools.islice(iterator, batch):
                    if record.antimatter:
                        raise BulkloadError(
                            "bulkload stream contains anti-matter"
                        )
                    keys.append(record.key)
                    values.append(record.value)
                if not keys:
                    return
                yield ColumnarChunk.from_columns(
                    keys, values, seqnums=self.sequence.reserve(len(keys))
                )

        start_seq = self.sequence.last + 1
        if self._manifest is not None:
            self._manifest.begin("bulkload", self.name, txn=txn)
        with span("lsm.bulkload", self._obs):
            component = self._write_component(
                LSMEventType.BULKLOAD,
                # Placeholder id; fixed below once seqnums are known.
                None,
                stream=(stamped() if batch is None else None),
                chunks=(stamped_chunks() if batch is not None else None),
                expected_records=expected_records,
            )
            end_seq = self.sequence.last
            if end_seq < start_seq:  # empty load
                end_seq = start_seq
            component.component_id = ComponentId(start_seq, end_seq)
            self._fire("bulkload.build")
            if self._manifest is not None:
                self._manifest.commit(
                    "bulkload", self.name, self._descriptor(component), txn=txn
                )
            with self._lock:
                self._components.insert(0, component)
            self._m_bulkload.inc()
            self._g_components.set(len(self._components))
        return component

    def merge(self, components: list[DiskComponent]) -> DiskComponent:
        """Merge a contiguous (in recency) run of disk components.

        Anti-matter reconciles away only when the run includes the
        oldest component; otherwise tombstones are carried into the
        merged component because still-older components may contain the
        records they cancel.
        """
        if not components:
            raise StorageError("merge of zero components")
        with self._lock:
            indices = sorted(self._components.index(c) for c in components)
            if indices != list(range(indices[0], indices[-1] + 1)):
                raise StorageError(
                    "merged components must be contiguous in recency"
                )
            includes_oldest = indices[-1] == len(self._components) - 1
            ordered = [self._components[i] for i in indices]  # newest first

        merged_stream = reconcile(
            merge_streams([c.scan() for c in ordered]),
            keep_antimatter=not includes_oldest,
        )
        replaced_files: tuple[int, ...] = ()
        if self._manifest is not None:
            replaced_files = tuple(c.btree.file_id for c in ordered)
            self._manifest.begin(
                "merge", self.name, payload={"inputs": list(replaced_files)}
            )
        with span("lsm.merge", self._obs):
            component = self._write_component(
                LSMEventType.MERGE,
                ComponentId.merged([c.component_id for c in ordered]),
                merged_stream,
                expected_records=sum(c.record_count for c in ordered),
                merged_components=tuple(ordered),
                pacer=self.merge_pacer,
            )
            self._fire("merge.build")
            if self._manifest is not None:
                self._manifest.commit(
                    "merge",
                    self.name,
                    self._descriptor(component),
                    replaces=replaced_files,
                )
            # The replacement is durable; a crash before the in-memory
            # splice must recover the merged component from the manifest.
            self._fire("merge.splice")
            # Splice the new component in place of the merged run --
            # atomically under the tree lock, so a concurrent reader
            # pinning a snapshot sees either the full run or its
            # replacement, never a half-spliced list.  Indices are
            # recomputed: a background flush may have installed newer
            # components at the head since selection.
            with self._lock:
                start = self._components.index(ordered[0])
                self._components[start : start + len(ordered)] = [component]
            for old in ordered:
                old.mark_merged()
            self.event_bus.notify_replaced(self.name, tuple(ordered), component)
            # The commit made the replacement durable; the old files are
            # garbage either way, so a crash here leaves orphans for
            # recovery to GC rather than dangling live components.
            self._fire("merge.cleanup")
            for old in ordered:
                old.destroy()
            self.merge_count += 1
            self._m_merge.inc()
            self._g_components.set(len(self._components))
        return component

    def _maybe_merge(self) -> None:
        while self.merge_once():
            pass

    def merge_once(self) -> DiskComponent | None:
        """Ask the policy for one merge (through its in-flight slot
        accounting) and run it; returns the merged component or ``None``
        when no merge is warranted.  The background merge continuation
        calls this once per task so other lanes interleave between
        merges."""
        selected = self.merge_policy.acquire_merge(self.components)
        if not selected:
            return None
        try:
            return self.merge(selected)
        finally:
            self.merge_policy.release_merge(selected)

    def run_pending_merges(self) -> None:
        """Evaluate the merge policy now (used after a dataset flush
        transaction commits, where per-tree flushes deferred merging)."""
        self._maybe_merge()

    def _descriptor(self, component: DiskComponent) -> ComponentDescriptor:
        return ComponentDescriptor(
            tree=self.name,
            min_seq=component.component_id.min_seq,
            max_seq=component.component_id.max_seq,
            matter_count=component.matter_count,
            antimatter_count=component.antimatter_count,
            expected_records=component.expected_records,
            btree=component.btree.describe(),
            ordinal=-1,  # assigned by manifest replay, unused on write
        )

    # -- recovery ----------------------------------------------------------

    @property
    def max_flushed_seqnum(self) -> int:
        """Largest sequence number durable in a disk component (``-1``
        when the tree has none); WAL replay skips older entries."""
        if not self._components:
            return -1
        return max(c.component_id.max_seq for c in self._components)

    def install_recovered(
        self, descriptors: "list[ComponentDescriptor]"
    ) -> None:
        """Reinstate disk components from manifest descriptors
        (given newest first, as :class:`~repro.lsm.manifest.ManifestState`
        keeps them) after a crash.

        Components are *constructed* in manifest-ordinal order so the
        fresh uids they draw preserve the creation-order ranking the
        crashed process had -- the statistics catalog is compared by uid
        rank within an index/partition, never by raw uid.  Bloom filters
        are rebuilt by scanning, sized with the same ``expected_records``
        the original build used.
        """
        if self._components or self.memtable or self._immutables:
            raise RecoveryError(
                f"install_recovered on non-empty LSM tree {self.name!r}"
            )
        built: dict[int, DiskComponent] = {}
        for descriptor in sorted(descriptors, key=lambda d: d.ordinal):
            if descriptor.tree != self.name:
                raise RecoveryError(
                    f"descriptor for tree {descriptor.tree!r} handed to "
                    f"LSM tree {self.name!r}"
                )
            btree = btree_from_descriptor(self.disk, descriptor.btree)
            bloom = None
            if self.bloom_fpp is not None:
                bloom = BloomFilter.for_capacity(
                    max(1, descriptor.expected_records), self.bloom_fpp
                )
                for record in btree.iter_all():
                    bloom.add(record.key)
            built[descriptor.ordinal] = DiskComponent(
                ComponentId(descriptor.min_seq, descriptor.max_seq),
                btree,
                matter_count=descriptor.matter_count,
                antimatter_count=descriptor.antimatter_count,
                bloom=bloom,
                expected_records=descriptor.expected_records,
            )
            self._m_recovered.inc()
        self._components = [built[d.ordinal] for d in descriptors]
        self._g_components.set(len(self._components))

    def _write_component(
        self,
        event_type: LSMEventType,
        component_id: ComponentId | None,
        stream: Iterable[Record] | None = None,
        expected_records: int = 0,
        merged_components: tuple[DiskComponent, ...] = (),
        chunks: "Iterable[ColumnarChunk | list[Record]] | None" = None,
        pacer: MergePacer | None = None,
    ) -> DiskComponent:
        context = ComponentWriteContext(
            event_type=event_type,
            index_name=self.name,
            expected_records=expected_records,
            key_extractor=self.key_extractor,
            merged_components=merged_components,
        )
        sinks = self.event_bus.open_sinks(context)
        counts = {"matter": 0, "anti": 0}
        bloom = (
            BloomFilter.for_capacity(max(1, expected_records), self.bloom_fpp)
            if self.bloom_fpp is not None
            else None
        )

        live_sinks = list(sinks)
        batch = self.write_batch_size

        if batch is not None:
            if chunks is None:
                assert stream is not None
                chunks = columnar_chunk_stream(stream, batch)
            btree = self._build_index_chunked(
                chunks, counts, bloom, live_sinks, pacer
            )
        else:
            if stream is None:
                assert chunks is not None
                # Per-record compat mode fed columnar chunks: flatten
                # through the memoized materialisation so each chunk
                # builds its Record objects at most once.
                stream = (
                    record
                    for chunk in chunks
                    for record in (
                        chunk.records()
                        if isinstance(chunk, ColumnarChunk)
                        else chunk
                    )
                )
            btree = self._build_index_per_record(
                stream, counts, bloom, live_sinks, pacer
            )
        component = DiskComponent(
            component_id if component_id is not None else ComponentId(0, 0),
            btree,
            matter_count=counts["matter"],
            antimatter_count=counts["anti"],
            bloom=bloom,
        )
        # Bulk-increment once per component so the per-record loop above
        # never touches the registry.
        self._m_matter.inc(counts["matter"])
        self._m_anti.inc(counts["anti"])
        self._finish_sinks(live_sinks, component)
        return component

    def _build_index_per_record(
        self,
        stream: Iterable[Record],
        counts: dict[str, int],
        bloom: BloomFilter | None,
        live_sinks: list[RecordSink],
        pacer: MergePacer | None = None,
    ) -> Any:
        """The legacy per-record tap/build path (compatibility fallback)."""

        def tapped() -> Iterator[Record]:
            for record in stream:
                if pacer is not None:
                    pacer.pace(1)
                if record.antimatter:
                    counts["anti"] += 1
                else:
                    counts["matter"] += 1
                if bloom is not None:
                    bloom.add(record.key)
                for sink in list(live_sinks):
                    try:
                        sink.accept(record)
                    except Exception:
                        live_sinks.remove(sink)
                        self.observer_failures += 1
                        self._m_observer_failures.inc()
                yield record

        return self.index_builder(
            self.disk, tapped(), leaf_capacity=self.leaf_capacity, fanout=self.fanout
        )

    def _build_index_chunked(
        self,
        chunks: "Iterable[ColumnarChunk | list[Record]]",
        counts: dict[str, int],
        bloom: BloomFilter | None,
        live_sinks: list[RecordSink],
        pacer: MergePacer | None = None,
    ) -> Any:
        """The batched hot path: observers and the Bloom filter see one
        chunk at a time, and chunk-aware index builders fill leaves by
        slicing columns.  Chunks are normally :class:`ColumnarChunk`;
        plain ``list[Record]`` chunks remain accepted for callers of the
        pre-columnar chunk protocol.  Observer fault isolation stays at
        chunk granularity: a sink that raises is dropped for the rest of
        the write, exactly as on the per-record path."""

        def tapped_chunks() -> "Iterator[ColumnarChunk | list[Record]]":
            for chunk in chunks:
                # Pacing happens at chunk boundaries: the merge yields
                # the worker (and the GIL) here while it sleeps off its
                # token deficit, never mid-chunk.  Bytes are unaffected.
                if pacer is not None:
                    pacer.pace(len(chunk))
                if isinstance(chunk, ColumnarChunk):
                    anti = chunk.antimatter_count
                    keys = chunk.keys_list()
                    self._m_col_chunks.inc()
                    self._h_col_chunk_records.observe(len(chunk))
                else:
                    anti = 0
                    for record in chunk:
                        if record.antimatter:
                            anti += 1
                    keys = [record.key for record in chunk]
                counts["anti"] += anti
                counts["matter"] += len(chunk) - anti
                if bloom is not None:
                    bloom.add_all(keys)
                for sink in list(live_sinks):
                    try:
                        accept_batch(sink, chunk)
                    except Exception:
                        live_sinks.remove(sink)
                        self.observer_failures += 1
                        self._m_observer_failures.inc()
                yield chunk

        if self._index_chunk_builder is not None:
            return self._index_chunk_builder(
                self.disk,
                tapped_chunks(),
                leaf_capacity=self.leaf_capacity,
                fanout=self.fanout,
            )
        # Custom builders without a chunk twin receive a flat record
        # stream; the memoized materialisation keeps the cost to one
        # Record build per chunk even when an observer also fell back.
        flattened = (
            record
            for chunk in tapped_chunks()
            for record in (
                chunk.records() if isinstance(chunk, ColumnarChunk) else chunk
            )
        )
        return self.index_builder(
            self.disk,
            flattened,
            leaf_capacity=self.leaf_capacity,
            fanout=self.fanout,
        )

    def _finish_sinks(
        self, sinks: list[RecordSink], component: DiskComponent
    ) -> None:
        for sink in sinks:
            try:
                sink.finish(component)
            except Exception:
                self.observer_failures += 1
                self._m_observer_failures.inc()

    # -- read path ---------------------------------------------------------

    @property
    def components(self) -> list[DiskComponent]:
        """Live disk components, newest first (copy; do not mutate)."""
        with self._lock:
            return list(self._components)

    def get(self, key: Any) -> Any | None:
        """Point lookup of the live value under ``key`` (None if absent
        or deleted).

        Memory components are probed under the tree lock; the disk
        components of the snapshot are pinned so a concurrent merge can
        mark them superseded but never delete their pages mid-lookup.
        """
        with self._lock:
            record = self.memtable.get(key)
            if record is None:
                for immutable in reversed(self._immutables):  # newest first
                    record = immutable.get(key)
                    if record is not None:
                        break
            snapshot: list[DiskComponent] = []
            if record is None:
                snapshot = list(self._components)
                for component in snapshot:
                    component.pin()
        if record is None:
            try:
                for component in snapshot:
                    record = component.lookup(key)
                    if record is not None:
                        break
            finally:
                for component in snapshot:
                    component.unpin()
        if record is None or record.antimatter:
            return None
        return record.value

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Live records with keys in ``[lo, hi]``, reconciled across all
        components (anti-matter cancels).

        The snapshot is consistent: memory-component ranges materialise
        under the tree lock (the AVL map is not safe under a concurrent
        writer) and disk components stay pinned until the scan finishes.
        """
        with self._lock:
            memory_runs: list[list[Record]] = [list(self.memtable.scan(lo, hi))]
            for immutable in reversed(self._immutables):  # newest first
                memory_runs.append(list(immutable.scan(lo, hi)))
            snapshot = list(self._components)
            for component in snapshot:
                component.pin()

        def iterate() -> Iterator[Record]:
            try:
                streams: list[Iterator[Record]] = [
                    iter(run) for run in memory_runs
                ]
                streams.extend(c.scan(lo, hi) for c in snapshot)
                yield from reconcile(
                    merge_streams(streams), keep_antimatter=False
                )
            finally:
                for component in snapshot:
                    component.unpin()

        return iterate()

    def count_range(self, lo: Any = None, hi: Any = None) -> int:
        """True cardinality of a range (the evaluation ground truth)."""
        return sum(1 for _record in self.scan(lo, hi))

    def __len__(self) -> int:
        return self.count_range()
