"""Merge policies.

"The frequency of merges and the number of components deemed to be
combined is determined by the merge policy" (Appendix A).  Policies are
consulted after every flush; they pick a *contiguous* (in recency) run
of components to merge, or nothing.  The policies used in the paper's
evaluation are implemented, plus AsterixDB's default prefix policy:

* :class:`NoMergePolicy` -- never merge (used in Fig. 8 to force the
  maximum number of components);
* :class:`ConstantMergePolicy` -- cap the number of disk components at
  ``max_components``, merging all of them when the cap is exceeded
  (the paper's "Constant" policy, Figs. 6 and 9);
* :class:`StackMergePolicy` -- merge the newest ``stack_size`` components
  whenever that many have accumulated (a simple tiered scheme).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import ConfigurationError
from repro.lsm.component import DiskComponent
from repro.obs.registry import get_registry

__all__ = [
    "MergePolicy",
    "NoMergePolicy",
    "ConstantMergePolicy",
    "StackMergePolicy",
    "PrefixMergePolicy",
]


class MergePolicy(ABC):
    """Decides which disk components to merge after a flush.

    ``select_merge`` is the pure decision function subclasses implement;
    it assumes serial calls.  Concurrent schedulers must instead go
    through :meth:`acquire_merge` / :meth:`release_merge`, which track
    the components of in-flight merges so no component is ever selected
    by two overlapping merges.
    """

    def __init__(self) -> None:
        self._in_flight: set[int] = set()  # uids of components mid-merge
        self._slot_lock = threading.Lock()
        self._g_in_flight = get_registry().gauge("merge.slots.in_flight")

    @abstractmethod
    def select_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        """Pick a contiguous run to merge from ``components`` (ordered
        newest first), or ``None`` when no merge is warranted."""

    def acquire_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        """Concurrency-safe selection: consult :meth:`select_merge` on
        the newest-first prefix that stops at the first component already
        claimed by an in-flight merge (a policy may only pick contiguous
        runs, so nothing past a busy component is eligible), and claim
        the selection.  Callers must pair every non-``None`` return with
        exactly one :meth:`release_merge`.
        """
        with self._slot_lock:
            eligible: list[DiskComponent] = []
            for component in components:  # newest first
                if component.uid in self._in_flight:
                    break
                eligible.append(component)
            selected = self.select_merge(eligible)
            if selected:
                self._in_flight.update(c.uid for c in selected)
                self._g_in_flight.inc(len(selected))
                return selected
            return None

    def release_merge(self, components: Sequence[DiskComponent]) -> None:
        """Return the slots claimed by :meth:`acquire_merge` (called when
        the merge completes or fails)."""
        with self._slot_lock:
            released = 0
            for component in components:
                if component.uid in self._in_flight:
                    self._in_flight.discard(component.uid)
                    released += 1
            if released:
                self._g_in_flight.inc(-released)

    @property
    def in_flight_count(self) -> int:
        """Components currently claimed by unfinished merges."""
        with self._slot_lock:
            return len(self._in_flight)


class NoMergePolicy(MergePolicy):
    """Never merges; the component count grows without bound."""

    def select_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        return None


class ConstantMergePolicy(MergePolicy):
    """Keeps at most ``max_components`` disk components.

    When a flush pushes the count past the cap, all components are
    merged into one -- mirroring AsterixDB's constant merge policy the
    paper uses to control the number of components per partition.
    """

    def __init__(self, max_components: int) -> None:
        super().__init__()
        if max_components < 1:
            raise ConfigurationError(
                f"max_components must be >= 1, got {max_components}"
            )
        self.max_components = max_components

    def select_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        if len(components) > self.max_components:
            return list(components)
        return None


class PrefixMergePolicy(MergePolicy):
    """AsterixDB's default size-aware policy.

    Looks at the (newest-first) component sequence and merges the
    longest run of *small* components -- each no larger than
    ``max_mergable_pages`` -- once more than ``max_tolerance_count`` of
    them have accumulated.  Large components (typically the products of
    earlier merges) are left alone, so write amplification stays
    bounded while the component count cannot grow without limit.
    """

    def __init__(
        self, max_mergable_pages: int, max_tolerance_count: int
    ) -> None:
        super().__init__()
        if max_mergable_pages < 1:
            raise ConfigurationError(
                f"max_mergable_pages must be >= 1, got {max_mergable_pages}"
            )
        if max_tolerance_count < 2:
            raise ConfigurationError(
                f"max_tolerance_count must be >= 2, got {max_tolerance_count}"
            )
        self.max_mergable_pages = max_mergable_pages
        self.max_tolerance_count = max_tolerance_count

    def select_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        run: list[DiskComponent] = []
        for component in components:  # newest first
            if component.btree.num_pages <= self.max_mergable_pages:
                run.append(component)
            else:
                break  # a large component ends the mergeable run
        if len(run) > self.max_tolerance_count:
            return run
        return None


class StackMergePolicy(MergePolicy):
    """Merges the newest ``stack_size`` components once they accumulate.

    A minimal tiered policy: useful in tests and ablations to exercise
    *partial* merges, where anti-matter must be carried forward because
    older components remain outside the merge.
    """

    def __init__(self, stack_size: int) -> None:
        super().__init__()
        if stack_size < 2:
            raise ConfigurationError(
                f"stack_size must be >= 2, got {stack_size}"
            )
        self.stack_size = stack_size

    def select_merge(
        self, components: Sequence[DiskComponent]
    ) -> list[DiskComponent] | None:
        if len(components) >= self.stack_size:
            return list(components[: self.stack_size])
        return None
