"""Columnar chunks: the write path's record representation.

The batched ingestion path (PR 3) moved the component-write pipeline
from one record at a time to chunk at a time, but each chunk was still
a ``list[Record]`` -- every stage paid per-record attribute walks and,
on the bulkload path, a fresh ``Record`` allocation per input row.
This module replaces that representation with :class:`ColumnarChunk`:
one key column, one value column, one anti-matter column and one
seqnum column per chunk, flowing end-to-end through

    memtable ``sorted_columnar_chunks`` / bulkload stamping
      -> ``LSMTree._build_index_chunked`` (bloom + observer taps)
      -> ``build_btree_chunks`` (columnar leaf packing)
      -> ``StatisticsCollector`` / ``SynopsisBuilder.add_many``

Integer key columns additionally freeze into a typed ``array('q')``
buffer, which downstream consumers may wrap in a zero-copy numpy view
when the optional numpy backend is enabled (``repro.util.npbackend``).

The full contract -- column layout, dtype rules, ownership, when the
per-record fallback engages, and how the oracle equivalence against the
``write_batch_size=None`` path is verified -- is docs/DATAPATH.md.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.lsm.record import Record
from repro.obs.registry import get_registry
from repro.util.npbackend import INT64_TYPECODE

__all__ = [
    "ColumnarChunk",
    "columnar_chunk_stream",
    "register_summary_extractor",
    "split_matter_anti",
]


class ColumnarChunk:
    """One immutable slice of a key-sorted component-write stream.

    Columns (see docs/DATAPATH.md for the full layout rules):

    * ``typed_keys`` -- ``array('q')`` of the keys, present only when
      every key fits a signed 64-bit integer; the canonical key storage
      for primary indexes.  ``None`` for non-integer keys (tuples,
      strings), in which case the Python-object key column is primary.
    * ``values`` -- payload column, or ``None`` meaning *every* value
      is ``None`` (secondary-index entries, tombstone-only chunks).
    * ``anti`` -- per-row anti-matter flags, or ``None`` meaning the
      chunk is pure matter (the common flush/bulkload case);
      ``antimatter_count`` is precomputed either way.
    * ``seqnums`` -- per-row sequence numbers; a ``range`` when the
      rows were bulk-stamped, which is both the cheapest and the most
      compressible representation.

    Chunks are write-once: no consumer may mutate a column (numpy views
    over ``typed_keys`` share its buffer).  ``records()`` is the escape
    hatch back to ``Record`` objects for consumers that predate the
    columnar contract -- it materialises lazily, memoizes (so the cost
    is paid at most once per chunk however many consumers iterate), and
    counts one ``ingest.columnar.fallbacks`` tick unless the records
    were supplied at construction (the memtable path, where they
    already existed).
    """

    __slots__ = (
        "_keys",
        "typed_keys",
        "values",
        "anti",
        "antimatter_count",
        "seqnums",
        "_records",
        "_length",
    )

    def __init__(
        self,
        keys: list[Any] | None,
        typed_keys: "array[int] | None",
        values: list[Any] | None,
        anti: list[bool] | None,
        antimatter_count: int,
        seqnums: Sequence[int],
        records: list[Record] | None = None,
    ) -> None:
        self._keys = keys
        self.typed_keys = typed_keys
        self.values = values
        self.anti = anti
        self.antimatter_count = antimatter_count
        self.seqnums = seqnums
        self._records = records
        self._length = len(keys) if keys is not None else len(typed_keys)  # type: ignore[arg-type]

    # -- construction ----------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "ColumnarChunk":
        """Columnarise an existing record slice (flush/merge paths).

        The source records are retained as the materialisation memo --
        they exist anyway, so ``records()`` on such a chunk is free and
        never counts as a fallback.
        """
        records = list(records)
        keys = [record.key for record in records]
        anti = [record.antimatter for record in records]
        antimatter_count = sum(anti)
        values = [record.value for record in records]
        return cls(
            keys,
            _freeze_keys(keys),
            values if any(value is not None for value in values) else None,
            anti if antimatter_count else None,
            antimatter_count,
            [record.seqnum for record in records],
            records=records,
        )

    @classmethod
    def from_columns(
        cls,
        keys: list[Any],
        values: list[Any] | None = None,
        seqnums: Sequence[int] | None = None,
        anti: list[bool] | None = None,
    ) -> "ColumnarChunk":
        """Build a chunk directly from columns (the bulkload hot path,
        where no ``Record`` objects need ever exist).

        ``values=None`` declares an all-``None`` value column and
        ``anti=None`` a pure-matter chunk; ``seqnums`` defaults to all
        zeros (unstamped), and a ``range`` is the preferred form for
        bulk-stamped chunks.
        """
        if values is not None and not any(
            value is not None for value in values
        ):
            values = None
        antimatter_count = sum(anti) if anti is not None else 0
        if not antimatter_count:
            anti = None
        return cls(
            keys,
            _freeze_keys(keys),
            values,
            anti,
            antimatter_count,
            seqnums if seqnums is not None else range(len(keys)),
        )

    # -- accessors -------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def keys_list(self) -> list[Any]:
        """The key column as Python objects (lazily thawed from the
        typed buffer; ``array('q')`` iteration yields plain ints, so
        the thaw changes representation, never values)."""
        if self._keys is None:
            assert self.typed_keys is not None
            self._keys = self.typed_keys.tolist()
        return self._keys

    def payload_column(self, field: str) -> list[Any]:
        """Per-row ``value[field]`` with the same ``None`` semantics as
        the per-record attribute extractor: ``None`` for tombstones,
        non-dict payloads and missing fields."""
        values = self.values
        if values is None:
            return [None] * self._length
        return [
            value.get(field) if isinstance(value, dict) else None
            for value in values
        ]

    def records(self) -> list[Record]:
        """Materialise the chunk as ``Record`` objects (memoized).

        This is the per-record compatibility fallback: index builders
        without a columnar twin and observer sinks without columnar
        awareness iterate the chunk, which lands here.  Each chunk
        materialises at most once -- later callers share the memo --
        and each lazy materialisation counts one
        ``ingest.columnar.fallbacks`` tick (docs/OBSERVABILITY.md).
        """
        if self._records is None:
            get_registry().counter("ingest.columnar.fallbacks").inc()
            keys = self.keys_list()
            values = self.values
            anti = self.anti
            seqnums = self.seqnums
            if values is None and anti is None:
                self._records = [
                    Record(keys[i], None, False, seqnums[i])
                    for i in range(self._length)
                ]
            else:
                self._records = [
                    Record(
                        keys[i],
                        values[i] if values is not None else None,
                        anti[i] if anti is not None else False,
                        seqnums[i],
                    )
                    for i in range(self._length)
                ]
        return self._records

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records())


def _freeze_keys(keys: list[Any]) -> "array[int] | None":
    """The typed twin of a key column, or ``None`` for keys that are
    not int64-representable (tuple/string keys keep the object column
    as primary -- the dtype rule of docs/DATAPATH.md)."""
    try:
        return array(INT64_TYPECODE, keys)
    except (TypeError, OverflowError):
        return None


def columnar_chunk_stream(
    stream: Iterable[Record], chunk_size: int
) -> Iterator[ColumnarChunk]:
    """Drain a record stream into consecutive columnar chunks.

    The columnar twin of :func:`repro.lsm.cursor.chunk_stream`, used
    where the source is inherently per-record (the merge cursor's
    reconciled stream); ordering is preserved exactly.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    iterator = iter(stream)
    while True:
        chunk = list(itertools.islice(iterator, chunk_size))
        if not chunk:
            return
        yield ColumnarChunk.from_records(chunk)


# -- summary-column extraction -------------------------------------------
#
# The statistics collector's per-record path maps each record through a
# value extractor (record -> summarised value).  To keep the columnar
# path extractor-free, known extractor *functions* register a column
# twin here (chunk -> value column); attribute extractors instead carry
# a ``payload_field`` attribute naming the payload key they read.  An
# extractor with neither registration falls back to ``chunk.records()``.

_SUMMARY_COLUMNS: dict[Any, Callable[[ColumnarChunk], list[Any]]] = {}
_RAW_KEY_EXTRACTORS: set[Any] = set()


def register_summary_extractor(
    extractor: Callable[[Record], Any],
    column_fn: Callable[[ColumnarChunk], list[Any]] | None = None,
    *,
    raw_key: bool = False,
) -> None:
    """Register the column twin of a per-record value extractor.

    ``raw_key=True`` declares that ``extractor(record)`` is exactly
    ``record.key``, unlocking the zero-copy fast path: a pure-matter
    chunk with typed keys feeds its ``array('q')`` buffer straight into
    ``SynopsisBuilder.add_many``.
    """
    if raw_key:
        _RAW_KEY_EXTRACTORS.add(extractor)
        column_fn = ColumnarChunk.keys_list
    if column_fn is None:
        raise ValueError("register_summary_extractor needs a column_fn")
    _SUMMARY_COLUMNS[extractor] = column_fn


_NO_VALUES: tuple[Any, ...] = ()


def split_matter_anti(
    chunk: ColumnarChunk, extractor: Callable[[Record], Any]
) -> tuple[Sequence[Any], Sequence[Any], int] | None:
    """Split a chunk into (matter values, anti values, skipped count)
    for one statistics registration, without materialising records.

    Row order is preserved within each class and ``None`` values are
    skipped, exactly mirroring the per-record tap loop -- so feeding
    the results to ``add_many`` is bit-identical to per-record ``add``
    calls.  Returns ``None`` for extractors with no registered column
    twin and no ``payload_field`` tag; the caller then falls back to
    ``chunk.records()``.
    """
    column_fn = _SUMMARY_COLUMNS.get(extractor)
    if column_fn is None:
        field = getattr(extractor, "payload_field", None)
        if field is None:
            return None
        column: Sequence[Any] = chunk.payload_column(field)
    else:
        if (
            chunk.anti is None
            and chunk.typed_keys is not None
            and extractor in _RAW_KEY_EXTRACTORS
        ):
            # Pure matter, int keys, raw-key registration: the typed
            # column *is* the matter value sequence; no copy at all.
            return chunk.typed_keys, _NO_VALUES, 0
        column = column_fn(chunk)
    anti = chunk.anti
    matter_values: list[Any] = []
    anti_values: list[Any] = []
    skipped = 0
    if anti is None:
        for value in column:
            if value is None:
                skipped += 1
            else:
                matter_values.append(value)
    else:
        for value, is_anti in zip(column, anti):
            if value is None:
                skipped += 1
            elif is_anti:
                anti_values.append(value)
            else:
                matter_values.append(value)
    return matter_values, anti_values, skipped
