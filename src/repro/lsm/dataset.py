"""Datasets: a primary LSM index plus LSM-ified secondary indexes.

Mirrors AsterixDB's storage design (paper Section 3): the dataset's
records live in a primary LSM B-tree keyed by the primary key (PK), and
each secondary index is its own LSM B-tree whose entries are
``(SK, PK)`` pairs -- or ``(SK1, SK2, PK)`` triples for composite-key
indexes (the paper's Section 5 future work, served by the 2-D synopses
in :mod:`repro.synopses.multidim`).  Updates and deletes write
anti-matter into the secondary indexes to cancel the entries of older
record versions, so a reconciled secondary scan always reflects the
live data.

All indexes of a dataset share one sequence generator and one event bus
and are flushed together, which keeps their component boundaries (and
therefore per-component statistics) aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import BulkloadError, QueryError, StorageError
from repro.lsm.component import DiskComponent
from repro.lsm.events import EventBus
from repro.lsm.merge_policy import MergePolicy, NoMergePolicy
from repro.lsm.record import Record
from repro.lsm.tree import (
    DEFAULT_MEMTABLE_CAPACITY,
    DEFAULT_WRITE_BATCH_SIZE,
    LSMTree,
    SequenceGenerator,
)
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain

__all__ = [
    "IndexSpec",
    "CompositeIndexSpec",
    "SpatialIndexSpec",
    "Dataset",
    "secondary_index_name",
]

_NEG = float("-inf")
_POS = float("inf")


@dataclass(frozen=True)
class IndexSpec:
    """Declaration of one single-field secondary B-tree index.

    Attributes:
        name: Index name (unique within the dataset).
        field: Record field the index is built on (an integer field).
        domain: Value domain of the field, used by synopsis builders.
    """

    name: str
    field: str
    domain: Domain

    @property
    def fields(self) -> tuple[str, ...]:
        """Indexed fields (length 1)."""
        return (self.field,)

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The secondary-key part of this index's entry for a record."""
        return (document[self.field],)


@dataclass(frozen=True)
class CompositeIndexSpec:
    """Declaration of a two-field composite-key B-tree index.

    Entries are ordered lexicographically by ``(field_1, field_2, PK)``,
    which is exactly the order the 2-D synopsis builders require.
    """

    name: str
    fields: tuple[str, str]
    domains: tuple[Domain, Domain]

    def __post_init__(self) -> None:
        if len(self.fields) != 2 or len(self.domains) != 2:
            raise StorageError(
                "composite indexes support exactly two fields"
            )

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The secondary-key part of this index's entry for a record."""
        return (document[self.fields[0]], document[self.fields[1]])


@dataclass(frozen=True)
class SpatialIndexSpec:
    """Declaration of an LSM-ified R-tree index over two point fields.

    Entries are ``(x, y, PK)`` triples; components are
    :class:`~repro.lsm.rtree.DiskRTree` structures, so rectangle
    queries descend MBRs while the LSM merge machinery still sees the
    lexicographically ordered stream it requires (the paper's Section 5
    R-tree future work).
    """

    name: str
    fields: tuple[str, str]
    domains: tuple[Domain, Domain]

    def __post_init__(self) -> None:
        if len(self.fields) != 2 or len(self.domains) != 2:
            raise StorageError("spatial indexes support exactly two fields")

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The (x, y) part of this index's entry for a record."""
        return (document[self.fields[0]], document[self.fields[1]])


def secondary_index_name(dataset_name: str, index_name: str) -> str:
    """Fully qualified LSM index name used on event contexts."""
    return f"{dataset_name}.{index_name}"


def _single_key_extractor(record: Record) -> Any:
    """Synopsis value of a (SK, PK) entry: the SK."""
    return record.key[0]


def _composite_key_extractor(record: Record) -> Any:
    """Synopsis value of a (SK1, SK2, PK) entry: the (SK1, SK2) pair."""
    return (record.key[0], record.key[1])


class Dataset:
    """A collection of records with a primary and secondary indexes."""

    def __init__(
        self,
        name: str,
        disk: SimulatedDisk,
        primary_key: str,
        primary_domain: Domain,
        indexes: Iterable[IndexSpec | CompositeIndexSpec | SpatialIndexSpec] = (),
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy: MergePolicy | None = None,
        event_bus: EventBus | None = None,
        write_batch_size: int | None = DEFAULT_WRITE_BATCH_SIZE,
    ) -> None:
        self.name = name
        self.primary_key = primary_key
        self.primary_domain = primary_domain
        self.event_bus = event_bus if event_bus is not None else EventBus()
        self.sequence = SequenceGenerator()
        self.memtable_capacity = memtable_capacity
        self.write_batch_size = write_batch_size
        self._pending_writes = 0
        merge_policy = merge_policy if merge_policy is not None else NoMergePolicy()

        self.primary = LSMTree(
            name=secondary_index_name(name, "primary"),
            disk=disk,
            memtable_capacity=memtable_capacity,
            merge_policy=merge_policy,
            event_bus=self.event_bus,
            sequence=self.sequence,
            auto_flush=False,
            write_batch_size=write_batch_size,
        )
        self.indexes: dict[str, IndexSpec] = {}
        self.composite_indexes: dict[str, CompositeIndexSpec] = {}
        self.spatial_indexes: dict[str, SpatialIndexSpec] = {}
        self._secondary: dict[str, LSMTree] = {}
        for spec in indexes:
            if spec.name in self._secondary:
                raise StorageError(f"duplicate index name {spec.name!r}")
            index_builder = None
            if isinstance(spec, SpatialIndexSpec):
                from repro.lsm.rtree import build_rtree

                self.spatial_indexes[spec.name] = spec
                extractor = _composite_key_extractor
                index_builder = build_rtree
            elif isinstance(spec, CompositeIndexSpec):
                self.composite_indexes[spec.name] = spec
                extractor = _composite_key_extractor
            else:
                self.indexes[spec.name] = spec
                extractor = _single_key_extractor
            self._secondary[spec.name] = LSMTree(
                name=secondary_index_name(name, spec.name),
                disk=disk,
                memtable_capacity=memtable_capacity,
                merge_policy=merge_policy,
                event_bus=self.event_bus,
                sequence=self.sequence,
                key_extractor=extractor,
                auto_flush=False,
                index_builder=index_builder,
                write_batch_size=write_batch_size,
            )

    def _all_specs(
        self,
    ) -> Iterator[IndexSpec | CompositeIndexSpec | SpatialIndexSpec]:
        yield from self.indexes.values()
        yield from self.composite_indexes.values()
        yield from self.spatial_indexes.values()

    # -- write path -------------------------------------------------------

    def insert(self, document: dict[str, Any]) -> None:
        """Insert a new record (the caller guarantees PK uniqueness)."""
        pk = self._pk_of(document)
        seqnum = self.sequence.next()
        self.primary.write_record(Record.matter(pk, document, seqnum=seqnum))
        for spec in self._all_specs():
            self._secondary[spec.name].write_record(
                Record.matter((*spec.key_of(document), pk), seqnum=seqnum)
            )
        self._after_write()

    def insert_many(self, documents: Iterable[dict[str, Any]]) -> int:
        """Insert a batch of new records; returns the number inserted.

        Semantically identical to calling :meth:`insert` per document
        (one sequence number per operation, flush cadence preserved),
        but the per-document Python dispatch is amortised: extractors
        and trees are bound once for the whole batch.
        """
        specs = list(self._all_specs())
        trees = [self._secondary[spec.name] for spec in specs]
        primary_write = self.primary.write_record
        next_seq = self.sequence.next
        inserted = 0
        for document in documents:
            pk = self._pk_of(document)
            seqnum = next_seq()
            primary_write(Record.matter(pk, document, seqnum=seqnum))
            for spec, tree in zip(specs, trees):
                tree.write_record(
                    Record.matter((*spec.key_of(document), pk), seqnum=seqnum)
                )
            inserted += 1
            self._after_write()
        return inserted

    def update(self, document: dict[str, Any]) -> bool:
        """Replace the record with the same PK; returns False when the
        PK does not exist (AsterixDB enforces existence on updates)."""
        pk = self._pk_of(document)
        old = self.primary.get(pk)
        if old is None:
            return False
        seqnum = self.sequence.next()
        self.primary.write_record(Record.matter(pk, document, seqnum=seqnum))
        for spec in self._all_specs():
            old_sk, new_sk = spec.key_of(old), spec.key_of(document)
            if old_sk == new_sk:
                # The existing secondary entry still points at the live
                # record; touching it would double-count the record in
                # per-component statistics.
                continue
            tree = self._secondary[spec.name]
            tree.write_record(Record.anti((*old_sk, pk), seqnum=seqnum))
            tree.write_record(Record.matter((*new_sk, pk), seqnum=seqnum))
        self._after_write()
        return True

    def delete(self, pk: Any) -> bool:
        """Delete by PK; returns False when the PK does not exist."""
        old = self.primary.get(pk)
        if old is None:
            return False
        seqnum = self.sequence.next()
        self.primary.write_record(Record.anti(pk, seqnum=seqnum))
        for spec in self._all_specs():
            self._secondary[spec.name].write_record(
                Record.anti((*spec.key_of(old), pk), seqnum=seqnum)
            )
        self._after_write()
        return True

    def bulkload(self, documents: Iterable[dict[str, Any]]) -> None:
        """Initial load of PK-sorted documents into an empty dataset.

        The primary component is built directly from the stream; each
        secondary index is built from its entries sorted in memory
        (standing in for the sort operator the paper mentions at the
        bottom of AsterixDB's load plan).
        """
        if self.primary.components or self.primary.memtable:
            raise BulkloadError(f"bulkload into non-empty dataset {self.name!r}")
        # Materialise: in AsterixDB the sort operator at the bottom of the
        # load plan has the full input, so the record count is known.
        documents = list(documents)
        secondary_entries: dict[str, list[tuple[Any, ...]]] = {
            spec.name: [] for spec in self._all_specs()
        }

        def primary_stream() -> Iterator[Record]:
            for document in documents:
                pk = self._pk_of(document)
                for spec in self._all_specs():
                    secondary_entries[spec.name].append(
                        (*spec.key_of(document), pk)
                    )
                yield Record.matter(pk, document)

        self.primary.bulkload(primary_stream(), expected_records=len(documents))
        for name, entries in secondary_entries.items():
            entries.sort()
            self._secondary[name].bulkload(
                (Record.matter(key) for key in entries),
                expected_records=len(entries),
            )

    def flush(self) -> list[DiskComponent]:
        """Force-flush all indexes of the dataset together."""
        self._pending_writes = 0
        flushed = []
        for tree in self._all_trees():
            component = tree.flush()
            if component is not None:
                flushed.append(component)
        return flushed

    def _after_write(self) -> None:
        self._pending_writes += 1
        if self._pending_writes >= self.memtable_capacity:
            self.flush()

    # -- read path ----------------------------------------------------------

    def get(self, pk: Any) -> dict[str, Any] | None:
        """Fetch the live record stored under ``pk``."""
        return self.primary.get(pk)

    def secondary_tree(self, index_name: str) -> LSMTree:
        """The LSM tree backing a secondary index (any arity)."""
        try:
            return self._secondary[index_name]
        except KeyError:
            raise QueryError(
                f"dataset {self.name!r} has no index {index_name!r}"
            ) from None

    def scan_secondary(
        self, index_name: str, lo: Any = None, hi: Any = None
    ) -> Iterator[Record]:
        """Live (SK, PK) entries with ``lo <= SK <= hi``, reconciled."""
        if index_name not in self.indexes:
            raise QueryError(
                f"{index_name!r} is not a single-field index of "
                f"{self.name!r}; use scan_composite for composite indexes"
            )
        tree = self.secondary_tree(index_name)
        lo_key = None if lo is None else (lo, _NEG)
        hi_key = None if hi is None else (hi, _POS)
        return tree.scan(lo_key, hi_key)

    def count_secondary_range(self, index_name: str, lo: Any, hi: Any) -> int:
        """True cardinality of ``lo <= SK <= hi`` (ground truth)."""
        return sum(1 for _record in self.scan_secondary(index_name, lo, hi))

    def scan_composite(
        self,
        index_name: str,
        lo_1: Any,
        hi_1: Any,
        lo_2: Any = None,
        hi_2: Any = None,
    ) -> Iterator[Record]:
        """Live composite entries inside the rectangle.

        The B-tree range scan covers the first key component; the
        second component is filtered -- exactly how a composite-key
        index serves rectangle predicates.
        """
        if index_name not in self.composite_indexes:
            raise QueryError(
                f"{index_name!r} is not a composite index of {self.name!r}"
            )
        tree = self.secondary_tree(index_name)
        lo_key = None if lo_1 is None else (lo_1, _NEG, _NEG)
        hi_key = None if hi_1 is None else (hi_1, _POS, _POS)
        for record in tree.scan(lo_key, hi_key):
            second = record.key[1]
            if lo_2 is not None and second < lo_2:
                continue
            if hi_2 is not None and second > hi_2:
                continue
            yield record

    def count_composite_range(
        self, index_name: str, lo_1: Any, hi_1: Any, lo_2: Any, hi_2: Any
    ) -> int:
        """True cardinality of a rectangle predicate (ground truth)."""
        return sum(
            1
            for _record in self.scan_composite(index_name, lo_1, hi_1, lo_2, hi_2)
        )

    def search_spatial(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> Iterator[Record]:
        """Live R-tree entries inside the rectangle, reconciled.

        Rectangle candidates are gathered MBR-first from every disk
        component plus the memtable, then reconciled newest-wins with
        anti-matter cancellation (an entry and its tombstone share the
        same (x, y, PK) key, hence the same rectangle membership).
        """
        if index_name not in self.spatial_indexes:
            raise QueryError(
                f"{index_name!r} is not a spatial index of {self.name!r}"
            )
        tree = self.secondary_tree(index_name)
        best: dict[Any, Record] = {}

        def offer(record: Record) -> None:
            current = best.get(record.key)
            if current is None or record.seqnum > current.seqnum:
                best[record.key] = record

        for record in tree.memtable.scan():
            x, y = record.key[0], record.key[1]
            if lo_x <= x <= hi_x and lo_y <= y <= hi_y:
                offer(record)
        for component in tree.components:
            for record in component.btree.search(lo_x, hi_x, lo_y, hi_y):
                offer(record)
        for key in sorted(best):
            record = best[key]
            if not record.antimatter:
                yield record

    def count_spatial_range(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> int:
        """True cardinality of a rectangle predicate on an R-tree index."""
        return sum(
            1
            for _record in self.search_spatial(index_name, lo_x, hi_x, lo_y, hi_y)
        )

    def count_records(self) -> int:
        """Number of live records in the dataset."""
        return self.primary.count_range()

    def _all_trees(self) -> Iterator[LSMTree]:
        yield self.primary
        yield from self._secondary.values()

    def _pk_of(self, document: dict[str, Any]) -> Any:
        try:
            return document[self.primary_key]
        except KeyError:
            raise StorageError(
                f"document missing primary key field {self.primary_key!r}"
            ) from None
