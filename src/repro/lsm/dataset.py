"""Datasets: a primary LSM index plus LSM-ified secondary indexes.

Mirrors AsterixDB's storage design (paper Section 3): the dataset's
records live in a primary LSM B-tree keyed by the primary key (PK), and
each secondary index is its own LSM B-tree whose entries are
``(SK, PK)`` pairs -- or ``(SK1, SK2, PK)`` triples for composite-key
indexes (the paper's Section 5 future work, served by the 2-D synopses
in :mod:`repro.synopses.multidim`).  Updates and deletes write
anti-matter into the secondary indexes to cancel the entries of older
record versions, so a reconciled secondary scan always reflects the
live data.

All indexes of a dataset share one sequence generator and one event bus
and are flushed together, which keeps their component boundaries (and
therefore per-component statistics) aligned.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import BulkloadError, QueryError, RecoveryError, StorageError
from repro.lsm.columnar import register_summary_extractor
from repro.lsm.component import DiskComponent
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.events import EventBus
from repro.lsm.manifest import Manifest
from repro.lsm.memory import MemoryArbiter
from repro.lsm.merge_policy import MergePolicy, NoMergePolicy
from repro.lsm.pacing import MergePacer
from repro.lsm.record import Record
from repro.lsm.scheduler import MaintenanceScheduler, SyncScheduler
from repro.lsm.tree import (
    DEFAULT_MEMTABLE_CAPACITY,
    DEFAULT_WRITE_BATCH_SIZE,
    LSMTree,
    SequenceGenerator,
)
from repro.lsm.storage import SimulatedDisk
from repro.lsm.wal import DEFAULT_WAL_GROUP_SIZE, WriteAheadLog
from repro.obs.registry import get_registry
from repro.types import Domain

__all__ = [
    "IndexSpec",
    "CompositeIndexSpec",
    "SpatialIndexSpec",
    "Dataset",
    "secondary_index_name",
    "DEFAULT_MAX_PENDING_FLUSHES",
]

DEFAULT_MAX_PENDING_FLUSHES = 4
"""Rotated-but-unflushed memtable generations a dataset tolerates
before the write path stalls on backpressure (per tree)."""

_NEG = float("-inf")
_POS = float("inf")


@dataclass(frozen=True)
class IndexSpec:
    """Declaration of one single-field secondary B-tree index.

    Attributes:
        name: Index name (unique within the dataset).
        field: Record field the index is built on (an integer field).
        domain: Value domain of the field, used by synopsis builders.
    """

    name: str
    field: str
    domain: Domain

    @property
    def fields(self) -> tuple[str, ...]:
        """Indexed fields (length 1)."""
        return (self.field,)

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The secondary-key part of this index's entry for a record."""
        return (document[self.field],)


@dataclass(frozen=True)
class CompositeIndexSpec:
    """Declaration of a two-field composite-key B-tree index.

    Entries are ordered lexicographically by ``(field_1, field_2, PK)``,
    which is exactly the order the 2-D synopsis builders require.
    """

    name: str
    fields: tuple[str, str]
    domains: tuple[Domain, Domain]

    def __post_init__(self) -> None:
        if len(self.fields) != 2 or len(self.domains) != 2:
            raise StorageError(
                "composite indexes support exactly two fields"
            )

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The secondary-key part of this index's entry for a record."""
        return (document[self.fields[0]], document[self.fields[1]])


@dataclass(frozen=True)
class SpatialIndexSpec:
    """Declaration of an LSM-ified R-tree index over two point fields.

    Entries are ``(x, y, PK)`` triples; components are
    :class:`~repro.lsm.rtree.DiskRTree` structures, so rectangle
    queries descend MBRs while the LSM merge machinery still sees the
    lexicographically ordered stream it requires (the paper's Section 5
    R-tree future work).
    """

    name: str
    fields: tuple[str, str]
    domains: tuple[Domain, Domain]

    def __post_init__(self) -> None:
        if len(self.fields) != 2 or len(self.domains) != 2:
            raise StorageError("spatial indexes support exactly two fields")

    def key_of(self, document: dict[str, Any]) -> tuple[Any, ...]:
        """The (x, y) part of this index's entry for a record."""
        return (document[self.fields[0]], document[self.fields[1]])


def secondary_index_name(dataset_name: str, index_name: str) -> str:
    """Fully qualified LSM index name used on event contexts."""
    return f"{dataset_name}.{index_name}"


def _single_key_extractor(record: Record) -> Any:
    """Synopsis value of a (SK, PK) entry: the SK."""
    return record.key[0]


def _composite_key_extractor(record: Record) -> Any:
    """Synopsis value of a (SK1, SK2, PK) entry: the (SK1, SK2) pair."""
    return (record.key[0], record.key[1])


# Column twins so the collector's columnar tap never materialises
# Record objects for secondary-index statistics (docs/DATAPATH.md).
register_summary_extractor(
    _single_key_extractor,
    lambda chunk: [key[0] for key in chunk.keys_list()],
)
register_summary_extractor(
    _composite_key_extractor,
    lambda chunk: [(key[0], key[1]) for key in chunk.keys_list()],
)


class Dataset:
    """A collection of records with a primary and secondary indexes."""

    def __init__(
        self,
        name: str,
        disk: SimulatedDisk,
        primary_key: str,
        primary_domain: Domain,
        indexes: Iterable[IndexSpec | CompositeIndexSpec | SpatialIndexSpec] = (),
        memtable_capacity: int = DEFAULT_MEMTABLE_CAPACITY,
        merge_policy: MergePolicy | None = None,
        event_bus: EventBus | None = None,
        write_batch_size: int | None = DEFAULT_WRITE_BATCH_SIZE,
        durable: bool = False,
        wal_enabled: bool = True,
        wal_group_size: int = DEFAULT_WAL_GROUP_SIZE,
        durability_namespace: str | None = None,
        crash_injector: CrashInjector | None = None,
        recover: bool = False,
        scheduler: MaintenanceScheduler | None = None,
        max_pending_flushes: int = DEFAULT_MAX_PENDING_FLUSHES,
        maintenance_lane: str | None = None,
        merge_pacer: MergePacer | None = None,
        memory_arbiter: MemoryArbiter | None = None,
    ) -> None:
        self.name = name
        self.primary_key = primary_key
        self.primary_domain = primary_domain
        self.event_bus = event_bus if event_bus is not None else EventBus()
        self.memtable_capacity = memtable_capacity
        self.write_batch_size = write_batch_size
        self._pending_writes = 0
        # WAL operations staged by _recover_from, applied (and flushed
        # at the normal cadence) by complete_recovery.
        self._replay_ops: list[list[tuple[LSMTree, Record]]] = []
        # Maintenance scheduling.  The default is a fresh SyncScheduler
        # (constructed here so it binds the *current* registry), which
        # keeps flush/merge inline with the triggering write -- the
        # legacy behaviour.  With a concurrent scheduler, all of this
        # dataset's maintenance shares one FIFO lane: tasks for one
        # dataset never run concurrently or out of order, which is what
        # makes the concurrent end state bit-identical to the sync run.
        self._scheduler = scheduler if scheduler is not None else SyncScheduler()
        # Lane names must be deterministic (the virtual scheduler picks
        # among lanes by seeded choice over their sorted names); callers
        # sharing one scheduler across datasets pass a distinct lane per
        # dataset instance (e.g. the node's "<dataset>.p<partition>").
        self._lane = (
            maintenance_lane if maintenance_lane is not None else f"maint:{name}"
        )
        if max_pending_flushes < 1:
            raise StorageError(
                f"max_pending_flushes must be >= 1, got {max_pending_flushes}"
            )
        self.max_pending_flushes = max_pending_flushes
        # Merge pacing (repro.lsm.pacing).  The pause is armed only
        # under real worker threads: sleeping inside the sync or virtual
        # schedulers has no writer to yield to and would only slow the
        # deterministic oracles down.  Token accounting always runs, so
        # paced and unpaced runs stay byte-identical.
        self.merge_pacer = merge_pacer
        if merge_pacer is not None:
            merge_pacer.set_blocking(self._scheduler.mode == "threads")
        # Memory arbitration (repro.lsm.memory).  The dataset registers
        # under its lane name (unique per node/partition) and publishes
        # pool breakdowns at write/flush/merge boundaries; the arbiter's
        # early-flush allowance is consulted on the DML thread only, so
        # arbitration replays identically under every scheduler mode
        # (docs/MEMORY.md).
        self._memory_arbiter = memory_arbiter
        if memory_arbiter is not None:
            memory_arbiter.register_dataset(self._lane)
        # Per-operation ingest latency (docs/OBSERVABILITY.md): the
        # wall-clock time a writer spends inside one DML call, stalls
        # and inline maintenance included -- the tail of this histogram
        # is exactly what merge pacing is meant to flatten.
        self._h_ingest_op = get_registry().histogram("ingest.op.seconds")
        # Serialises multi-index DML (and the rotation step of a
        # scheduled flush) so one operation's records always land in the
        # same memtable generation across all trees.  Maintenance tasks
        # take it only for the WAL-truncation decision (a quick check,
        # never during a flush or merge build), so writers never wait
        # out background I/O.
        self._dml_lock = threading.RLock()
        merge_policy = merge_policy if merge_policy is not None else NoMergePolicy()

        # Durability: a manifest makes every flush/merge/bulkload
        # two-phase and recoverable; the WAL makes individual operations
        # durable between flushes.  ``wal_enabled=False`` keeps the
        # manifest but drops the log -- the negative control that shows
        # what a crash costs without one.  All of it is opt-in so the
        # non-durable fast path is byte-for-byte the PR 3 hot path.
        self._injector = crash_injector
        self._manifest: Manifest | None = None
        self._wal: WriteAheadLog | None = None
        replayed: list[tuple[int, str, Record]] = []
        state = None
        if durable:
            namespace = (
                durability_namespace if durability_namespace is not None else name
            )
            self._manifest = Manifest(
                disk, namespace, recover=recover, crash_injector=crash_injector
            )
            if wal_enabled:
                self._wal = WriteAheadLog(
                    disk,
                    namespace,
                    group_size=wal_group_size,
                    recover=recover,
                    crash_injector=crash_injector,
                )
            self._m_replayed_ops = get_registry().counter("recovery.replayed.ops")
            if recover:
                state = self._manifest.replay()
                if self._wal is not None:
                    replayed = list(self._wal.replay())
        elif recover:
            raise RecoveryError(
                f"dataset {name!r} cannot recover without durable=True"
            )

        # Resume sequence numbers past everything that survived the
        # crash so replayed and new operations never collide.
        max_seen = -1
        if state is not None:
            for descriptors in state.components.values():
                for descriptor in descriptors:
                    max_seen = max(max_seen, descriptor.max_seq)
        for _seqnum, _tree, record in replayed:
            max_seen = max(max_seen, record.seqnum)
        self.sequence = SequenceGenerator(max_seen + 1)

        self.primary = LSMTree(
            name=secondary_index_name(name, "primary"),
            disk=disk,
            memtable_capacity=memtable_capacity,
            merge_policy=merge_policy,
            event_bus=self.event_bus,
            sequence=self.sequence,
            auto_flush=False,
            write_batch_size=write_batch_size,
            manifest=self._manifest,
            crash_injector=crash_injector,
            merge_pacer=merge_pacer,
        )
        self.indexes: dict[str, IndexSpec] = {}
        self.composite_indexes: dict[str, CompositeIndexSpec] = {}
        self.spatial_indexes: dict[str, SpatialIndexSpec] = {}
        self._secondary: dict[str, LSMTree] = {}
        for spec in indexes:
            if spec.name in self._secondary:
                raise StorageError(f"duplicate index name {spec.name!r}")
            index_builder = None
            if isinstance(spec, SpatialIndexSpec):
                from repro.lsm.rtree import build_rtree

                self.spatial_indexes[spec.name] = spec
                extractor = _composite_key_extractor
                index_builder = build_rtree
            elif isinstance(spec, CompositeIndexSpec):
                self.composite_indexes[spec.name] = spec
                extractor = _composite_key_extractor
            else:
                self.indexes[spec.name] = spec
                extractor = _single_key_extractor
            self._secondary[spec.name] = LSMTree(
                name=secondary_index_name(name, spec.name),
                disk=disk,
                memtable_capacity=memtable_capacity,
                merge_policy=merge_policy,
                event_bus=self.event_bus,
                sequence=self.sequence,
                key_extractor=extractor,
                auto_flush=False,
                index_builder=index_builder,
                write_batch_size=write_batch_size,
                manifest=self._manifest,
                crash_injector=crash_injector,
                merge_pacer=merge_pacer,
            )
        if recover and state is not None:
            self._recover_from(state, replayed)
        # Fair dispatch: let the thread-pool scheduler see when this
        # dataset's writers are one rotation away from stalling, so its
        # flush lane jumps ahead of other datasets' merge lanes.
        if not self._scheduler.inline:
            self._scheduler.add_pressure_probe(
                lambda: self.primary.immutable_count
                >= max(1, self.max_pending_flushes - 1)
            )

    def _all_specs(
        self,
    ) -> Iterator[IndexSpec | CompositeIndexSpec | SpatialIndexSpec]:
        yield from self.indexes.values()
        yield from self.composite_indexes.values()
        yield from self.spatial_indexes.values()

    # -- recovery ---------------------------------------------------------

    def _recover_from(
        self, state: Any, replayed: list[tuple[int, str, Record]]
    ) -> None:
        """Reinstate disk components from the manifest and stage the
        WAL's operations for replay (invoked from ``__init__``)."""
        trees = {tree.name: tree for tree in self._all_trees()}
        unknown = set(state.components) - set(trees)
        if unknown:
            raise RecoveryError(
                f"manifest for dataset {self.name!r} names unknown trees: "
                f"{', '.join(sorted(unknown))}"
            )
        for tree in self._all_trees():
            tree.install_recovered(state.components.get(tree.name, []))
        # Group the log's records back into operations (one seqnum, one
        # record per tree), in log order; they are applied in
        # complete_recovery so observers can subscribe first.
        ops: dict[int, list[tuple[LSMTree, Record]]] = {}
        order: list[int] = []
        for seqnum, tree_name, record in replayed:
            tree = trees.get(tree_name)
            if tree is None:
                raise RecoveryError(
                    f"WAL for dataset {self.name!r} names unknown tree "
                    f"{tree_name!r}"
                )
            if record.seqnum <= tree.max_flushed_seqnum:
                continue  # already durable in a flushed component
            if seqnum not in ops:
                ops[seqnum] = []
                order.append(seqnum)
            ops[seqnum].append((tree, record))
        self._replay_ops = [ops[seqnum] for seqnum in order]

    def complete_recovery(self) -> None:
        """Finish a ``recover=True`` construction: let observers
        re-derive per-component state, then restore the flush/merge
        invariants the crash may have interrupted.

        Split from ``__init__`` so the caller can subscribe observers
        (the statistics collector) to the event bus first.
        """
        if self._manifest is None:
            raise RecoveryError(
                f"complete_recovery on non-durable dataset {self.name!r}"
            )
        for tree in self._all_trees():
            components = tree.components  # newest first
            if components:
                self.event_bus.notify_recovered(
                    tree.name, list(reversed(components)), tree.key_extractor
                )
        # Replay the logged operations through the normal flush cadence:
        # every ``memtable_capacity`` ops close a generation, so the
        # recovered component boundaries (and their statistics) match a
        # run that never crashed -- even when the crash caught several
        # rotated generations still queued on the background scheduler.
        replay = self._replay_ops
        self._replay_ops = []
        for writes in replay:
            for tree, record in writes:
                tree.memtable.write(record)
            self._pending_writes += 1
            self._m_replayed_ops.inc()
            if self._pending_writes >= self.memtable_capacity:
                self.flush()
        for tree in self._all_trees():
            tree.run_pending_merges()
        self._publish_memory()

    def live_file_ids(self) -> set[int]:
        """Disk files this dataset still references (components plus
        its manifest and WAL) -- everything else of its files is
        post-crash garbage."""
        # R-tree components have no backing file id (they are rebuilt
        # in memory); only B-tree components pin disk files.
        ids = {
            file_id
            for tree in self._all_trees()
            for component in tree.components
            if (file_id := getattr(component.btree, "file_id", None)) is not None
        }
        if self._manifest is not None:
            ids.add(self._manifest.file_id)
        if self._wal is not None:
            ids.add(self._wal.file_id)
        return ids

    # -- write path -------------------------------------------------------

    def insert(self, document: dict[str, Any]) -> None:
        """Insert a new record (the caller guarantees PK uniqueness)."""
        started = time.perf_counter()
        with self._dml_lock:
            pk = self._pk_of(document)
            seqnum = self.sequence.next()
            if self._wal is not None:
                writes = [
                    (self.primary, Record.matter(pk, document, seqnum=seqnum))
                ]
                for spec in self._all_specs():
                    writes.append(
                        (
                            self._secondary[spec.name],
                            Record.matter(
                                (*spec.key_of(document), pk), seqnum=seqnum
                            ),
                        )
                    )
                self._apply_logged(seqnum, writes)
            else:
                self.primary.write_record(
                    Record.matter(pk, document, seqnum=seqnum)
                )
                for spec in self._all_specs():
                    self._secondary[spec.name].write_record(
                        Record.matter(
                            (*spec.key_of(document), pk), seqnum=seqnum
                        )
                    )
                self._after_write()
        self._h_ingest_op.observe(time.perf_counter() - started)

    def insert_many(self, documents: Iterable[dict[str, Any]]) -> int:
        """Insert a batch of new records; returns the number inserted.

        Semantically identical to calling :meth:`insert` per document
        (one sequence number per operation, flush cadence preserved),
        but the per-document Python dispatch is amortised: extractors
        and trees are bound once for the whole batch.
        """
        if self._wal is not None:
            # Durable inserts go through the op-atomic logged path; the
            # bound-once fast loop below stays WAL-free.
            inserted = 0
            for document in documents:
                self.insert(document)
                inserted += 1
            return inserted
        specs = list(self._all_specs())
        trees = [self._secondary[spec.name] for spec in specs]
        primary_write = self.primary.write_record
        next_seq = self.sequence.next
        observe_op = self._h_ingest_op.observe
        clock = time.perf_counter
        inserted = 0
        for document in documents:
            started = clock()
            with self._dml_lock:
                pk = self._pk_of(document)
                seqnum = next_seq()
                primary_write(Record.matter(pk, document, seqnum=seqnum))
                for spec, tree in zip(specs, trees):
                    tree.write_record(
                        Record.matter(
                            (*spec.key_of(document), pk), seqnum=seqnum
                        )
                    )
                inserted += 1
                self._after_write()
            observe_op(clock() - started)
        return inserted

    def update(self, document: dict[str, Any]) -> bool:
        """Replace the record with the same PK; returns False when the
        PK does not exist (AsterixDB enforces existence on updates)."""
        started = time.perf_counter()
        with self._dml_lock:
            pk = self._pk_of(document)
            old = self.primary.get(pk)
            if old is None:
                return False
            seqnum = self.sequence.next()
            if self._wal is not None:
                writes = [
                    (self.primary, Record.matter(pk, document, seqnum=seqnum))
                ]
                for spec in self._all_specs():
                    old_sk, new_sk = spec.key_of(old), spec.key_of(document)
                    if old_sk == new_sk:
                        continue
                    tree = self._secondary[spec.name]
                    writes.append(
                        (tree, Record.anti((*old_sk, pk), seqnum=seqnum))
                    )
                    writes.append(
                        (tree, Record.matter((*new_sk, pk), seqnum=seqnum))
                    )
                self._apply_logged(seqnum, writes)
            else:
                self.primary.write_record(
                    Record.matter(pk, document, seqnum=seqnum)
                )
                for spec in self._all_specs():
                    old_sk, new_sk = spec.key_of(old), spec.key_of(document)
                    if old_sk == new_sk:
                        # The existing secondary entry still points at
                        # the live record; touching it would double-count
                        # the record in per-component statistics.
                        continue
                    tree = self._secondary[spec.name]
                    tree.write_record(
                        Record.anti((*old_sk, pk), seqnum=seqnum)
                    )
                    tree.write_record(
                        Record.matter((*new_sk, pk), seqnum=seqnum)
                    )
                self._after_write()
        self._h_ingest_op.observe(time.perf_counter() - started)
        return True

    def delete(self, pk: Any) -> bool:
        """Delete by PK; returns False when the PK does not exist."""
        started = time.perf_counter()
        with self._dml_lock:
            old = self.primary.get(pk)
            if old is None:
                return False
            seqnum = self.sequence.next()
            if self._wal is not None:
                writes = [(self.primary, Record.anti(pk, seqnum=seqnum))]
                for spec in self._all_specs():
                    writes.append(
                        (
                            self._secondary[spec.name],
                            Record.anti(
                                (*spec.key_of(old), pk), seqnum=seqnum
                            ),
                        )
                    )
                self._apply_logged(seqnum, writes)
            else:
                self.primary.write_record(Record.anti(pk, seqnum=seqnum))
                for spec in self._all_specs():
                    self._secondary[spec.name].write_record(
                        Record.anti((*spec.key_of(old), pk), seqnum=seqnum)
                    )
                self._after_write()
        self._h_ingest_op.observe(time.perf_counter() - started)
        return True

    def bulkload(self, documents: Iterable[dict[str, Any]]) -> None:
        """Initial load of PK-sorted documents into an empty dataset.

        The primary component is built directly from the stream; each
        secondary index is built from its entries sorted in memory
        (standing in for the sort operator the paper mentions at the
        bottom of AsterixDB's load plan).
        """
        if self.primary.components or self.primary.memtable:
            raise BulkloadError(f"bulkload into non-empty dataset {self.name!r}")
        # Materialise: in AsterixDB the sort operator at the bottom of the
        # load plan has the full input, so the record count is known.
        documents = list(documents)
        secondary_entries: dict[str, list[tuple[Any, ...]]] = {
            spec.name: [] for spec in self._all_specs()
        }

        def primary_stream() -> Iterator[Record]:
            for document in documents:
                pk = self._pk_of(document)
                for spec in self._all_specs():
                    secondary_entries[spec.name].append(
                        (*spec.key_of(document), pk)
                    )
                yield Record.matter(pk, document)

        txn = None
        if self._manifest is not None:
            txn = self._manifest.begin_txn()
        self.primary.bulkload(
            primary_stream(), expected_records=len(documents), txn=txn
        )
        for name, entries in secondary_entries.items():
            entries.sort()
            self._secondary[name].bulkload(
                (Record.matter(key) for key in entries),
                expected_records=len(entries),
                txn=txn,
            )
        if self._manifest is not None:
            assert txn is not None
            self._manifest.commit_txn(txn)
        self._publish_memory()

    def flush(self) -> list[DiskComponent]:
        """Force-flush all indexes of the dataset together.

        On the durable path the multi-tree flush is one manifest
        transaction: each tree's component commit is stamped with the
        transaction id and none takes effect until the ``txn.commit``
        entry is durable, so a crash mid-flush can never install the
        primary's component without its secondaries'.  Merges are
        deferred until after the transaction (and the WAL truncation),
        keeping the log small while the multi-tree state is in flux.

        Under a concurrent scheduler this is the drain barrier: it
        schedules a flush of everything buffered and blocks until all
        background maintenance (including follow-up merges) completed,
        returning ``[]`` -- the components were installed by the
        background tasks.
        """
        if not self._scheduler.inline:
            self.schedule_flush()
            self._scheduler.drain()
            return []
        self._pending_writes = 0
        if self._manifest is None:
            flushed = []
            for tree in self._all_trees():
                component = tree.flush()
                if component is not None:
                    flushed.append(component)
            self._publish_memory()
            return flushed
        if not any(tree.memtable for tree in self._all_trees()):
            return []
        if self._wal is not None:
            self._wal.sync()
        txn = self._manifest.begin_txn()
        flushed = []
        for tree in self._all_trees():
            component = tree.flush(txn=txn, run_merge=False)
            if component is not None:
                flushed.append(component)
        self._manifest.commit_txn(txn)
        if self._wal is not None:
            self._wal.truncate()
        for tree in self._all_trees():
            tree.run_pending_merges()
        self._publish_memory()
        return flushed

    # -- background maintenance -------------------------------------------

    @property
    def scheduler(self) -> MaintenanceScheduler:
        """The maintenance scheduler this dataset submits to."""
        return self._scheduler

    def schedule_flush(self) -> bool:
        """Rotate every tree's memtable and queue one background flush
        of the rotated generation; returns False when nothing was
        buffered.  The rotation happens on the calling (DML) thread, so
        the moment this returns new writes land in fresh memtables and
        never wait on the flush I/O.
        """
        # Backpressure: bound the rotated-but-unflushed queue so a
        # stalled flush lane cannot buffer unbounded memory.  The wait
        # itself is the measured `scheduler.stall` -- in steady state it
        # returns immediately.
        self._scheduler.wait(
            lambda: self.primary.immutable_count < self.max_pending_flushes
        )
        # Arbiter backpressure: when sealed memtables overflow the
        # immutable pool, wait for background flushes to drain it.
        # Timing-only -- the wait changes when rotations proceed, never
        # what flushes produce -- and progress is guaranteed: queued
        # flush tasks shrink the pool, and the wait returns as soon as
        # no background work is pending.
        arbiter = self._memory_arbiter
        if arbiter is not None and not arbiter.immutable_within_pool():
            arbiter.note_pressure_stall()
            self._scheduler.wait(arbiter.immutable_within_pool)
        with self._dml_lock:
            rotated = False
            for tree in self._all_trees():
                rotated = tree.rotate() or rotated
            self._pending_writes = 0
        if rotated:
            self._scheduler.submit(
                self._flush_task, lane=self._lane, kind="flush"
            )
        return rotated

    def _flush_task(self) -> None:
        """Lane task: persist one rotated generation across all trees,
        then chain into merge-policy evaluation.  Lane FIFO guarantees
        generation k is installed before generation k+1, preserving the
        synchronous component order."""
        trees = list(self._all_trees())
        if self._manifest is None:
            for tree in trees:
                if tree.immutable_count:
                    tree.flush_one_immutable()
        else:
            if self._wal is not None:
                self._wal.sync()
            txn = self._manifest.begin_txn()
            for tree in trees:
                if tree.immutable_count:
                    tree.flush_one_immutable(txn)
            self._manifest.commit_txn(txn)
            # The shared WAL may only truncate once *every* acknowledged
            # write is on disk; with writes still buffered (or more
            # rotated generations queued) replay still needs the log.
            # Deferral costs log space, never correctness: replay skips
            # records already covered by flushed components.  The check
            # and the truncate hold the DML lock together -- otherwise a
            # concurrent operation could log its entry between them and
            # have it deleted while its records are still memory-only.
            if self._wal is not None:
                with self._dml_lock:
                    if all(t.fully_flushed for t in trees):
                        self._wal.truncate()
        self._publish_memory()
        # Merges continue at the *front* of the lane so the merge
        # decisions triggered by this flush happen before the next
        # queued flush installs -- the synchronous decision sequence.
        self._scheduler.submit(
            self._merge_continuation, lane=self._lane, front=True, kind="merge"
        )

    def _merge_continuation(self) -> None:
        """Lane task: run at most one merge (first tree, in order, whose
        policy wants one) and requeue itself while any tree still has
        merge work.  One merge per task keeps lanes responsive: other
        datasets' tasks interleave between merges."""
        for tree in self._all_trees():
            if tree.merge_once() is not None:
                self._publish_memory()
                self._scheduler.submit(
                    self._merge_continuation,
                    lane=self._lane,
                    front=True,
                    kind="merge",
                )
                return

    def drain_maintenance(self) -> None:
        """Block until all scheduled background maintenance completed
        (re-raising failures captured off-thread)."""
        self._scheduler.drain()

    def _apply_logged(
        self, seqnum: int, writes: "list[tuple[LSMTree, Record]]"
    ) -> None:
        """Durably log one operation's records (all trees, one seqnum,
        one atomic WAL entry), then apply them to the memtables."""
        assert self._wal is not None
        self._wal.log_op(
            seqnum, [(tree.name, record) for tree, record in writes]
        )
        for tree, record in writes:
            tree.write_record(record)
        self._after_write()

    def _after_write(self) -> None:
        self._pending_writes += 1
        arbiter = self._memory_arbiter
        flush_now = self._pending_writes >= self.memtable_capacity
        if arbiter is not None:
            arbiter.note_write()
            if not flush_now:
                # The early-flush trigger reads only active-memtable
                # bytes -- DML-thread state -- so sync, virtual and
                # threaded runs rotate at the identical record
                # (docs/MEMORY.md determinism contract).
                active = sum(
                    tree.memtable.memory_bytes() for tree in self._all_trees()
                )
                if arbiter.should_early_flush(active):
                    arbiter.note_early_flush()
                    flush_now = True
        if flush_now:
            if self._scheduler.inline:
                self.flush()
            else:
                self.schedule_flush()
        if arbiter is not None:
            self._publish_memory()

    def _publish_memory(self) -> None:
        """Push this dataset's pool breakdown to the arbiter (called at
        write/flush/merge/recovery boundaries, from any thread)."""
        arbiter = self._memory_arbiter
        if arbiter is None:
            return
        active = immutable = bloom = resident = 0
        for tree in self._all_trees():
            tree_active, tree_immutable, tree_bloom, tree_resident = (
                tree.memory_breakdown()
            )
            active += tree_active
            immutable += tree_immutable
            bloom += tree_bloom
            resident += tree_resident
        arbiter.update_usage(self._lane, active, immutable, bloom, resident)

    def memory_breakdown(self) -> tuple[int, int, int, int]:
        """Accounted bytes as ``(active, immutable, bloom, resident)``
        summed over every index tree."""
        totals = [0, 0, 0, 0]
        for tree in self._all_trees():
            for i, value in enumerate(tree.memory_breakdown()):
                totals[i] += value
        return tuple(totals)  # type: ignore[return-value]

    def memory_bytes(self) -> int:
        """Total accounted footprint of this dataset."""
        return sum(self.memory_breakdown())

    # -- read path ----------------------------------------------------------

    def get(self, pk: Any) -> dict[str, Any] | None:
        """Fetch the live record stored under ``pk``."""
        return self.primary.get(pk)

    def secondary_tree(self, index_name: str) -> LSMTree:
        """The LSM tree backing a secondary index (any arity)."""
        try:
            return self._secondary[index_name]
        except KeyError:
            raise QueryError(
                f"dataset {self.name!r} has no index {index_name!r}"
            ) from None

    def scan_secondary(
        self, index_name: str, lo: Any = None, hi: Any = None
    ) -> Iterator[Record]:
        """Live (SK, PK) entries with ``lo <= SK <= hi``, reconciled."""
        if index_name not in self.indexes:
            raise QueryError(
                f"{index_name!r} is not a single-field index of "
                f"{self.name!r}; use scan_composite for composite indexes"
            )
        tree = self.secondary_tree(index_name)
        lo_key = None if lo is None else (lo, _NEG)
        hi_key = None if hi is None else (hi, _POS)
        return tree.scan(lo_key, hi_key)

    def count_secondary_range(self, index_name: str, lo: Any, hi: Any) -> int:
        """True cardinality of ``lo <= SK <= hi`` (ground truth)."""
        return sum(1 for _record in self.scan_secondary(index_name, lo, hi))

    def scan_composite(
        self,
        index_name: str,
        lo_1: Any,
        hi_1: Any,
        lo_2: Any = None,
        hi_2: Any = None,
    ) -> Iterator[Record]:
        """Live composite entries inside the rectangle.

        The B-tree range scan covers the first key component; the
        second component is filtered -- exactly how a composite-key
        index serves rectangle predicates.
        """
        if index_name not in self.composite_indexes:
            raise QueryError(
                f"{index_name!r} is not a composite index of {self.name!r}"
            )
        tree = self.secondary_tree(index_name)
        lo_key = None if lo_1 is None else (lo_1, _NEG, _NEG)
        hi_key = None if hi_1 is None else (hi_1, _POS, _POS)
        for record in tree.scan(lo_key, hi_key):
            second = record.key[1]
            if lo_2 is not None and second < lo_2:
                continue
            if hi_2 is not None and second > hi_2:
                continue
            yield record

    def count_composite_range(
        self, index_name: str, lo_1: Any, hi_1: Any, lo_2: Any, hi_2: Any
    ) -> int:
        """True cardinality of a rectangle predicate (ground truth)."""
        return sum(
            1
            for _record in self.scan_composite(index_name, lo_1, hi_1, lo_2, hi_2)
        )

    def search_spatial(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> Iterator[Record]:
        """Live R-tree entries inside the rectangle, reconciled.

        Rectangle candidates are gathered MBR-first from every disk
        component plus the memtable, then reconciled newest-wins with
        anti-matter cancellation (an entry and its tombstone share the
        same (x, y, PK) key, hence the same rectangle membership).
        """
        if index_name not in self.spatial_indexes:
            raise QueryError(
                f"{index_name!r} is not a spatial index of {self.name!r}"
            )
        tree = self.secondary_tree(index_name)
        best: dict[Any, Record] = {}

        def offer(record: Record) -> None:
            current = best.get(record.key)
            if current is None or record.seqnum > current.seqnum:
                best[record.key] = record

        for record in tree.memtable.scan():
            x, y = record.key[0], record.key[1]
            if lo_x <= x <= hi_x and lo_y <= y <= hi_y:
                offer(record)
        for component in tree.components:
            for record in component.btree.search(lo_x, hi_x, lo_y, hi_y):
                offer(record)
        for key in sorted(best):
            record = best[key]
            if not record.antimatter:
                yield record

    def count_spatial_range(
        self, index_name: str, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> int:
        """True cardinality of a rectangle predicate on an R-tree index."""
        return sum(
            1
            for _record in self.search_spatial(index_name, lo_x, hi_x, lo_y, hi_y)
        )

    def count_records(self) -> int:
        """Number of live records in the dataset."""
        return self.primary.count_range()

    def _all_trees(self) -> Iterator[LSMTree]:
        yield self.primary
        yield from self._secondary.values()

    def _pk_of(self, document: dict[str, Any]) -> Any:
        try:
            return document[self.primary_key]
        except KeyError:
            raise StorageError(
                f"document missing primary key field {self.primary_key!r}"
            ) from None
