"""Merge cursors over sorted record streams.

An LSM read (or merge) must combine several key-sorted streams -- the
memtable plus any number of disk components -- into one logical stream:

* *newest wins*: for records sharing a key, only the entry with the
  highest sequence number survives;
* *anti-matter reconciliation*: when the surviving entry is a tombstone
  it either cancels silently (reads, and merges that include the oldest
  component) or must be carried forward (partial merges, because an even
  older component may still hold the matter record it cancels).

The paper leans on exactly this abstraction: "the input stream created
by a merge cursor provides a unified sorted record stream abstraction
over the individual record streams of merged components" (Section 3.5),
which is what lets synopses be rebuilt from scratch during merges.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator

from repro.lsm.record import Record

__all__ = ["merge_streams", "reconcile", "chunk_stream"]


def chunk_stream(
    stream: Iterable[Record], chunk_size: int
) -> Iterator[list[Record]]:
    """Drain a record stream into consecutive slices of ``chunk_size``.

    The batched component-write path wraps the merge cursor (and any
    other per-record stream) with this so sinks and index builders see
    lists instead of single records; ordering is preserved exactly.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    iterator = iter(stream)
    while True:
        chunk = list(itertools.islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def merge_streams(streams: Iterable[Iterator[Record]]) -> Iterator[Record]:
    """K-way merge of key-sorted streams into one key-sorted stream.

    Entries with equal keys are emitted newest (highest seqnum) first,
    so :func:`reconcile` can resolve them with one token of lookahead.
    """
    heap: list[tuple] = []
    for stream_index, stream in enumerate(streams):
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.key, -first.seqnum, stream_index, first, iterator))
    heapq.heapify(heap)
    while heap:
        _key, _negseq, stream_index, record, iterator = heapq.heappop(heap)
        yield record
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(
                heap, (nxt.key, -nxt.seqnum, stream_index, nxt, iterator)
            )


def reconcile(
    merged: Iterator[Record], keep_antimatter: bool
) -> Iterator[Record]:
    """Collapse a newest-first merged stream to one entry per key.

    Args:
        merged: Output of :func:`merge_streams` (ties broken newest
            first).
        keep_antimatter: ``True`` for partial merges, where a surviving
            tombstone must be re-emitted because older components outside
            the merge may still contain the record it cancels; ``False``
            for reads and full merges, where tombstones reconcile away.
    """
    current_key: object = _SENTINEL
    for record in merged:
        if record.key == current_key:
            continue  # shadowed by a newer entry for the same key
        current_key = record.key
        if record.antimatter and not keep_antimatter:
            continue
        yield record


class _Sentinel:
    """A key value that never compares equal to real keys."""

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)


_SENTINEL = _Sentinel()
