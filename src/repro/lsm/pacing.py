"""Merge pacing: a token-bucket budget for background merge progress.

Luo & Carey, *On Performance Stability in LSM-based Storage Systems*,
show that unpaced merges are the dominant cause of write stalls: a
merge that runs flat-out monopolizes the resources (here: the GIL and
the worker pool) that ingestion and flushes need, so writer latency
spikes for the whole duration of the merge.  The fix is to meter merge
progress against a budget and hand the freed time to the write path.

:class:`MergePacer` implements that budget as a token bucket measured
in *records merged*.  The merge build path consults it at chunk
boundaries (:meth:`MergePacer.pace`); when the budget is exhausted the
merge sleeps off its deficit in short slices, yielding the worker (and
the GIL) between chunks so flush tasks and DML threads run while the
merge is parked.  One pacer is typically shared by every dataset of a
node -- the budget is a per-node resource, exactly like the disk
bandwidth it stands in for.

Pacing is a *scheduling* lever only: it changes **when** merge chunks
are processed, never their bytes.  Under the ``sync`` and ``virtual``
schedulers there is no concurrent writer to protect, so blocking is
disarmed (:meth:`set_blocking`) and ``pace`` only keeps the token
accounting -- which is what lets ``repro racecheck --paced`` prove
paced concurrent runs end bit-identical to the synchronous oracle.

Metrics (docs/OBSERVABILITY.md): ``merge.pacing.tokens`` (records
granted), ``merge.pacing.waits`` (paced pauses) and
``merge.pacing.wait.seconds`` (pause duration distribution).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["MergePacer", "DEFAULT_MERGE_PACE_SLICE"]

DEFAULT_MERGE_PACE_SLICE = 0.05
"""Longest single sleep of a paced merge (seconds).  Short slices keep
paced merges responsive to drains and shutdowns."""

_TOKEN_EPSILON = 1e-9
"""Slack on the tokens-vs-charge comparison.  The bucket refills from
``elapsed * rate`` float arithmetic, so a refill meant to land exactly
on the charge can fall an ulp short; without the slack the wait loop
would chase that ulp with ever-smaller sleeps."""

_MIN_SLEEP = 1e-6
"""Floor on one paced sleep.  A deficit below the clock's resolution
would otherwise sleep for less than a tick and spin."""


class MergePacer:
    """A token-bucket rate limit on merge progress, in records/second.

    Thread-safe and shareable: concurrent merges (different lanes of
    one node) draw from the same bucket, so the configured rate bounds
    the node's *total* merge throughput.  The bucket refills
    continuously from wall time and holds at most ``burst`` tokens, so
    an idle period buys a merge at most ``burst`` records of
    full-speed catch-up before pacing kicks in again.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        blocking: bool = True,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        max_sleep: float = DEFAULT_MERGE_PACE_SLICE,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"pacing rate must be > 0, got {rate}")
        self.rate = float(rate)
        # Default burst: a tenth of a second of budget, but never less
        # than one typical write batch so a single chunk cannot exceed
        # the bucket and wait forever.
        self.burst = float(burst) if burst is not None else max(rate / 10.0, 1024.0)
        if self.burst <= 0:
            raise ConfigurationError(f"burst must be > 0, got {self.burst}")
        self._blocking = blocking
        self._clock = clock
        self._sleep = sleep
        self._max_sleep = max_sleep
        self._lock = threading.Lock()
        self._tokens = self.burst  # start full: the first chunks are free
        self._last = clock()
        obs = registry if registry is not None else get_registry()
        self._m_tokens = obs.counter("merge.pacing.tokens")
        self._m_waits = obs.counter("merge.pacing.waits")
        self._h_wait = obs.histogram("merge.pacing.wait.seconds")

    @property
    def blocking(self) -> bool:
        """Whether an exhausted budget actually pauses the caller."""
        return self._blocking

    def set_blocking(self, blocking: bool) -> None:
        """Arm or disarm the pause.  Disarmed (``sync``/``virtual``
        schedulers) the pacer only keeps token accounting: there is no
        concurrent writer to yield to, and sleeping would change
        nothing but test wall time."""
        self._blocking = blocking

    def pace(self, records: int) -> float:
        """Charge ``records`` against the budget; returns the seconds
        paused (0.0 when the budget covered the charge or blocking is
        disarmed).  Called at chunk boundaries by the merge build."""
        if records <= 0:
            return 0.0
        self._m_tokens.inc(records)
        # A charge larger than the whole bucket could never be covered;
        # cap it so the wait math terminates (the overflow is free).
        required = min(float(records), self.burst)
        wait_started: float | None = None
        while True:
            with self._lock:
                now = self._clock()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._last) * self.rate
                )
                self._last = now
                if self._tokens + _TOKEN_EPSILON >= required or not self._blocking:
                    # Non-blocking mode may drive the bucket negative;
                    # clamp the debt so one giant merge cannot mute
                    # pacing for the rest of the run.
                    self._tokens = max(self._tokens - required, -self.burst)
                    break
                deficit = (required - self._tokens) / self.rate
            if wait_started is None:
                wait_started = self._clock()
                self._m_waits.inc()
            self._sleep(min(max(deficit, _MIN_SLEEP), self._max_sleep))
        if wait_started is None:
            return 0.0
        waited = self._clock() - wait_started
        self._h_wait.observe(waited)
        return waited
