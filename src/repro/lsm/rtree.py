"""Immutable disk R-trees for LSM-ified spatial indexes.

The paper's Section 5 names R-trees among the multidimensional index
types its framework should extend to; AsterixDB's LSM layer wraps
R-trees with exactly the same flush/merge lifecycle as B-trees.  This
module provides the disk component structure: entries are records whose
key is a ``(x, y, pk)`` triple.

Design choice: leaves are filled in the *lexicographic* ``(x, y, pk)``
order of the bulkload stream (the same order the merge cursor needs),
and the internal levels store minimum bounding rectangles (MBRs) over
their children instead of separator keys.  Compared to an STR-packed
R-tree this trades some MBR tightness on y for two properties the LSM
machinery depends on:

* ordered full scans (``scan``) walk the sibling-linked leaves exactly
  like a B-tree component, so k-way merge + anti-matter reconciliation
  work unchanged;
* the component-write stream stays lex-sorted, so the 2-D statistics
  builders can tap it.

Rectangle queries (``search``) descend only the subtrees whose MBR
intersects the query window.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Iterator

from repro.errors import BulkloadError
from repro.lsm.record import Record
from repro.lsm.storage import FileHandle, SimulatedDisk

__all__ = ["MBR", "DiskRTree", "build_rtree"]


class MBR:
    """A minimum bounding rectangle over (x, y) points."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: int, min_y: int, max_x: int, max_y: int) -> None:
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y

    @classmethod
    def of_points(cls, points: Iterable[tuple[int, int]]) -> "MBR":
        """The tight bound of a non-empty point set."""
        xs, ys = zip(*points)
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def union(cls, boxes: Iterable["MBR"]) -> "MBR":
        """The covering rectangle of several MBRs."""
        boxes = list(boxes)
        return cls(
            min(b.min_x for b in boxes),
            min(b.min_y for b in boxes),
            max(b.max_x for b in boxes),
            max(b.max_y for b in boxes),
        )

    def intersects(self, lo_x: int, hi_x: int, lo_y: int, hi_y: int) -> bool:
        """Whether the rectangle overlaps the query window."""
        return not (
            self.max_x < lo_x
            or self.min_x > hi_x
            or self.max_y < lo_y
            or self.min_y > hi_y
        )

    def contains_point(self, x: int, y: int) -> bool:
        """Whether the rectangle covers the point."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def __repr__(self) -> str:
        return f"MBR[({self.min_x},{self.min_y})..({self.max_x},{self.max_y})]"


class _LeafPage:
    """Sorted records plus the sibling pointer and the page MBR."""

    __slots__ = ("keys", "records", "next_leaf", "mbr")

    def __init__(self, records: list[Record]) -> None:
        self.records = records
        self.keys = [record.key for record in records]
        self.next_leaf: int | None = None
        self.mbr = MBR.of_points((key[0], key[1]) for key in self.keys)


class _InteriorPage:
    """Children page numbers with their MBRs (R-tree internal node)."""

    __slots__ = ("mbrs", "children", "min_keys")

    def __init__(
        self, mbrs: list[MBR], children: list[int], min_keys: list[Any]
    ) -> None:
        self.mbrs = mbrs
        self.children = children
        # Smallest lex key under each child: kept so ordered range
        # scans can descend like a B-tree.
        self.min_keys = min_keys


class DiskRTree:
    """An immutable spatial component over (x, y, pk)-keyed records."""

    def __init__(
        self,
        file: FileHandle,
        root_page: int | None,
        height: int,
        num_records: int,
        first_leaf: int | None,
        mbr: MBR | None,
    ) -> None:
        self._file = file
        self._root_page = root_page
        self.height = height
        self.num_records = num_records
        self._first_leaf = first_leaf
        self.mbr = mbr

    @property
    def num_pages(self) -> int:
        """Total pages occupied."""
        return self._file.num_pages

    def __len__(self) -> int:
        return self.num_records

    # -- ordered access (the LSM merge path) --------------------------------

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Records with lex keys in ``[lo, hi]``, in key order."""
        if self._first_leaf is None:
            return
        page_no: int | None = self._first_leaf
        while page_no is not None:
            page = self._file.read_page(page_no)
            assert isinstance(page, _LeafPage)
            start = 0 if lo is None else bisect_left(page.keys, lo)
            for index in range(start, len(page.records)):
                record = page.records[index]
                if hi is not None and record.key > hi:
                    return
                yield record
            page_no = page.next_leaf

    def iter_all(self) -> Iterator[Record]:
        """All records in key order."""
        return self.scan()

    def lookup(self, key: Any) -> Record | None:
        """Point lookup of one full (x, y, pk) key."""
        x, y = key[0], key[1]
        for record in self.search(x, x, y, y):
            if record.key == key:
                return record
        return None

    def min_key(self) -> Any:
        """Smallest lex key, or None when empty."""
        if self._first_leaf is None:
            return None
        page = self._file.read_page(self._first_leaf)
        return page.keys[0]

    def max_key(self) -> Any:
        """Largest lex key, or None when empty (walks the leaf chain)."""
        last = None
        for record in self.scan():
            last = record.key
        return last

    # -- spatial access -------------------------------------------------------

    def search(
        self, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> Iterator[Record]:
        """All records (matter and anti-matter) inside the rectangle."""
        if self._root_page is None:
            return
        stack = [(self._root_page, self.height)]
        while stack:
            page_no, level = stack.pop()
            page = self._file.read_page(page_no)
            if level == 0:
                assert isinstance(page, _LeafPage)
                for record in page.records:
                    x, y = record.key[0], record.key[1]
                    if lo_x <= x <= hi_x and lo_y <= y <= hi_y:
                        yield record
            else:
                assert isinstance(page, _InteriorPage)
                for mbr, child in zip(page.mbrs, page.children):
                    if mbr.intersects(lo_x, hi_x, lo_y, hi_y):
                        stack.append((child, level - 1))

    def destroy(self) -> None:
        """Release the backing file."""
        self._file.delete()


def build_rtree(
    disk: SimulatedDisk,
    records: Iterable[Record],
    leaf_capacity: int = 64,
    fanout: int = 64,
) -> DiskRTree:
    """Bulkload a spatial component from a lex-sorted record stream.

    Drop-in compatible with :func:`repro.lsm.btree.build_btree`, so it
    plugs into ``LSMTree(index_builder=build_rtree)``.
    """
    if leaf_capacity <= 1 or fanout <= 1:
        raise BulkloadError("leaf_capacity and fanout must both exceed 1")
    file = disk.create_file()
    leaves: list[_LeafPage] = []
    leaf_page_nos: list[int] = []

    buffer: list[Record] = []
    previous_key: Any = None
    num_records = 0
    for record in records:
        key = record.key
        if not (isinstance(key, tuple) and len(key) >= 2):
            raise BulkloadError(
                f"R-tree keys must be (x, y, ...) tuples, got {key!r}"
            )
        if previous_key is not None and not previous_key < key:
            raise BulkloadError(
                f"bulkload stream not strictly sorted: {previous_key!r} "
                f"followed by {key!r}"
            )
        previous_key = key
        buffer.append(record)
        num_records += 1
        if len(buffer) == leaf_capacity:
            leaf = _LeafPage(buffer)
            leaf_page_nos.append(file.append_page(leaf))
            leaves.append(leaf)
            buffer = []
    if buffer:
        leaf = _LeafPage(buffer)
        leaf_page_nos.append(file.append_page(leaf))
        leaves.append(leaf)

    for leaf, next_page in zip(leaves, leaf_page_nos[1:]):
        leaf.next_leaf = next_page

    if not leaves:
        file.seal()
        return DiskRTree(file, None, 0, 0, None, None)

    # Stack MBR levels until a single root remains.
    height = 0
    level_pages = leaf_page_nos
    level_mbrs = [leaf.mbr for leaf in leaves]
    level_min_keys = [leaf.keys[0] for leaf in leaves]
    while len(level_pages) > 1:
        height += 1
        next_pages: list[int] = []
        next_mbrs: list[MBR] = []
        next_min_keys: list[Any] = []
        for start in range(0, len(level_pages), fanout):
            children = level_pages[start : start + fanout]
            mbrs = level_mbrs[start : start + fanout]
            min_keys = level_min_keys[start : start + fanout]
            node = _InteriorPage(mbrs, children, min_keys)
            next_pages.append(file.append_page(node))
            next_mbrs.append(MBR.union(mbrs))
            next_min_keys.append(min_keys[0])
        level_pages, level_mbrs, level_min_keys = (
            next_pages,
            next_mbrs,
            next_min_keys,
        )

    file.seal()
    return DiskRTree(
        file,
        root_page=level_pages[0],
        height=height,
        num_records=num_records,
        first_leaf=leaf_page_nos[0],
        mbr=level_mbrs[0],
    )
