"""The mutable in-memory LSM component.

All modifications happen here, in place (Appendix A): an insert or
update stores a matter record, a delete stores an anti-matter record,
and either replaces any previous entry for the same key -- within the
in-memory component the latest write simply wins without generating
extra entries.  When the component fills up its sorted contents are
flushed through ``bulkload()`` into an immutable disk component.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.lsm.columnar import ColumnarChunk
from repro.lsm.memory import record_footprint
from repro.lsm.record import Record
from repro.util.sortedmap import SortedMap

__all__ = ["MemTable"]


class MemTable:
    """An order-preserving mutable component (AVL-backed)."""

    def __init__(self) -> None:
        self._map = SortedMap()
        self._min_seqnum: int | None = None
        self._max_seqnum: int | None = None
        self._antimatter_count = 0
        self._memory_bytes = 0

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    @property
    def antimatter_count(self) -> int:
        """Number of anti-matter entries currently held."""
        return self._antimatter_count

    @property
    def seqnum_range(self) -> tuple[int, int] | None:
        """(min, max) sequence numbers written, or None when empty."""
        if self._min_seqnum is None or self._max_seqnum is None:
            return None
        return self._min_seqnum, self._max_seqnum

    def memory_bytes(self) -> int:
        """Accounted footprint, maintained incrementally on every write
        (docs/MEMORY.md size model -- never an O(n) walk)."""
        return self._memory_bytes

    def recompute_memory_bytes(self) -> int:
        """Ground-truth O(n) recount (test oracle for the incremental
        counter; never called on the ingest path)."""
        return sum(record_footprint(record) for record in self._map.values())

    def write(self, record: Record) -> None:
        """Apply a write; the newest entry per key replaces older ones."""
        old = self._map.get(record.key)
        if old is not None:
            if old.antimatter:
                self._antimatter_count -= 1
            self._memory_bytes -= record_footprint(old)
        if record.antimatter:
            self._antimatter_count += 1
        self._memory_bytes += record_footprint(record)
        self._map.put(record.key, record)
        if self._min_seqnum is None:
            self._min_seqnum = record.seqnum
        self._max_seqnum = record.seqnum

    def get(self, key: Any) -> Record | None:
        """The current entry for ``key`` (may be anti-matter), or None."""
        return self._map.get(key)

    def sorted_records(self) -> Iterator[Record]:
        """All entries (matter and anti-matter) in key order.

        This is exactly the stream handed to ``bulkload()`` on a flush.
        """
        return iter(self._map.values())

    def sorted_record_chunks(self, chunk_size: int) -> Iterator[list[Record]]:
        """All entries in key order, drained ``chunk_size`` at a time.

        The batched flush path consumes this instead of
        :meth:`sorted_records` so downstream sinks and the component
        builder observe slices rather than single records.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        records = iter(self._map.values())
        while True:
            chunk = list(itertools.islice(records, chunk_size))
            if not chunk:
                return
            yield chunk

    def sorted_columnar_chunks(
        self, chunk_size: int
    ) -> Iterator[ColumnarChunk]:
        """All entries in key order as columnar chunks (the flush hot
        path).  The source records are retained as each chunk's
        materialisation memo, so a downstream per-record fallback costs
        nothing extra here -- see docs/DATAPATH.md.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        records = iter(self._map.values())
        while True:
            chunk = list(itertools.islice(records, chunk_size))
            if not chunk:
                return
            yield ColumnarChunk.from_records(chunk)

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Entries with keys in ``[lo, hi]`` in key order."""
        for _key, record in self._map.range_items(lo, hi):
            yield record

    def reset(self) -> None:
        """Empty the component after its contents were flushed."""
        self._map.clear()
        self._min_seqnum = None
        self._max_seqnum = None
        self._antimatter_count = 0
        self._memory_bytes = 0
