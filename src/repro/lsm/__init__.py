"""A from-scratch LSM storage engine (the paper's substrate).

Implements the storage model of Appendix A: a mutable in-memory
component, immutable disk B-tree components created through a unified
``bulkload()`` routine, flush/merge/bulkload lifecycle events with
observer taps, anti-matter reconciliation, and pluggable merge policies.
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.btree import DiskBTree, build_btree
from repro.lsm.component import ComponentId, ComponentState, DiskComponent
from repro.lsm.cursor import merge_streams, reconcile
from repro.lsm.dataset import (
    CompositeIndexSpec,
    Dataset,
    IndexSpec,
    SpatialIndexSpec,
    secondary_index_name,
)
from repro.lsm.rtree import MBR, DiskRTree, build_rtree
from repro.lsm.events import (
    ComponentWriteContext,
    EventBus,
    LSMEventType,
    RecordSink,
)
from repro.lsm.memtable import MemTable
from repro.lsm.merge_policy import (
    ConstantMergePolicy,
    MergePolicy,
    NoMergePolicy,
    PrefixMergePolicy,
    StackMergePolicy,
)
from repro.lsm.record import Record
from repro.lsm.storage import IOStats, SimulatedDisk
from repro.lsm.tree import LSMTree, SequenceGenerator

__all__ = [
    "Record",
    "BloomFilter",
    "PrefixMergePolicy",
    "MemTable",
    "DiskBTree",
    "build_btree",
    "ComponentId",
    "ComponentState",
    "DiskComponent",
    "merge_streams",
    "reconcile",
    "EventBus",
    "LSMEventType",
    "ComponentWriteContext",
    "RecordSink",
    "MergePolicy",
    "NoMergePolicy",
    "ConstantMergePolicy",
    "StackMergePolicy",
    "LSMTree",
    "SequenceGenerator",
    "Dataset",
    "IndexSpec",
    "CompositeIndexSpec",
    "SpatialIndexSpec",
    "secondary_index_name",
    "DiskRTree",
    "build_rtree",
    "MBR",
    "SimulatedDisk",
    "IOStats",
]
