"""LSM records and anti-matter.

A record carries a key, an optional payload and an *anti-matter* flag.
Anti-matter records (Appendix A of the paper) are tombstones written to
newer components to cancel matter records in older, immutable ones: a
delete inserts an anti-matter record; an update inserts a new matter
version whose higher sequence number shadows the old one.

Keys are either a primary key (an int) for primary index entries or a
``(secondary_key, primary_key)`` tuple for secondary index entries --
both totally ordered, which is all the LSM machinery requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Record"]


@dataclass(frozen=True, slots=True)
class Record:
    """One immutable LSM index entry.

    Attributes:
        key: Ordering key within the index.
        value: Payload (the stored document for primary indexes; ``None``
            for secondary indexes, whose key already carries everything).
        antimatter: ``True`` for a tombstone that cancels an older entry.
        seqnum: Monotonic sequence number assigned at write time;
            reconciliation keeps the entry with the largest ``seqnum``
            per key ("newest wins").
    """

    key: Any
    value: Any = None
    antimatter: bool = False
    seqnum: int = 0

    @classmethod
    def matter(cls, key: Any, value: Any = None, seqnum: int = 0) -> "Record":
        """A regular (live) record."""
        return cls(key=key, value=value, antimatter=False, seqnum=seqnum)

    @classmethod
    def anti(cls, key: Any, seqnum: int = 0) -> "Record":
        """An anti-matter record cancelling ``key``."""
        return cls(key=key, value=None, antimatter=True, seqnum=seqnum)

    def cancels(self, other: "Record") -> bool:
        """Whether this tombstone cancels ``other``."""
        return (
            self.antimatter
            and not other.antimatter
            and self.key == other.key
            and self.seqnum > other.seqnum
        )
