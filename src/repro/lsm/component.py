"""Disk component metadata and lifecycle.

A disk component is an immutable B-tree plus bookkeeping: the sequence
number interval it covers (AsterixDB names components by their
``(min_seq, max_seq)`` timestamp interval -- a merged component covers
the union of its inputs' intervals), record counts split into matter and
anti-matter, and a lifecycle state so illegal reuse is caught early.

Components additionally carry a *pin count* so readers can hold a
consistent snapshot of the component list while background merges
replace parts of it: a pinned component that a merge supersedes stays
readable (state ``MERGED``) and its file deletion is deferred until the
last reader unpins it.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ComponentStateError
from repro.lsm.bloom import BloomFilter
from repro.lsm.btree import DiskBTree
from repro.lsm.record import Record

__all__ = ["ComponentId", "ComponentState", "DiskComponent"]


@dataclass(frozen=True, order=True)
class ComponentId:
    """The sequence-number interval ``[min_seq, max_seq]`` of a component.

    Components with larger intervals are more recent; intervals of live
    components never overlap partially -- they are either disjoint or
    (after a merge) one contains the other.
    """

    min_seq: int
    max_seq: int

    def __post_init__(self) -> None:
        if self.min_seq > self.max_seq:
            raise ComponentStateError(
                f"invalid component id [{self.min_seq}, {self.max_seq}]"
            )

    @classmethod
    def merged(cls, ids: "list[ComponentId]") -> "ComponentId":
        """The covering interval of several component ids."""
        if not ids:
            raise ComponentStateError("cannot merge zero component ids")
        return cls(min(i.min_seq for i in ids), max(i.max_seq for i in ids))

    def __str__(self) -> str:
        return f"[{self.min_seq},{self.max_seq}]"


class ComponentState(enum.Enum):
    """Lifecycle of a disk component."""

    ACTIVE = "active"
    MERGED = "merged"  # superseded by a merge, awaiting deletion
    DELETED = "deleted"


_component_counter = itertools.count()


class DiskComponent:
    """An immutable flushed/merged/bulkloaded LSM component."""

    def __init__(
        self,
        component_id: ComponentId,
        btree: DiskBTree,
        matter_count: int,
        antimatter_count: int,
        bloom: BloomFilter | None = None,
        expected_records: int | None = None,
    ) -> None:
        self.component_id = component_id
        self.btree = btree
        self.matter_count = matter_count
        self.antimatter_count = antimatter_count
        self.bloom = bloom
        # The record estimate the component was *built* with (a merge
        # over-estimates: sum of inputs before reconciliation).  Kept so
        # recovery can re-derive synopses with the identical budget
        # geometry the crashed process used.
        self.expected_records = (
            expected_records
            if expected_records is not None
            else matter_count + antimatter_count
        )
        self.state = ComponentState.ACTIVE
        self.uid = next(_component_counter)
        self.bloom_negatives = 0  # lookups the filter short-circuited
        self._pin_lock = threading.Lock()
        self._pins = 0
        self._destroy_deferred = False

    @property
    def record_count(self) -> int:
        """Total entries, matter plus anti-matter."""
        return self.matter_count + self.antimatter_count

    def memory_bytes(self) -> int:
        """Accounted resident footprint: bloom filter bits plus the
        B-tree handle/page metadata plus fixed component bookkeeping
        (docs/MEMORY.md).  O(1)."""
        bloom_bytes = self.bloom.memory_bytes() if self.bloom is not None else 0
        return 48 + bloom_bytes + self.btree.memory_bytes()

    def bloom_bytes(self) -> int:
        """The bloom filter's share of :meth:`memory_bytes` (the arbiter
        tracks filters as their own pool)."""
        return self.bloom.memory_bytes() if self.bloom is not None else 0

    @property
    def min_key(self) -> Any:
        """Smallest key stored, or None when empty."""
        return self.btree.min_key()

    @property
    def max_key(self) -> Any:
        """Largest key stored, or None when empty."""
        return self.btree.max_key()

    @property
    def pinned(self) -> bool:
        """True while at least one reader snapshot holds this component."""
        with self._pin_lock:
            return self._pins > 0

    def pin(self) -> None:
        """Hold the component readable: a concurrent merge may mark it
        MERGED but its pages are not released until the last unpin."""
        with self._pin_lock:
            if self.state is ComponentState.DELETED:
                raise ComponentStateError(
                    f"cannot pin deleted component {self.component_id}"
                )
            self._pins += 1

    def unpin(self) -> None:
        """Release one pin; runs a deferred destroy at the last release."""
        destroy_now = False
        with self._pin_lock:
            if self._pins <= 0:
                raise ComponentStateError(
                    f"unpin without pin on component {self.component_id}"
                )
            self._pins -= 1
            if self._pins == 0 and self._destroy_deferred:
                self._destroy_deferred = False
                destroy_now = True
        if destroy_now:
            self._destroy()

    def lookup(self, key: Any) -> Record | None:
        """Point lookup; the Bloom filter short-circuits definite misses
        before any page is read."""
        self._check_readable()
        if self.bloom is not None and not self.bloom.might_contain(key):
            self.bloom_negatives += 1
            return None
        return self.btree.lookup(key)

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Range scan within this component."""
        self._check_readable()
        return self.btree.scan(lo, hi)

    def mark_merged(self) -> None:
        """Flag the component as superseded by a merge."""
        if self.state is not ComponentState.ACTIVE:
            raise ComponentStateError(
                f"component {self.component_id} is {self.state.value}"
            )
        self.state = ComponentState.MERGED

    def destroy(self) -> None:
        """Release disk space; only merged components may be destroyed.

        While reader snapshots still pin the component the deletion is
        *deferred*: the call returns immediately and the last ``unpin``
        performs it, so no file disappears under an in-flight scan.
        """
        if self.state is not ComponentState.MERGED:
            raise ComponentStateError(
                f"cannot destroy component {self.component_id} in state "
                f"{self.state.value}"
            )
        with self._pin_lock:
            if self._pins > 0:
                self._destroy_deferred = True
                return
        self._destroy()

    def _destroy(self) -> None:
        self.btree.destroy()
        self.state = ComponentState.DELETED

    def _check_readable(self) -> None:
        # MERGED stays readable: a pinned snapshot may still scan a
        # component a background merge has already superseded.
        if self.state is ComponentState.DELETED:
            raise ComponentStateError(
                f"component {self.component_id} is {self.state.value}"
            )

    def __repr__(self) -> str:
        return (
            f"DiskComponent(id={self.component_id}, matter={self.matter_count}, "
            f"anti={self.antimatter_count}, state={self.state.value})"
        )
