"""Per-partition write-ahead log on the simulated disk.

RocksDB-style durability for the memtable: every operation's records
are appended to the log *before* any memtable accepts them, so a crash
can never lose acknowledged writes (the manifest protects the disk
components; the WAL protects the mutable component).  Three design
points mirror the real thing:

* **Op-atomic entries.**  A dataset operation writes one record into
  the primary index and one per secondary index, all under one sequence
  number.  The log stores all of them as a single entry, so replay can
  never observe a *torn* operation (primary updated, secondary not).

* **Group commit.**  Entries buffer in memory and are committed to one
  log page per group (reusing the PR 3 ``write_batch_size`` notion of a
  chunk), amortising the page write the way group commit amortises the
  fsync.  The crash model keeps this honest: a buffered-but-uncommitted
  group is lost on crash, and crash points only exist at instants where
  the buffer is empty (see :mod:`repro.lsm.crashpoints`).

* **Truncate at flush.**  Once a flush transaction commits, the logged
  operations live in disk components and the log restarts as a fresh
  file; the superblock pointer flips first, so a crash between the flip
  and the old file's deletion leaves an orphan that recovery GCs.

Each committed page carries a checksum over its entries; replay
verifies it and raises :class:`~repro.errors.WALError` on corruption.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Iterator

from repro.errors import WALError
from repro.lsm.crashpoints import CrashInjector
from repro.lsm.record import Record
from repro.lsm.storage import FileHandle, SimulatedDisk
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["WriteAheadLog", "DEFAULT_WAL_GROUP_SIZE"]

DEFAULT_WAL_GROUP_SIZE = 1
"""Operations buffered per group commit (one log page per group).

The default of 1 makes *acknowledged == durable*: every operation's
entry is committed before the op returns.  Real group commit amortises
the fsync across concurrent writers while each of them still blocks
until its group is durable; this simulation has a single logical
writer, so honest group commit degenerates to one commit per op.
Larger sizes are the async-WAL trade (RocksDB ``sync=false``): the log
page write is amortised, but a crash between group commits loses the
acknowledged ops still sitting in the buffer.  Lifecycle crash points
never observe a non-empty buffer either way, because every flush path
syncs the log first.
"""


def _group_checksum(entries: list[tuple[int, list[tuple[str, tuple]]]]) -> int:
    return zlib.crc32(repr(entries).encode())


class WriteAheadLog:
    """An append-only operation log for one dataset partition.

    Args:
        disk: The partition's simulated disk.
        name: Namespace of this log (e.g. ``"orders.p3"``); the current
            log file id is kept under ``wal:<name>`` in the disk's
            superblock so recovery can find it.
        group_size: Operations per group commit.
        recover: Reopen the existing log named in the superblock
            instead of starting a fresh one.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        name: str,
        group_size: int = DEFAULT_WAL_GROUP_SIZE,
        recover: bool = False,
        crash_injector: CrashInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if group_size < 1:
            raise WALError(f"group_size must be >= 1, got {group_size}")
        self.disk = disk
        self.name = name
        self.group_size = group_size
        self._injector = crash_injector
        # The application thread appends operations while a background
        # flush task syncs and truncates the same log; the mutex keeps
        # the pending buffer and the current-file switch atomic.
        self._mutex = threading.Lock()
        self._pending: list[tuple[int, list[tuple[str, tuple]]]] = []
        obs = registry if registry is not None else get_registry()
        self._m_appends = obs.counter("wal.appends")
        self._m_commits = obs.counter("wal.commits")
        self._m_truncations = obs.counter("wal.truncations")
        self._m_replayed = obs.counter("wal.replayed.records")
        superblock_key = self._superblock_key
        if recover and superblock_key in disk.superblock:
            self._file = FileHandle(disk, disk.superblock[superblock_key])
        else:
            self._file = disk.create_file()
            disk.superblock[superblock_key] = self._file.file_id

    @property
    def _superblock_key(self) -> str:
        return f"wal:{self.name}"

    @property
    def file_id(self) -> int:
        """Id of the current log file (a live reference for GC)."""
        return self._file.file_id

    @property
    def pending_ops(self) -> int:
        """Operations buffered but not yet group-committed."""
        return len(self._pending)

    def _fire(self, point: str) -> None:
        if self._injector is not None:
            self._injector.reached(point)

    # -- write path ------------------------------------------------------

    def log_op(self, seqnum: int, writes: list[tuple[str, Record]]) -> None:
        """Log one operation: every index's record under one seqnum.

        Records are stored by value (the frozen dataclass fields), not
        by reference, mirroring serialisation onto the log page.
        """
        entry = (
            seqnum,
            [
                (tree_name, (r.key, r.value, r.antimatter, r.seqnum))
                for tree_name, r in writes
            ],
        )
        with self._mutex:
            self._pending.append(entry)
            self._m_appends.inc()
            if len(self._pending) >= self.group_size:
                self._commit_group()

    def append(self, tree_name: str, record: Record) -> None:
        """Log a single-index write (standalone-tree convenience)."""
        self.log_op(record.seqnum, [(tree_name, record)])

    def sync(self) -> None:
        """Force-commit the buffered group (e.g. before a flush)."""
        with self._mutex:
            if self._pending:
                self._commit_group()

    def _commit_group(self) -> None:
        group = self._pending
        self._pending = []
        self._file.append_page(
            {"entries": group, "crc": _group_checksum(group)}
        )
        self._m_commits.inc()
        self._fire("wal.commit")

    def truncate(self) -> None:
        """Restart the log in a fresh file (called after the flushed
        data became durable in components via the manifest)."""
        with self._mutex:
            if self._pending:
                raise WALError(
                    f"truncate with {len(self._pending)} uncommitted ops "
                    "(sync before flushing)"
                )
            old = self._file
            self._file = self.disk.create_file()
            self.disk.superblock[self._superblock_key] = self._file.file_id
            self._m_truncations.inc()
            # Crash here and the old log file is an orphan: the superblock
            # already points at the fresh file, recovery GCs the old one.
            self._fire("wal.truncate")
            old.delete()

    # -- recovery --------------------------------------------------------

    def replay(self) -> Iterator[tuple[int, str, Record]]:
        """Yield ``(seqnum, tree_name, record)`` for every logged write,
        in log order, verifying each group's checksum."""
        for page_no in range(self._file.num_pages):
            page = self._file.read_page(page_no)
            entries = self._read_group(page, page_no)
            for seqnum, writes in entries:
                for tree_name, fields in writes:
                    key, value, antimatter, record_seq = fields
                    self._m_replayed.inc()
                    yield (
                        seqnum,
                        tree_name,
                        Record(key, value, antimatter, record_seq),
                    )

    def _read_group(
        self, page: Any, page_no: int
    ) -> list[tuple[int, list[tuple[str, tuple]]]]:
        if not isinstance(page, dict) or "entries" not in page:
            raise WALError(
                f"wal {self.name!r}: page {page_no} is not a log group"
            )
        entries = page["entries"]
        if page.get("crc") != _group_checksum(entries):
            raise WALError(
                f"wal {self.name!r}: checksum mismatch on page {page_no}"
            )
        return entries
