"""Immutable disk-resident B-tree components.

Every LSM disk operation is generalised by a single ``bulkload()``
routine (paper Section 3.1) that receives a stream of records already
sorted by key and builds an index bottom-up: leaf pages are filled
left-to-right, then interior levels are stacked on top.  The resulting
tree is immutable, exactly like an LSM disk component.

Pages live on a :class:`~repro.lsm.storage.SimulatedDisk`, so lookups and
scans are charged random/sequential I/O.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

from repro.errors import BulkloadError, StorageError
from repro.lsm.record import Record
from repro.lsm.storage import FileHandle, SimulatedDisk

__all__ = [
    "DiskBTree",
    "build_btree",
    "build_btree_chunks",
    "btree_from_descriptor",
    "DEFAULT_LEAF_CAPACITY",
    "DEFAULT_FANOUT",
]

DEFAULT_LEAF_CAPACITY = 64
"""Records per leaf page."""

DEFAULT_FANOUT = 64
"""Children per interior page."""


class _LeafPage:
    """A leaf holding sorted records plus a next-sibling pointer."""

    __slots__ = ("keys", "records", "next_leaf")

    def __init__(self, records: list[Record]) -> None:
        self.records = records
        self.keys = [record.key for record in records]
        self.next_leaf: int | None = None


class _InteriorPage:
    """An interior node: separator keys and child page numbers.

    ``separators[i]`` is the smallest key reachable under
    ``children[i + 1]``; a lookup key ``k`` descends into
    ``children[bisect_right(separators, k)]``.
    """

    __slots__ = ("separators", "children")

    def __init__(self, separators: list[Any], children: list[int]) -> None:
        self.separators = separators
        self.children = children


class DiskBTree:
    """An immutable B-tree over sorted records, backed by disk pages."""

    def __init__(
        self,
        file: FileHandle,
        root_page: int | None,
        height: int,
        num_records: int,
        first_leaf: int | None,
    ) -> None:
        self._file = file
        self._root_page = root_page
        self.height = height
        self.num_records = num_records
        self._first_leaf = first_leaf

    @property
    def num_pages(self) -> int:
        """Total pages occupied by the tree."""
        return self._file.num_pages

    @property
    def file_id(self) -> int:
        """Id of the backing file on the simulated disk."""
        return self._file.file_id

    def __len__(self) -> int:
        return self.num_records

    def describe(self) -> dict[str, int | None]:
        """The tree's structural root pointers as plain data.

        Everything needed to reopen the tree against its (sealed,
        surviving) file after a crash -- the manifest persists this in
        component commit entries, mirroring how a real MANIFEST records
        SSTable metadata rather than the SSTable bytes.
        """
        return {
            "file_id": self._file.file_id,
            "root_page": self._root_page,
            "height": self.height,
            "num_records": self.num_records,
            "first_leaf": self._first_leaf,
        }

    def lookup(self, key: Any) -> Record | None:
        """Point lookup; returns the record (possibly anti-matter) or None."""
        if self._root_page is None:
            return None
        page = self._descend(key)
        index = bisect_left(page.keys, key)
        if index < len(page.keys) and page.keys[index] == key:
            return page.records[index]
        return None

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Records with ``lo <= key <= hi`` in key order.

        ``None`` bounds are open.  Sibling leaves are followed via their
        next pointers, so a long scan is mostly sequential I/O.
        """
        if self._root_page is None:
            return
        if lo is None:
            page_no: int | None = self._first_leaf
            assert page_no is not None
            page = self._read_page(page_no)
            start = 0
        else:
            page, page_no = self._descend_with_page_no(lo)
            start = bisect_left(page.keys, lo)
        while True:
            for index in range(start, len(page.records)):
                record = page.records[index]
                if hi is not None and record.key > hi:
                    return
                yield record
            if page.next_leaf is None:
                return
            page = self._read_page(page.next_leaf)
            start = 0

    def iter_all(self) -> Iterator[Record]:
        """All records in key order (equivalent to an unbounded scan)."""
        return self.scan()

    def min_key(self) -> Any:
        """Smallest key, or ``None`` for an empty tree."""
        if self._first_leaf is None:
            return None
        return self._read_page(self._first_leaf).keys[0]

    def max_key(self) -> Any:
        """Largest key, or ``None`` for an empty tree."""
        if self._root_page is None:
            return None
        page = self._read_page(self._root_page)
        for _level in range(self.height):
            assert isinstance(page, _InteriorPage)
            page = self._read_page(page.children[-1])
        assert isinstance(page, _LeafPage)
        return page.keys[-1]

    def destroy(self) -> None:
        """Release the backing file (component deleted after a merge)."""
        self._file.delete()

    # -- internals -------------------------------------------------------

    def _read_page(self, page_no: int) -> Any:
        return self._file.read_page(page_no)

    def _descend(self, key: Any) -> _LeafPage:
        page, _page_no = self._descend_with_page_no(key)
        return page

    def _descend_with_page_no(self, key: Any) -> tuple[_LeafPage, int]:
        if self._root_page is None:
            raise StorageError("descend into empty tree")
        page_no = self._root_page
        page = self._read_page(page_no)
        for _level in range(self.height):
            assert isinstance(page, _InteriorPage)
            child_index = bisect_right(page.separators, key)
            page_no = page.children[child_index]
            page = self._read_page(page_no)
        assert isinstance(page, _LeafPage)
        return page, page_no


def build_btree(
    disk: SimulatedDisk,
    records: Iterable[Record],
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> DiskBTree:
    """Bulkload an immutable B-tree from a key-sorted record stream.

    Raises :class:`~repro.errors.BulkloadError` when the stream is not
    strictly sorted by key (LSM components never contain duplicate keys:
    reconciliation keeps one entry per key).
    """
    if leaf_capacity <= 1 or fanout <= 1:
        raise BulkloadError("leaf_capacity and fanout must both exceed 1")

    file = disk.create_file()
    leaf_page_nos: list[int] = []
    leaf_min_keys: list[Any] = []
    leaves: list[_LeafPage] = []

    buffer: list[Record] = []
    previous_key: Any = None
    num_records = 0
    for record in records:
        if previous_key is not None and not previous_key < record.key:
            raise BulkloadError(
                f"bulkload stream not strictly sorted: {previous_key!r} "
                f"followed by {record.key!r}"
            )
        previous_key = record.key
        buffer.append(record)
        num_records += 1
        if len(buffer) == leaf_capacity:
            _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)
            buffer = []
    if buffer:
        _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)

    return _seal_tree(
        file, leaf_page_nos, leaf_min_keys, leaves, fanout, num_records
    )


def build_btree_chunks(
    disk: SimulatedDisk,
    chunks: Iterable[list[Record]],
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> DiskBTree:
    """Bulkload an immutable B-tree from a stream of key-sorted chunks.

    The chunked twin of :func:`build_btree` (the batched ingestion hot
    path): each chunk is validated in one tight pass and leaves are
    filled by slicing, so the per-record generator machinery disappears
    from the bulkload loop.  The resulting tree is structurally
    identical to the per-record build of the flattened stream.
    """
    if leaf_capacity <= 1 or fanout <= 1:
        raise BulkloadError("leaf_capacity and fanout must both exceed 1")

    file = disk.create_file()
    leaf_page_nos: list[int] = []
    leaf_min_keys: list[Any] = []
    leaves: list[_LeafPage] = []

    buffer: list[Record] = []
    previous_key: Any = None
    num_records = 0
    for chunk in chunks:
        if not chunk:
            continue
        key = previous_key
        for record in chunk:
            if key is not None and not key < record.key:
                raise BulkloadError(
                    f"bulkload stream not strictly sorted: {key!r} "
                    f"followed by {record.key!r}"
                )
            key = record.key
        previous_key = key
        num_records += len(chunk)
        buffer.extend(chunk)
        while len(buffer) >= leaf_capacity:
            _emit_leaf(
                file, buffer[:leaf_capacity], leaf_page_nos, leaf_min_keys, leaves
            )
            del buffer[:leaf_capacity]
    if buffer:
        _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)

    return _seal_tree(
        file, leaf_page_nos, leaf_min_keys, leaves, fanout, num_records
    )


def btree_from_descriptor(
    disk: SimulatedDisk, descriptor: dict[str, Any]
) -> DiskBTree:
    """Reopen an immutable B-tree from a :meth:`DiskBTree.describe`
    payload; the backing file must still be live on ``disk``."""
    try:
        file_id = descriptor["file_id"]
        tree = DiskBTree(
            FileHandle(disk, file_id),
            root_page=descriptor["root_page"],
            height=descriptor["height"],
            num_records=descriptor["num_records"],
            first_leaf=descriptor["first_leaf"],
        )
    except KeyError as exc:
        raise StorageError(
            f"malformed B-tree descriptor (missing {exc})"
        ) from exc
    # Fail fast on a dangling file reference instead of at first read.
    disk.num_pages(file_id)
    return tree


def _seal_tree(
    file: FileHandle,
    leaf_page_nos: list[int],
    leaf_min_keys: list[Any],
    leaves: list[_LeafPage],
    fanout: int,
    num_records: int,
) -> DiskBTree:
    """Chain sibling leaves, stack interior levels and seal the file."""
    # Chain the sibling pointers now that page numbers are known.
    for leaf, next_page in zip(leaves, leaf_page_nos[1:]):
        leaf.next_leaf = next_page

    if not leaf_page_nos:
        file.seal()
        return DiskBTree(file, None, 0, 0, None)

    # Stack interior levels until a single root remains.
    height = 0
    level_pages = leaf_page_nos
    level_keys = leaf_min_keys
    while len(level_pages) > 1:
        height += 1
        next_pages: list[int] = []
        next_keys: list[Any] = []
        for start in range(0, len(level_pages), fanout):
            children = level_pages[start : start + fanout]
            group_keys = level_keys[start : start + fanout]
            node = _InteriorPage(separators=group_keys[1:], children=children)
            next_pages.append(file.append_page(node))
            next_keys.append(group_keys[0])
        level_pages, level_keys = next_pages, next_keys

    file.seal()
    return DiskBTree(
        file,
        root_page=level_pages[0],
        height=height,
        num_records=num_records,
        first_leaf=leaf_page_nos[0],
    )


def _emit_leaf(
    file: FileHandle,
    buffer: list[Record],
    page_nos: list[int],
    min_keys: list[Any],
    leaves: list[_LeafPage],
) -> None:
    # Callers hand over a fresh list (rebound or sliced), so the page
    # takes ownership without copying.
    leaf = _LeafPage(buffer)
    page_nos.append(file.append_page(leaf))
    min_keys.append(leaf.keys[0])
    leaves.append(leaf)
