"""Immutable disk-resident B-tree components.

Every LSM disk operation is generalised by a single ``bulkload()``
routine (paper Section 3.1) that receives a stream of records already
sorted by key and builds an index bottom-up: leaf pages are filled
left-to-right, then interior levels are stacked on top.  The resulting
tree is immutable, exactly like an LSM disk component.

Pages live on a :class:`~repro.lsm.storage.SimulatedDisk`, so lookups and
scans are charged random/sequential I/O.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from operator import lt
from typing import Any, Iterable, Iterator

from repro.errors import BulkloadError, StorageError
from repro.lsm.columnar import ColumnarChunk
from repro.lsm.record import Record
from repro.lsm.storage import FileHandle, SimulatedDisk
from repro.util.npbackend import int64_view

__all__ = [
    "DiskBTree",
    "build_btree",
    "build_btree_chunks",
    "btree_from_descriptor",
    "DEFAULT_LEAF_CAPACITY",
    "DEFAULT_FANOUT",
]

DEFAULT_LEAF_CAPACITY = 64
"""Records per leaf page."""

DEFAULT_FANOUT = 64
"""Children per interior page."""


class _LeafPage:
    """A leaf holding sorted records plus a next-sibling pointer."""

    __slots__ = ("keys", "records", "next_leaf")

    def __init__(self, records: list[Record]) -> None:
        self.records = records
        self.keys = [record.key for record in records]
        self.next_leaf: int | None = None


class _ColumnarLeafPage:
    """A leaf holding sorted rows as columns (the columnar build path).

    Exposes the same ``keys``/``records``/``next_leaf`` surface as
    :class:`_LeafPage`, but stores the key/value/anti/seqnum columns a
    :class:`~repro.lsm.columnar.ColumnarChunk` delivered -- ``Record``
    objects are materialised lazily (and memoized) the first time a
    read actually touches the leaf, so the ingest path never allocates
    them.  ``values``/``anti`` keep the chunk contract's ``None``
    sentinels (all-``None`` payloads / pure matter).
    """

    __slots__ = ("keys", "values", "anti", "seqnums", "next_leaf", "_records")

    def __init__(
        self,
        keys: list[Any],
        values: list[Any] | None,
        anti: list[bool] | None,
        seqnums: list[int],
    ) -> None:
        self.keys = keys
        self.values = values
        self.anti = anti
        self.seqnums = seqnums
        self.next_leaf: int | None = None
        self._records: list[Record] | None = None

    @property
    def records(self) -> list[Record]:
        if self._records is None:
            keys = self.keys
            values = self.values
            anti = self.anti
            seqnums = self.seqnums
            self._records = [
                Record(
                    keys[i],
                    values[i] if values is not None else None,
                    anti[i] if anti is not None else False,
                    seqnums[i],
                )
                for i in range(len(keys))
            ]
        return self._records


class _InteriorPage:
    """An interior node: separator keys and child page numbers.

    ``separators[i]`` is the smallest key reachable under
    ``children[i + 1]``; a lookup key ``k`` descends into
    ``children[bisect_right(separators, k)]``.
    """

    __slots__ = ("separators", "children")

    def __init__(self, separators: list[Any], children: list[int]) -> None:
        self.separators = separators
        self.children = children


class DiskBTree:
    """An immutable B-tree over sorted records, backed by disk pages."""

    def __init__(
        self,
        file: FileHandle,
        root_page: int | None,
        height: int,
        num_records: int,
        first_leaf: int | None,
    ) -> None:
        self._file = file
        self._root_page = root_page
        self.height = height
        self.num_records = num_records
        self._first_leaf = first_leaf

    @property
    def num_pages(self) -> int:
        """Total pages occupied by the tree."""
        return self._file.num_pages

    def memory_bytes(self) -> int:
        """Accounted *resident* footprint (docs/MEMORY.md): the handle
        plus per-page metadata.  Pages themselves live on the simulated
        disk and are charged as I/O, not memory; what a real engine
        keeps resident per open component is the file handle and page
        table, modelled as a fixed 64 bytes plus 16 per page."""
        return 64 + 16 * self._file.num_pages

    @property
    def file_id(self) -> int:
        """Id of the backing file on the simulated disk."""
        return self._file.file_id

    def __len__(self) -> int:
        return self.num_records

    def describe(self) -> dict[str, int | None]:
        """The tree's structural root pointers as plain data.

        Everything needed to reopen the tree against its (sealed,
        surviving) file after a crash -- the manifest persists this in
        component commit entries, mirroring how a real MANIFEST records
        SSTable metadata rather than the SSTable bytes.
        """
        return {
            "file_id": self._file.file_id,
            "root_page": self._root_page,
            "height": self.height,
            "num_records": self.num_records,
            "first_leaf": self._first_leaf,
        }

    def lookup(self, key: Any) -> Record | None:
        """Point lookup; returns the record (possibly anti-matter) or None."""
        if self._root_page is None:
            return None
        page = self._descend(key)
        index = bisect_left(page.keys, key)
        if index < len(page.keys) and page.keys[index] == key:
            return page.records[index]
        return None

    def scan(self, lo: Any = None, hi: Any = None) -> Iterator[Record]:
        """Records with ``lo <= key <= hi`` in key order.

        ``None`` bounds are open.  Sibling leaves are followed via their
        next pointers, so a long scan is mostly sequential I/O.
        """
        if self._root_page is None:
            return
        if lo is None:
            page_no: int | None = self._first_leaf
            assert page_no is not None
            page = self._read_page(page_no)
            start = 0
        else:
            page, page_no = self._descend_with_page_no(lo)
            start = bisect_left(page.keys, lo)
        while True:
            for index in range(start, len(page.records)):
                record = page.records[index]
                if hi is not None and record.key > hi:
                    return
                yield record
            if page.next_leaf is None:
                return
            page = self._read_page(page.next_leaf)
            start = 0

    def iter_all(self) -> Iterator[Record]:
        """All records in key order (equivalent to an unbounded scan)."""
        return self.scan()

    def min_key(self) -> Any:
        """Smallest key, or ``None`` for an empty tree."""
        if self._first_leaf is None:
            return None
        return self._read_page(self._first_leaf).keys[0]

    def max_key(self) -> Any:
        """Largest key, or ``None`` for an empty tree."""
        if self._root_page is None:
            return None
        page = self._read_page(self._root_page)
        for _level in range(self.height):
            assert isinstance(page, _InteriorPage)
            page = self._read_page(page.children[-1])
        assert not isinstance(page, _InteriorPage)
        return page.keys[-1]

    def destroy(self) -> None:
        """Release the backing file (component deleted after a merge)."""
        self._file.delete()

    # -- internals -------------------------------------------------------

    def _read_page(self, page_no: int) -> Any:
        return self._file.read_page(page_no)

    def _descend(self, key: Any) -> Any:
        page, _page_no = self._descend_with_page_no(key)
        return page

    def _descend_with_page_no(self, key: Any) -> tuple[Any, int]:
        if self._root_page is None:
            raise StorageError("descend into empty tree")
        page_no = self._root_page
        page = self._read_page(page_no)
        for _level in range(self.height):
            assert isinstance(page, _InteriorPage)
            child_index = bisect_right(page.separators, key)
            page_no = page.children[child_index]
            page = self._read_page(page_no)
        assert not isinstance(page, _InteriorPage)
        return page, page_no


def build_btree(
    disk: SimulatedDisk,
    records: Iterable[Record],
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> DiskBTree:
    """Bulkload an immutable B-tree from a key-sorted record stream.

    Raises :class:`~repro.errors.BulkloadError` when the stream is not
    strictly sorted by key (LSM components never contain duplicate keys:
    reconciliation keeps one entry per key).
    """
    if leaf_capacity <= 1 or fanout <= 1:
        raise BulkloadError("leaf_capacity and fanout must both exceed 1")

    file = disk.create_file()
    leaf_page_nos: list[int] = []
    leaf_min_keys: list[Any] = []
    leaves: list[_LeafPage] = []

    buffer: list[Record] = []
    previous_key: Any = None
    num_records = 0
    for record in records:
        if previous_key is not None and not previous_key < record.key:
            raise BulkloadError(
                f"bulkload stream not strictly sorted: {previous_key!r} "
                f"followed by {record.key!r}"
            )
        previous_key = record.key
        buffer.append(record)
        num_records += 1
        if len(buffer) == leaf_capacity:
            _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)
            buffer = []
    if buffer:
        _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)

    return _seal_tree(
        file, leaf_page_nos, leaf_min_keys, leaves, fanout, num_records
    )


def build_btree_chunks(
    disk: SimulatedDisk,
    chunks: "Iterable[list[Record] | ColumnarChunk]",
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> DiskBTree:
    """Bulkload an immutable B-tree from a stream of key-sorted chunks.

    The chunked twin of :func:`build_btree` (the batched ingestion hot
    path).  Chunks may be plain ``list[Record]`` slices or
    :class:`~repro.lsm.columnar.ColumnarChunk` columns; columnar chunks
    take the fast lane -- sortedness is validated over the typed key
    column (vectorised when the numpy backend is on), leaves are packed
    by column slicing into :class:`_ColumnarLeafPage` objects, and no
    ``Record`` is ever allocated at build time.  The resulting tree is
    structurally identical to the per-record build of the flattened
    stream; only the in-memory page representation differs.
    """
    if leaf_capacity <= 1 or fanout <= 1:
        raise BulkloadError("leaf_capacity and fanout must both exceed 1")

    file = disk.create_file()
    leaf_page_nos: list[int] = []
    leaf_min_keys: list[Any] = []
    leaves: list[Any] = []

    # Record-list chunks buffer records; columnar chunks buffer columns.
    # A single stream never mixes the two in practice (the tree's write
    # path is all-columnar, the public API compatibility tests are
    # all-lists), but interleaving is tolerated: each representation
    # drains its buffer below leaf capacity before the other appends.
    buffer: list[Record] = []
    key_buf: list[Any] = []
    value_buf: list[Any] | None = None
    anti_buf: list[bool] | None = None
    seq_buf: list[int] = []
    previous_key: Any = None
    num_records = 0

    def emit_columnar() -> None:
        nonlocal key_buf, value_buf, anti_buf, seq_buf
        while len(key_buf) >= leaf_capacity:
            leaf = _ColumnarLeafPage(
                key_buf[:leaf_capacity],
                value_buf[:leaf_capacity] if value_buf is not None else None,
                anti_buf[:leaf_capacity] if anti_buf is not None else None,
                seq_buf[:leaf_capacity],
            )
            _register_leaf(file, leaf, leaf_page_nos, leaf_min_keys, leaves)
            del key_buf[:leaf_capacity]
            if value_buf is not None:
                del value_buf[:leaf_capacity]
            if anti_buf is not None:
                del anti_buf[:leaf_capacity]
            del seq_buf[:leaf_capacity]

    for chunk in chunks:
        if not len(chunk):
            continue
        if isinstance(chunk, ColumnarChunk):
            if buffer:
                raise BulkloadError(
                    "columnar chunk arrived while record-list rows were "
                    "buffered; a chunk stream must not interleave "
                    "representations mid-leaf"
                )
            keys = chunk.keys_list()
            previous_key = _check_chunk_sorted(chunk, keys, previous_key)
            num_records += len(keys)
            key_buf.extend(keys)
            seq_buf.extend(chunk.seqnums)
            if chunk.values is not None:
                if value_buf is None:
                    value_buf = [None] * (len(key_buf) - len(keys))
                value_buf.extend(chunk.values)
            elif value_buf is not None:
                value_buf.extend([None] * len(keys))
            if chunk.anti is not None:
                if anti_buf is None:
                    anti_buf = [False] * (len(key_buf) - len(keys))
                anti_buf.extend(chunk.anti)
            elif anti_buf is not None:
                anti_buf.extend([False] * len(keys))
            emit_columnar()
            continue
        if key_buf:
            raise BulkloadError(
                "record-list chunk arrived while columnar rows were "
                "buffered; a chunk stream must not interleave "
                "representations mid-leaf"
            )
        key = previous_key
        for record in chunk:
            if key is not None and not key < record.key:
                raise BulkloadError(
                    f"bulkload stream not strictly sorted: {key!r} "
                    f"followed by {record.key!r}"
                )
            key = record.key
        previous_key = key
        num_records += len(chunk)
        buffer.extend(chunk)
        while len(buffer) >= leaf_capacity:
            _emit_leaf(
                file, buffer[:leaf_capacity], leaf_page_nos, leaf_min_keys, leaves
            )
            del buffer[:leaf_capacity]
    if buffer:
        _emit_leaf(file, buffer, leaf_page_nos, leaf_min_keys, leaves)
    if key_buf:
        leaf = _ColumnarLeafPage(key_buf, value_buf, anti_buf, seq_buf)
        _register_leaf(file, leaf, leaf_page_nos, leaf_min_keys, leaves)

    return _seal_tree(
        file, leaf_page_nos, leaf_min_keys, leaves, fanout, num_records
    )


def _check_chunk_sorted(
    chunk: ColumnarChunk, keys: list[Any], previous_key: Any
) -> Any:
    """Validate strict ascent of one columnar chunk (and its boundary
    against the previous chunk); returns the chunk's last key.

    With the numpy backend on and typed keys present, the in-chunk
    check runs as one vectorised comparison over the ``int64`` view --
    the same ``<`` semantics the pure-Python pass applies, so both
    backends accept and reject identical streams.
    """
    if previous_key is not None and not previous_key < keys[0]:
        raise BulkloadError(
            f"bulkload stream not strictly sorted: {previous_key!r} "
            f"followed by {keys[0]!r}"
        )
    if len(keys) > 1:
        ascending = False
        view = (
            int64_view(chunk.typed_keys)
            if chunk.typed_keys is not None
            else None
        )
        if view is not None:
            ascending = bool((view[1:] > view[:-1]).all())
        else:
            ascending = all(map(lt, keys, islice(keys, 1, None)))
        if not ascending:
            for left, right in zip(keys, islice(keys, 1, None)):
                if not left < right:
                    raise BulkloadError(
                        f"bulkload stream not strictly sorted: {left!r} "
                        f"followed by {right!r}"
                    )
    return keys[-1]


def btree_from_descriptor(
    disk: SimulatedDisk, descriptor: dict[str, Any]
) -> DiskBTree:
    """Reopen an immutable B-tree from a :meth:`DiskBTree.describe`
    payload; the backing file must still be live on ``disk``."""
    try:
        file_id = descriptor["file_id"]
        tree = DiskBTree(
            FileHandle(disk, file_id),
            root_page=descriptor["root_page"],
            height=descriptor["height"],
            num_records=descriptor["num_records"],
            first_leaf=descriptor["first_leaf"],
        )
    except KeyError as exc:
        raise StorageError(
            f"malformed B-tree descriptor (missing {exc})"
        ) from exc
    # Fail fast on a dangling file reference instead of at first read.
    disk.num_pages(file_id)
    return tree


def _seal_tree(
    file: FileHandle,
    leaf_page_nos: list[int],
    leaf_min_keys: list[Any],
    leaves: list[Any],
    fanout: int,
    num_records: int,
) -> DiskBTree:
    """Chain sibling leaves, stack interior levels and seal the file."""
    # Chain the sibling pointers now that page numbers are known.
    for leaf, next_page in zip(leaves, leaf_page_nos[1:]):
        leaf.next_leaf = next_page

    if not leaf_page_nos:
        file.seal()
        return DiskBTree(file, None, 0, 0, None)

    # Stack interior levels until a single root remains.
    height = 0
    level_pages = leaf_page_nos
    level_keys = leaf_min_keys
    while len(level_pages) > 1:
        height += 1
        next_pages: list[int] = []
        next_keys: list[Any] = []
        for start in range(0, len(level_pages), fanout):
            children = level_pages[start : start + fanout]
            group_keys = level_keys[start : start + fanout]
            node = _InteriorPage(separators=group_keys[1:], children=children)
            next_pages.append(file.append_page(node))
            next_keys.append(group_keys[0])
        level_pages, level_keys = next_pages, next_keys

    file.seal()
    return DiskBTree(
        file,
        root_page=level_pages[0],
        height=height,
        num_records=num_records,
        first_leaf=leaf_page_nos[0],
    )


def _emit_leaf(
    file: FileHandle,
    buffer: list[Record],
    page_nos: list[int],
    min_keys: list[Any],
    leaves: list[Any],
) -> None:
    # Callers hand over a fresh list (rebound or sliced), so the page
    # takes ownership without copying.
    _register_leaf(file, _LeafPage(buffer), page_nos, min_keys, leaves)


def _register_leaf(
    file: FileHandle,
    leaf: Any,
    page_nos: list[int],
    min_keys: list[Any],
    leaves: list[Any],
) -> None:
    page_nos.append(file.append_page(leaf))
    min_keys.append(leaf.keys[0])
    leaves.append(leaf)
