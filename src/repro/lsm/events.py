"""LSM lifecycle events and the observer hook for piggybacked work.

The statistics framework "piggybacks on the events (flush and merge) of
the LSM lifecycle" (paper abstract).  Concretely, every disk component
is written by a single ``bulkload()`` routine consuming a key-sorted
record stream, and observers may *tap* that stream: before the write
starts each registered observer is offered a :class:`ComponentWriteContext`
and may return a per-record sink; every record flowing to disk is also
fed to the sink, and when the component is sealed the sink is finished
with the resulting component.  Observing therefore costs no extra I/O --
precisely the paper's design.

On the batched write path the stream arrives as columnar chunks
(:class:`repro.lsm.columnar.ColumnarChunk`, docs/DATAPATH.md) rather
than ``list[Record]`` slices.  Chunks iterate as records, so sinks
that only implement :meth:`RecordSink.accept` keep working through
:func:`accept_batch` at the cost of one memoized materialisation per
chunk; columnar-aware sinks (the statistics collector) instead read the
chunk's columns directly.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence

from repro.lsm.component import DiskComponent
from repro.lsm.record import Record
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "LSMEventType",
    "ComponentWriteContext",
    "RecordSink",
    "BatchingRecordSink",
    "LSMEventObserver",
    "EventBus",
    "accept_batch",
]


class LSMEventType(enum.Enum):
    """The three LSM lifecycle events that create disk components."""

    FLUSH = "flush"
    MERGE = "merge"
    BULKLOAD = "bulkload"


@dataclass(frozen=True)
class ComponentWriteContext:
    """Everything an observer may need while a component is written.

    Attributes:
        event_type: Which lifecycle event triggered the write.
        index_name: Name of the LSM index being written.
        expected_records: Upper bound on the number of records in the
            stream.  Exact for flushes (the memtable size) and bulkloads
            (provided by the loader); for merges it is the sum of the
            input components' record counts, which reconciliation may
            reduce -- the paper uses the same approximation for the
            equi-height bucket-height invariant.
        key_extractor: Maps a record to the integer value the synopsis
            summarises (the PK for primary indexes, the SK part of the
            composite key for secondary indexes).
        merged_components: Input components of a merge (empty otherwise).
    """

    event_type: LSMEventType
    index_name: str
    expected_records: int
    key_extractor: Callable[[Record], Any]
    merged_components: tuple[DiskComponent, ...] = ()


class RecordSink(Protocol):
    """Per-component-write consumer of the bulkload stream."""

    def accept(self, record: Record) -> None:
        """Observe one record on its way to disk."""

    def finish(self, component: DiskComponent) -> None:
        """The write completed and produced ``component``."""


class BatchingRecordSink(RecordSink, Protocol):
    """A sink that can consume the bulkload stream a slice at a time.

    The batched ingestion path drains the stream in chunks and offers
    each chunk through :meth:`accept_many`; sinks without the method
    fall back transparently to per-record :meth:`accept` via
    :func:`accept_batch`.  ``accept_many(chunk)`` must be semantically
    identical to ``for r in chunk: accept(r)``.

    The chunk may be a ``list[Record]`` or a columnar chunk; both are
    sized, iterable record sequences.  Columnar-aware sinks may
    additionally test for :class:`repro.lsm.columnar.ColumnarChunk`
    and read its columns instead of iterating (docs/DATAPATH.md).
    """

    def accept_many(self, records: Sequence[Record]) -> None:
        """Observe a slice of consecutive stream records."""


def accept_batch(sink: RecordSink, records: Sequence[Record]) -> None:
    """Feed one stream chunk to ``sink``, batched when it supports it.

    With a columnar chunk and a per-record-only sink, the iteration
    triggers the chunk's memoized ``records()`` materialisation --
    counted once per chunk under ``ingest.columnar.fallbacks``.
    """
    accept_many = getattr(sink, "accept_many", None)
    if accept_many is not None:
        accept_many(records)
        return
    accept = sink.accept
    for record in records:
        accept(record)


class LSMEventObserver(Protocol):
    """Subscriber to component writes on an :class:`EventBus`."""

    def begin_component_write(
        self, context: ComponentWriteContext
    ) -> RecordSink | None:
        """Offered once per component write; return a sink to tap the
        stream, or ``None`` to ignore this write."""

    def component_replaced(
        self,
        index_name: str,
        old_components: tuple[DiskComponent, ...],
        new_component: DiskComponent,
    ) -> None:
        """A merge superseded ``old_components`` with ``new_component``."""


class EventBus:
    """Fan-out of LSM lifecycle notifications to registered observers.

    Emits the ``lsm.events.*`` metrics (docs/OBSERVABILITY.md): one
    count per component-write offer and per merge replacement notice,
    plus an observer-population gauge -- enough to see whether a
    statistics framework is actually riding the lifecycle.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._observers: list[LSMEventObserver] = []
        # Notifications may fire from background maintenance threads
        # while the application (un)subscribes; the guard keeps the
        # observer list and the callbacks it drives consistent.  An
        # RLock, because an observer callback may legally re-enter the
        # bus (e.g. a collector publishing triggers another tap offer).
        self._guard = threading.RLock()
        obs = registry if registry is not None else get_registry()
        self._m_writes = obs.counter("lsm.events.component_writes")
        self._m_replacements = obs.counter("lsm.events.replacements")
        self._m_recoveries = obs.counter("lsm.events.recoveries")
        self._g_observers = obs.gauge("lsm.events.observers")

    def subscribe(self, observer: LSMEventObserver) -> None:
        """Register an observer (idempotent)."""
        with self._guard:
            if observer not in self._observers:
                self._observers.append(observer)
                self._g_observers.inc()

    def unsubscribe(self, observer: LSMEventObserver) -> None:
        """Remove an observer if registered."""
        with self._guard:
            if observer in self._observers:
                self._observers.remove(observer)
                self._g_observers.inc(-1)

    def open_sinks(self, context: ComponentWriteContext) -> list[RecordSink]:
        """Collect sinks from all observers for one component write."""
        with self._guard:
            self._m_writes.inc()
            sinks = []
            for observer in self._observers:
                sink = observer.begin_component_write(context)
                if sink is not None:
                    sinks.append(sink)
            return sinks

    def notify_replaced(
        self,
        index_name: str,
        old_components: tuple[DiskComponent, ...],
        new_component: DiskComponent,
    ) -> None:
        """Broadcast that a merge superseded components."""
        with self._guard:
            self._m_replacements.inc()
            for observer in self._observers:
                observer.component_replaced(
                    index_name, old_components, new_component
                )

    def notify_recovered(
        self,
        index_name: str,
        components: Sequence[DiskComponent],
        key_extractor: Callable[[Record], Any],
    ) -> None:
        """Broadcast that crash recovery reinstated ``components``
        (oldest first) for ``index_name``.

        Recovery rebuilds components from the manifest *without* the
        component-write stream observers normally tap, so observers that
        derive state from that stream (the statistics collector) get
        this one chance to re-derive it by scanning the recovered
        components.  Observers without a ``components_recovered`` method
        are skipped -- recovery is an optional part of the protocol.
        """
        with self._guard:
            self._m_recoveries.inc()
            for observer in self._observers:
                handler = getattr(observer, "components_recovered", None)
                if handler is not None:
                    handler(index_name, components, key_extractor)
