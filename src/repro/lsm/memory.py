"""Per-node memory arbitration for the LSM storage layer.

The paper's synopses stay "lightweight" only while someone arbitrates
the memory they and the LSM components compete for.  Following Luo &
Carey (*Breaking Down Memory Walls*, PAPERS.md), a single global byte
budget per node beats any static per-dataset split: the
:class:`MemoryArbiter` owns that budget and divides it between

* the **write arena** -- every dataset's active memtables,
* the **immutable pool** -- sealed memtables queued for flush,
* **bloom headroom** -- filters attached to resident disk components,
* the **merged-synopsis cache** -- the master-side fast path of
  Algorithm 2 (``core/cache.py``).

Shares re-balance as the workload shifts: a write-heavy phase grows the
write arena at the cache's expense, an estimate-heavy phase does the
reverse.  Pressure responses are split by determinism class (the same
discipline ``MergePacer`` follows, docs/MEMORY.md):

* **Early flushes** are *image-affecting but mode-invariant*: the
  trigger compares the active memtables' accounted bytes -- a pure
  function of the DML stream and prior rotation points -- against the
  per-dataset allowance, so sync, virtual and threaded schedulers all
  rotate at the identical record.  ``racecheck --memory`` proves it.
* **Backpressure and cache evictions** are *timing-only*: the write
  path may wait for the immutable pool to drain (never changing what
  flushes produce), and LRU evictions only cost the master a
  deterministic re-merge on the next estimate.

Accounting is incremental: every component exposes ``memory_bytes()``
maintained as cheap running counters (no O(n) walks on the hot path),
and datasets push per-pool breakdowns to the arbiter at write, flush,
merge and recovery boundaries.  The arbiter's view therefore equals the
ground-truth sum of component footprints at every quiescent point -- an
invariant the hypothesis suite replays under all three scheduler modes.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import MergedSynopsisCache
    from repro.lsm.record import Record

__all__ = [
    "MemoryArbiter",
    "MemoryUsage",
    "record_footprint",
    "ENTRY_OVERHEAD_BYTES",
]


ENTRY_OVERHEAD_BYTES = 64
"""Fixed per-entry cost: map node, record object, key reference."""

_KEY_BYTES = 16
_VALUE_SLOT_BYTES = 24
_DICT_OVERHEAD_BYTES = 32


def record_footprint(record: "Record") -> int:
    """Deterministic size model for one memtable entry.

    A *model*, not ``sys.getsizeof``: identical records must cost
    identical bytes on every platform and Python version, because
    arbitration decisions derived from these numbers are replayed by
    the determinism oracles (``racecheck --memory``).
    """
    bytes_ = ENTRY_OVERHEAD_BYTES + _KEY_BYTES
    value = record.value
    if isinstance(value, dict):
        bytes_ += _DICT_OVERHEAD_BYTES + _VALUE_SLOT_BYTES * len(value)
    elif value is not None:
        bytes_ += _KEY_BYTES
    return bytes_


class MemoryUsage:
    """One dataset's accounted footprint, split by pool."""

    __slots__ = ("active", "immutable", "bloom", "resident")

    def __init__(
        self,
        active: int = 0,
        immutable: int = 0,
        bloom: int = 0,
        resident: int = 0,
    ) -> None:
        self.active = active
        self.immutable = immutable
        self.bloom = bloom
        self.resident = resident

    @property
    def total(self) -> int:
        """Sum over every pool."""
        return self.active + self.immutable + self.bloom + self.resident


class MemoryArbiter:
    """One global byte budget, adaptively shared between LSM pools.

    Datasets register themselves and push usage breakdowns; the master's
    merged-synopsis cache may be attached so its capacity tracks the
    cache share.  All methods are thread-safe (background flush/merge
    completions publish usage from worker threads), but every
    *image-affecting* decision -- the early-flush allowance -- depends
    only on state advanced by the DML thread, keeping arbitration
    seed-replayable.
    """

    #: Fixed share reserved for sealed memtables awaiting flush.
    IMMUTABLE_SHARE = 0.25
    #: Fixed headroom for component bloom filters; overflow beyond it is
    #: charged to the cache share at the next capacity refresh.
    BLOOM_SHARE = 0.15
    #: The adaptive remainder, split between write arena and cache.
    ADAPTIVE_SHARE = 0.60
    #: Write-arena fraction bounds (of the whole budget).
    WRITE_FRAC_MIN = 0.15
    WRITE_FRAC_MAX = 0.45
    #: Operations between share recomputations.
    REBALANCE_OPS = 256
    #: Per-dataset allowance floor: arbitration may flush early but must
    #: never wedge a dataset below a couple of records of headroom.
    MIN_WRITE_ALLOWANCE = 1024
    #: Cache capacity floor (one small merged pair stays admissible).
    MIN_CACHE_BYTES = 4096

    def __init__(
        self, budget_bytes: int, registry: MetricsRegistry | None = None
    ) -> None:
        if budget_bytes < 1:
            raise ConfigurationError(
                f"memory budget must be >= 1 byte, got {budget_bytes}"
            )
        # RLock: an attached cache's bytes-changed listener may fire
        # while this arbiter already holds the lock (a capacity refresh
        # that evicts re-enters through the listener).
        self._lock = threading.RLock()
        self._budget = int(budget_bytes)
        self._usage: dict[str, MemoryUsage] = {}
        self._cache: "MergedSynopsisCache | None" = None
        # Adaptive split state: write/estimate op counts since the last
        # decay, advanced deterministically by the DML/estimate callers.
        self._write_ops = 0
        self._estimate_ops = 0
        self._ops_at_rebalance = 0
        self._write_frac = (self.WRITE_FRAC_MIN + self.WRITE_FRAC_MAX) / 2
        self._peak = 0
        obs = registry if registry is not None else get_registry()
        self._m_early_flush = obs.counter("memory.pressure.early_flush")
        self._m_stall = obs.counter("memory.pressure.stall")
        self._m_rebalance = obs.counter("memory.rebalance.count")
        self._g_budget = obs.gauge("memory.budget.bytes")
        self._g_accounted = obs.gauge("memory.accounted.bytes")
        self._g_peak = obs.gauge("memory.peak.bytes")
        self._g_write_pool = obs.gauge("memory.pool.write.bytes")
        self._g_cache_pool = obs.gauge("memory.pool.cache.bytes")
        # Gauges are maintained *additively* (publish deltas against the
        # last published value) so several per-node arbiters sharing one
        # registry aggregate instead of overwriting each other.
        self._published: dict[str, float] = {}
        self._publish(self._g_budget, "budget", self._budget)
        self._publish_pools_locked()

    # -- configuration ---------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """The configured global budget."""
        return self._budget

    def set_budget(self, budget_bytes: int) -> None:
        """Re-target the budget (cluster-level re-split)."""
        if budget_bytes < 1:
            raise ConfigurationError(
                f"memory budget must be >= 1 byte, got {budget_bytes}"
            )
        with self._lock:
            self._budget = int(budget_bytes)
            self._publish(self._g_budget, "budget", self._budget)
            self._publish_pools_locked()
            self._refresh_cache_locked()

    def register_dataset(self, key: str) -> None:
        """Admit a dataset into the write arena (idempotent: a restart
        re-registers the same key and replaces the stale usage)."""
        with self._lock:
            self._usage.setdefault(key, MemoryUsage())
            self._publish_pools_locked()

    def unregister_dataset(self, key: str) -> None:
        """Drop a dataset's registration and accounted usage."""
        with self._lock:
            if self._usage.pop(key, None) is not None:
                self._publish_accounted_locked()
                self._publish_pools_locked()

    def attach_cache(self, cache: "MergedSynopsisCache") -> None:
        """Let the arbiter drive the merged-synopsis cache's capacity.

        The cache's bytes-changed listener keeps the accounted total
        and its high-water mark current for cache traffic that happens
        between dataset usage publishes."""
        with self._lock:
            self._cache = cache
            cache.add_bytes_listener(self._on_cache_bytes)
            self._publish_accounted_locked()
            self._refresh_cache_locked()

    def _on_cache_bytes(self, _bytes: int) -> None:
        with self._lock:
            self._publish_accounted_locked()

    # -- workload adaptation ---------------------------------------------

    def note_write(self, n: int = 1) -> None:
        """Record write traffic (DML thread; drives the adaptive split)."""
        with self._lock:
            self._write_ops += n
            self._maybe_rebalance_locked()

    def note_estimate(self, n: int = 1) -> None:
        """Record estimate traffic (grows the cache share)."""
        with self._lock:
            self._estimate_ops += n
            self._maybe_rebalance_locked()

    def _maybe_rebalance_locked(self) -> None:
        total = self._write_ops + self._estimate_ops
        if total - self._ops_at_rebalance < self.REBALANCE_OPS:
            return
        ratio = self._write_ops / total if total else 0.5
        self._write_frac = self.WRITE_FRAC_MIN + ratio * (
            self.WRITE_FRAC_MAX - self.WRITE_FRAC_MIN
        )
        # Exponential decay: old traffic fades so the split tracks the
        # *current* phase rather than the whole history.
        self._write_ops //= 2
        self._estimate_ops //= 2
        self._ops_at_rebalance = self._write_ops + self._estimate_ops
        self._m_rebalance.inc()
        self._publish_pools_locked()
        self._refresh_cache_locked()

    # -- pool geometry ---------------------------------------------------

    def write_pool_bytes(self) -> int:
        """Current bytes assigned to the write arena."""
        with self._lock:
            return self._write_pool_locked()

    def write_allowance(self) -> int:
        """Per-dataset active-memtable allowance (write pool / datasets).

        Mode-invariant by construction: depends only on the budget, the
        registration count and the op-count-driven adaptive split.
        """
        with self._lock:
            return max(
                self.MIN_WRITE_ALLOWANCE,
                self._write_pool_locked() // max(1, len(self._usage)),
            )

    def immutable_pool_bytes(self) -> int:
        """Bytes reserved for sealed memtables awaiting flush."""
        return int(self._budget * self.IMMUTABLE_SHARE)

    def cache_pool_bytes(self) -> int:
        """Bytes the merged-synopsis cache may occupy right now.

        Bloom overflow beyond its fixed headroom is charged here: the
        cache is the one evictable pool, so it absorbs the squeeze.
        """
        with self._lock:
            return self._cache_pool_locked()

    def _write_pool_locked(self) -> int:
        return int(self._budget * self._write_frac)

    def _cache_pool_locked(self) -> int:
        cache_frac = self.ADAPTIVE_SHARE - self._write_frac
        bloom_bytes = sum(usage.bloom for usage in self._usage.values())
        overflow = max(0, bloom_bytes - int(self._budget * self.BLOOM_SHARE))
        return max(
            self.MIN_CACHE_BYTES, int(self._budget * cache_frac) - overflow
        )

    # -- pressure decisions ----------------------------------------------

    def should_early_flush(self, active_bytes: int) -> bool:
        """True when a dataset's active memtables exceed their allowance.

        ``active_bytes`` is DML-thread state, so the decision replays
        identically under every scheduler mode.
        """
        return active_bytes > self.write_allowance()

    def note_early_flush(self) -> None:
        """Count an arbitration-triggered early rotation."""
        self._m_early_flush.inc()

    def immutable_within_pool(self) -> bool:
        """Whether sealed-memtable bytes fit the immutable pool (the
        write path's backpressure predicate; timing-only)."""
        with self._lock:
            immutable = sum(u.immutable for u in self._usage.values())
        return immutable <= self.immutable_pool_bytes()

    def note_pressure_stall(self) -> None:
        """Count one write-path wait on the immutable pool."""
        self._m_stall.inc()

    # -- accounting -------------------------------------------------------

    def update_usage(
        self,
        key: str,
        active: int,
        immutable: int,
        bloom: int,
        resident: int,
    ) -> None:
        """Publish one dataset's footprint breakdown (any thread)."""
        with self._lock:
            self._usage[key] = MemoryUsage(active, immutable, bloom, resident)
            self._publish_accounted_locked()

    def accounted_bytes(self) -> int:
        """Current accounted total: every dataset plus the cache."""
        with self._lock:
            return self._accounted_locked()

    def peak_bytes(self) -> int:
        """High-water mark of :meth:`accounted_bytes`."""
        with self._lock:
            return self._peak

    def breakdown(self) -> dict[str, Any]:
        """JSON-ready snapshot of pools, shares and accounted usage."""
        with self._lock:
            active = sum(u.active for u in self._usage.values())
            immutable = sum(u.immutable for u in self._usage.values())
            bloom = sum(u.bloom for u in self._usage.values())
            resident = sum(u.resident for u in self._usage.values())
            cache = self._cache.memory_bytes() if self._cache else 0
            return {
                "budget": self._budget,
                "write_frac": self._write_frac,
                "datasets": len(self._usage),
                "active": active,
                "immutable": immutable,
                "bloom": bloom,
                "resident": resident,
                "cache": cache,
                "accounted": active + immutable + bloom + resident + cache,
                "peak": self._peak,
            }

    def _accounted_locked(self) -> int:
        total = sum(usage.total for usage in self._usage.values())
        if self._cache is not None:
            total += self._cache.memory_bytes()
        return total

    def _publish_accounted_locked(self) -> None:
        total = self._accounted_locked()
        self._publish(self._g_accounted, "accounted", total)
        if total > self._peak:
            self._peak = total
            self._publish(self._g_peak, "peak", self._peak)

    def _publish_pools_locked(self) -> None:
        self._publish(self._g_write_pool, "write_pool", self._write_pool_locked())
        self._publish(self._g_cache_pool, "cache_pool", self._cache_pool_locked())

    def _refresh_cache_locked(self) -> None:
        if self._cache is not None:
            self._cache.set_capacity(self._cache_pool_locked())

    def _publish(self, gauge: Any, key: str, value: float) -> None:
        previous = self._published.get(key, 0.0)
        if value != previous:
            gauge.inc(value - previous)
            self._published[key] = value
