"""Observability: metrics, tracing and exporters for the repro system.

The paper's central claim is that statistics collection is
*lightweight* -- it piggybacks on flush/merge/bulkload with zero extra
I/O.  This package provides the instruments to measure that claim from
inside the system: a dependency-free :class:`MetricsRegistry` (counters,
gauges, fixed-bucket histograms with cheap percentiles), a structured
tracing API (:func:`span` / :func:`traced`) that records wall-time spans
of the LSM lifecycle and the estimation path, and JSON/text exporters.

Design rules (the full contract lives in ``docs/OBSERVABILITY.md``):

* Instruments are *injectable* everywhere and default to a
  process-global registry (:func:`get_registry`).
* Instrumentation is zero-cost-when-disabled: install
  :data:`NOOP_REGISTRY` (or any registry with ``enabled=False``) and
  every instrument becomes a shared do-nothing object; spans skip the
  clock reads entirely.
* Hot loops never call the registry per record -- instrumented code
  binds its instruments once and increments counters in bulk, so the
  paper's Figure 2 ingestion numbers are unaffected.
"""

from repro.obs.export import render_json, render_text, write_snapshot
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import span, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "span",
    "traced",
    "render_json",
    "render_text",
    "write_snapshot",
]
