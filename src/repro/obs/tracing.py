"""Structured wall-time spans over the LSM and estimation lifecycles.

A *span* is a named wall-clock measurement recorded into the metric
``<name>.seconds`` (a latency histogram) of a registry; a failed span
additionally bumps ``<name>.errors``.  Two entry points:

* :func:`span` -- a context manager for inline blocks, used by the
  instrumented flush/merge/bulkload paths.
* :func:`traced` -- a decorator for whole functions.

When the effective registry is disabled (``enabled`` is False) the span
machinery skips the clock reads entirely, keeping the instrumentation
zero-cost for the NoStats/noop configurations Figure 2 compares
against.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["span", "traced"]

F = TypeVar("F", bound=Callable[..., Any])


@contextmanager
def span(name: str, registry: MetricsRegistry | None = None) -> Iterator[None]:
    """Time the enclosed block into the ``<name>.seconds`` histogram.

    ``registry`` defaults to the process-global one.  Exceptions
    propagate; the failed attempt is still timed and counted under
    ``<name>.errors``.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    except BaseException:
        reg.counter(f"{name}.errors").inc()
        reg.histogram(f"{name}.seconds").observe(time.perf_counter() - started)
        raise
    reg.histogram(f"{name}.seconds").observe(time.perf_counter() - started)


def traced(
    name: str, registry: MetricsRegistry | None = None
) -> Callable[[F], F]:
    """Decorator form of :func:`span`.

    The registry is resolved *per call* (unless one is bound
    explicitly), so tests that swap the global registry see decorated
    functions follow along.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(name, registry):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
