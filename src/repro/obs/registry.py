"""The metrics registry: counters, gauges and fixed-bucket histograms.

Dependency-free and deliberately small.  Three instrument kinds cover
everything the repro system reports:

* :class:`Counter` -- monotonically increasing event counts
  (``lsm.flush.count``, ``cache.merged.hit``, ...).
* :class:`Gauge` -- last-written values (``lsm.components.<index>``,
  ``cluster.catalog.entries``).
* :class:`Histogram` -- value distributions over *fixed* bucket
  boundaries, giving cheap O(#buckets) percentile estimates without
  storing observations (``lsm.flush.seconds``, ...).

Instruments are memoized by name, so ``registry.counter(name)`` is a
dict lookup after the first call; hot paths bind instruments once and
call ``inc()``/``observe()`` directly.  The :class:`NoopRegistry`
variant hands out shared do-nothing instruments, which is how
instrumentation is disabled without touching any call site.

Metric names follow the dotted-lowercase contract documented in
``docs/OBSERVABILITY.md``; the registry enforces the syntax at
instrument-creation time so typos fail fast.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "sanitize_segment",
]

# Dotted lowercase segments; a segment may contain [a-z0-9_] and also
# '#' because attribute-statistics keys ("index#attr") appear inside
# per-index metric names.
_NAME_RE = re.compile(r"^[a-z0-9_#]+(\.[a-z0-9_#-]+)*$")

DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-7, 1) for m in (1.0, 2.5, 5.0)
) + (10.0,)
"""Log-spaced seconds buckets from 100ns to 10s (overflow above)."""


def sanitize_segment(label: str) -> str:
    """Fold an arbitrary label (index name, synopsis type, ...) into a
    legal metric-name suffix: lowercased, illegal runs collapsed to '_'.
    Dots are preserved so 'tweets.value_idx' stays a dotted suffix."""
    cleaned = re.sub(r"[^a-z0-9_#.\-]+", "_", label.lower()).strip("._")
    return cleaned or "unnamed"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: expected dotted lowercase "
            "segments like 'lsm.flush.count'"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self._value += n

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self._value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        self._value += delta

    @property
    def value(self) -> float:
        """The last written value."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    Buckets are cumulative-style upper bounds (ascending); one implicit
    overflow bucket catches everything above the largest bound.  Exact
    min/max/sum are tracked alongside, so means and rates need no
    bucket arithmetic.
    """

    __slots__ = ("name", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"histogram {name} buckets must be a non-empty strictly "
                f"ascending sequence, got {buckets!r}"
            )
        self.name = name
        self._bounds: tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``).

        Linear interpolation inside the bucket containing the rank;
        observations in the overflow bucket report the exact maximum.
        Returns 0.0 when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self._bounds):  # overflow bucket
                    return self._max
                lo = self._bounds[i - 1] if i > 0 else 0.0
                hi = self._bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return min(max(lo + (hi - lo) * fraction, self._min), self._max)
            cumulative += bucket_count
        return self._max  # pragma: no cover - defensive

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary of this histogram."""
        buckets = {
            f"{bound:g}": count
            for bound, count in zip(self._bounds, self._counts)
            if count
        }
        if self._counts[-1]:
            buckets["+inf"] = self._counts[-1]
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named instruments, memoized; the unit of snapshot/export.

    Thread-safe at the instrument-creation level (a lock guards the
    name tables); individual increments are plain int/float updates,
    which is the same guarantee CPython gives the pre-existing ad-hoc
    counters this registry replaces.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(_check_name(name))
                )
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(_check_name(name)))
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """The histogram under ``name`` (created on first use; the
        bucket layout of the first creation wins)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(_check_name(name), buckets)
                )
        return histogram

    def metric_names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (used between test cases/bench runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, delta: float = 1.0) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NoopRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Every ``counter()``/``gauge()``/``histogram()`` call returns a
    process-wide shared no-op instrument, so instrumented code pays one
    attribute lookup plus an empty method call -- and span timing is
    skipped entirely because ``enabled`` is False.
    """

    enabled = False

    _COUNTER = _NoopCounter("noop")
    _GAUGE = _NoopGauge("noop")
    _HISTOGRAM = _NoopHistogram("noop")

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopRegistry()
"""The shared disabled registry; install it to turn instrumentation off."""

_global_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-global default; returns the
    previous one.  Note that components bind their instruments at
    construction time, so swap the registry *before* building the
    objects you want measured (or measured-for-free with
    :data:`NOOP_REGISTRY`)."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the global default."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
