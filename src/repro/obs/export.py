"""Exporters for metrics snapshots.

Two formats: JSON (machine-readable; what ``repro stats`` emits and
what ``benchmarks/conftest.py`` drops next to the result tables) and a
fixed-width text rendering for terminals.  Both operate on the
JSON-ready dict produced by :meth:`MetricsRegistry.snapshot`, so they
also round-trip snapshots loaded back from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry

__all__ = ["render_json", "render_text", "write_snapshot"]


def _as_snapshot(source: MetricsRegistry | dict[str, Any]) -> dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def render_json(
    source: MetricsRegistry | dict[str, Any], indent: int | None = 2
) -> str:
    """The snapshot as a JSON document."""
    return json.dumps(_as_snapshot(source), indent=indent, sort_keys=True)


def render_text(source: MetricsRegistry | dict[str, Any]) -> str:
    """The snapshot as aligned, human-readable text."""
    snapshot = _as_snapshot(source)
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    width = max(
        (len(name) for name in (*counters, *gauges, *histograms)), default=0
    )
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{width}}  {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<{width}}  {value:g}")
    if histograms:
        lines.append("histograms:")
        for name, h in sorted(histograms.items()):
            lines.append(
                f"  {name:<{width}}  count={h['count']} sum={h['sum']:.6g} "
                f"mean={h['mean']:.3g} p50={h['p50']:.3g} "
                f"p90={h['p90']:.3g} p99={h['p99']:.3g} max={h['max']:.3g}"
            )
    extra = {
        key: value
        for key, value in snapshot.items()
        if key not in ("counters", "gauges", "histograms")
    }
    for key, section in sorted(extra.items()):
        lines.append(f"{key}:")
        if isinstance(section, dict):
            for name, value in sorted(section.items()):
                lines.append(f"  {name:<{width}}  {value}")
        else:
            lines.append(f"  {section}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot(
    source: MetricsRegistry | dict[str, Any],
    path: str | Path,
    fmt: str = "json",
) -> Path:
    """Write the snapshot to ``path`` in ``fmt`` ('json' or 'text')."""
    if fmt == "json":
        text = render_json(source) + "\n"
    elif fmt == "text":
        text = render_text(source)
    else:
        raise ValueError(f"unknown snapshot format {fmt!r} (json|text)")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target
