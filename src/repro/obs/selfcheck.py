"""Scripted ingest + snapshot validation behind ``repro stats``.

``repro stats`` needs something to measure, so this module drives a
small but complete statistics pipeline -- bulkload, flushes, merges,
deletes (anti-matter) and repeated estimates -- against a fresh
registry and returns the resulting snapshot.  The ``--selfcheck`` mode
then validates two contracts:

1. the scripted ingest produced every metric the observability layer
   promises (flush/merge/bulkload counts, cache traffic, estimation
   latency histograms) with plausible values, and
2. every metric the system emitted is documented in the
   ``docs/OBSERVABILITY.md`` naming table -- so docs can't silently rot
   while code grows new instruments.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any

from repro.core.config import StatisticsConfig
from repro.core.manager import StatisticsManager
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain

__all__ = [
    "run_scripted_ingest",
    "selfcheck",
    "documented_metric_names",
    "is_documented",
    "EXPECTED_COUNTERS",
    "EXPECTED_HISTOGRAMS",
]

EXPECTED_COUNTERS = (
    "lsm.flush.count",
    "lsm.merge.count",
    "lsm.bulkload.count",
    "lsm.records.matter",
    "lsm.events.component_writes",
    "cache.merged.hit",
    "cache.merged.miss",
    "collector.component_writes",
    "collector.synopses.published",
    "estimator.estimate.count",
    "estimator.cache_hit.count",
    "sketch.registers.bytes",
    "sketch.wire.bytes",
    "sketch.union.count",
)
"""Counters the scripted ingest must produce with value > 0."""

EXPECTED_HISTOGRAMS = (
    "lsm.flush.seconds",
    "lsm.merge.seconds",
    "lsm.bulkload.seconds",
    "synopsis.build.seconds",
    "estimator.estimate.seconds",
)
"""Latency histograms the scripted ingest must populate."""

_DOCS_PATH = Path(__file__).resolve().parents[3] / "docs" / "OBSERVABILITY.md"


def run_scripted_ingest(
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Drive bulkload + flushes + merges + deletes + estimates and
    return the metrics snapshot (plus a ``derived`` section).

    Runs against ``registry`` (default: a fresh one) installed as the
    process-global registry for the duration, so every layer's
    constructor-bound instruments land in the same snapshot.
    """
    reg = registry if registry is not None else MetricsRegistry()
    with use_registry(reg):
        dataset = Dataset(
            "readings",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**20 - 1),
            indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
            memtable_capacity=256,
            merge_policy=ConstantMergePolicy(max_components=3),
        )
        stats = StatisticsManager(
            StatisticsConfig(
                SynopsisType.EQUI_WIDTH,
                budget=64,
                ndv_enabled=True,
                ndv_precision=6,
            ),
            reg,
        )
        stats.attach(dataset)

        # Bulkload (1 component), then enough inserts for several
        # flushes and at least one constant-policy merge.
        dataset.bulkload(
            {"id": pk, "value": (pk * 13) % 1024} for pk in range(512)
        )
        for pk in range(512, 1_536):
            dataset.insert({"id": pk, "value": (pk * 13) % 1024})
        for pk in range(512, 544):  # anti-matter
            dataset.delete(pk)
        dataset.flush()

        # Estimates: the first takes Algorithm 2's slow path and caches
        # the lazily merged pair; the rest hit the cache.
        for _ in range(16):
            stats.estimate(dataset, "value_idx", 128, 383)
        # NDV estimates exercise the sketch lane the same way: one lazy
        # register union, then cache hits.
        for _ in range(4):
            stats.estimate_ndv(dataset, "value_idx")

    snapshot = reg.snapshot()
    counters = snapshot.get("counters", {})
    hits = counters.get("cache.merged.hit", 0)
    misses = counters.get("cache.merged.miss", 0)
    lookups = hits + misses
    snapshot["derived"] = {
        "cache.merged.hit_ratio": (hits / lookups) if lookups else 0.0,
    }
    return snapshot


def documented_metric_names(docs_path: Path | None = None) -> list[str] | None:
    """Metric names (and ``<placeholder>`` patterns) declared in the
    observability contract's tables, or ``None`` when the docs file is
    unavailable (e.g. an installed package without the repo checkout).
    """
    path = docs_path if docs_path is not None else _DOCS_PATH
    if not path.is_file():
        return None
    names: list[str] = []
    for line in path.read_text().splitlines():
        if not line.lstrip().startswith("|"):
            continue
        names.extend(re.findall(r"`([a-z0-9_#.<>\-]+)`", line))
    return names


def is_documented(name: str, documented: list[str]) -> bool:
    """Whether ``name`` matches a documented name or placeholder pattern
    (``<index>`` and friends match any non-empty suffix segment run)."""
    for pattern in documented:
        if pattern == name:
            return True
        if "<" in pattern:
            # re.escape leaves '<'/'>' alone, so placeholders survive
            # escaping and can be widened to wildcards here.
            regex = re.sub(r"<[a-z0-9_\-]+>", ".+", re.escape(pattern))
            if re.fullmatch(regex, name):
                return True
    return False


def selfcheck(
    snapshot: dict[str, Any], docs_path: Path | None = None
) -> list[str]:
    """Validate a scripted-ingest snapshot; returns the problems found
    (empty means the observability contract holds)."""
    problems: list[str] = []
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    for name in EXPECTED_COUNTERS:
        if counters.get(name, 0) <= 0:
            problems.append(f"expected counter {name} > 0, got {counters.get(name)}")
    for name in EXPECTED_HISTOGRAMS:
        histogram = histograms.get(name)
        if not histogram or histogram.get("count", 0) <= 0:
            problems.append(f"expected histogram {name} with observations")
        elif histogram["sum"] < 0 or histogram["max"] < histogram["min"]:
            problems.append(f"implausible histogram {name}: {histogram}")

    documented = documented_metric_names(docs_path)
    if documented is None:
        problems.append(
            "docs/OBSERVABILITY.md not found: cannot verify the naming contract"
        )
        return problems
    emitted = (
        list(counters)
        + list(snapshot.get("gauges", {}))
        + list(histograms)
        + list(snapshot.get("derived", {}))
    )
    for name in emitted:
        if not is_documented(name, documented):
            problems.append(
                f"metric {name} is emitted but not documented in "
                "docs/OBSERVABILITY.md"
            )
    return problems
