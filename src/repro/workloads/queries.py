"""Range-query workload generators (paper Section 4.1.2).

Four query shapes over a value domain:

* **Point** -- a degenerate range ``[x, x]`` at a random domain point;
* **FixedLength** -- a range of a predefined length whose starting
  point is drawn randomly;
* **HalfOpen** -- one border random, the other pinned to the domain
  minimum or maximum;
* **Random** -- both borders drawn randomly (ordered).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Domain

__all__ = ["QueryType", "RangeQuery", "QueryWorkloadGenerator"]


class QueryType(enum.Enum):
    """The paper's four range-query shapes."""

    POINT = "Point"
    FIXED_LENGTH = "FixedLength"
    HALF_OPEN = "HalfOpen"
    RANDOM = "Random"


@dataclass(frozen=True)
class RangeQuery:
    """An inclusive range predicate ``lo <= key <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ConfigurationError(f"empty range [{self.lo}, {self.hi}]")

    @property
    def length(self) -> int:
        """Number of domain points the range covers."""
        return self.hi - self.lo + 1


class QueryWorkloadGenerator:
    """Deterministic generator of range queries over a domain."""

    def __init__(self, domain: Domain, seed: int = 0) -> None:
        self.domain = domain
        self._rng = np.random.default_rng(seed)

    def _random_point(self) -> int:
        return int(
            self._rng.integers(self.domain.lo, self.domain.hi, endpoint=True)
        )

    def point(self) -> RangeQuery:
        """A degenerate single-point range."""
        value = self._random_point()
        return RangeQuery(value, value)

    def fixed_length(self, length: int) -> RangeQuery:
        """A range of exactly ``length`` domain points (clamped at the
        domain border by shifting the start, so the length is exact)."""
        if not 1 <= length <= self.domain.length:
            raise ConfigurationError(
                f"fixed length {length} outside domain of length "
                f"{self.domain.length}"
            )
        latest_start = self.domain.hi - length + 1
        lo = int(self._rng.integers(self.domain.lo, latest_start, endpoint=True))
        return RangeQuery(lo, lo + length - 1)

    def half_open(self) -> RangeQuery:
        """A range with one random border; the other is a domain extreme."""
        value = self._random_point()
        if self._rng.integers(0, 2) == 0:
            return RangeQuery(value, self.domain.hi)
        return RangeQuery(self.domain.lo, value)

    def random(self) -> RangeQuery:
        """A range with both borders drawn randomly."""
        a, b = self._random_point(), self._random_point()
        return RangeQuery(min(a, b), max(a, b))

    def generate(
        self, query_type: QueryType, count: int, fixed_length: int = 128
    ) -> Iterator[RangeQuery]:
        """A stream of ``count`` queries of one shape."""
        for _ in range(count):
            if query_type is QueryType.POINT:
                yield self.point()
            elif query_type is QueryType.FIXED_LENGTH:
                yield self.fixed_length(fixed_length)
            elif query_type is QueryType.HALF_OPEN:
                yield self.half_open()
            elif query_type is QueryType.RANDOM:
                yield self.random()
            else:  # pragma: no cover - enum is closed
                raise ConfigurationError(f"unknown query type {query_type!r}")
