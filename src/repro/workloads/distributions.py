"""The Poosala synthetic-distribution framework (paper Section 4.1.1).

A synthetic dataset is described by two independent parameters:

* a **value set** -- the positions of the distinct secondary-key values
  in the key domain, characterised by the distribution of *spreads*
  (distances between neighbouring values);
* a **frequency set** -- how many records carry each value.

Spread distributions: Uniform, Zipf (skew ``alpha = 1``, decreasing),
ZipfIncreasing, ZipfRandom, CuspMin (Zipf then ZipfIncreasing), CuspMax
(ZipfIncreasing then Zipf).  Frequency distributions: Uniform, Zipf,
ZipfRandom.  Following the paper, value and frequency sets are combined
with *positive correlation* (the i-th value takes the i-th frequency).
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Domain

__all__ = [
    "SpreadDistribution",
    "FrequencyDistribution",
    "DistributionSpec",
    "SyntheticDistribution",
    "generate_distribution",
]


class SpreadDistribution(enum.Enum):
    """Distribution of the distances between neighbouring values."""

    UNIFORM = "Uniform"
    ZIPF = "Zipf"
    ZIPF_INCREASING = "ZipfIncreasing"
    ZIPF_RANDOM = "ZipfRandom"
    CUSP_MIN = "CuspMin"
    CUSP_MAX = "CuspMax"


class FrequencyDistribution(enum.Enum):
    """Distribution of per-value record counts."""

    UNIFORM = "Uniform"
    ZIPF = "Zipf"
    ZIPF_RANDOM = "ZipfRandom"


@dataclass(frozen=True)
class DistributionSpec:
    """Parameters of one synthetic dataset.

    Attributes:
        spread: Value-set spread distribution.
        frequency: Frequency-set distribution.
        domain: Secondary-key domain.
        num_values: Number of distinct secondary-key values.
        total_records: Total records (sum of all frequencies).
        skew: Zipf skew coefficient (the paper fixes ``alpha = 1``).
        seed: RNG seed; everything downstream is deterministic in it.
    """

    spread: SpreadDistribution
    frequency: FrequencyDistribution
    domain: Domain
    num_values: int
    total_records: int
    skew: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_values < 1:
            raise ConfigurationError("num_values must be >= 1")
        if self.num_values > self.domain.length:
            raise ConfigurationError(
                f"{self.num_values} distinct values cannot fit in a domain "
                f"of length {self.domain.length}"
            )
        if self.total_records < self.num_values:
            raise ConfigurationError(
                "total_records must be >= num_values (every value occurs)"
            )


@dataclass(frozen=True)
class SyntheticDistribution:
    """A realised (value set, frequency set) pair with fast truth queries."""

    spec: DistributionSpec
    values: tuple[int, ...]
    frequencies: tuple[int, ...]
    _cumulative: tuple[int, ...] = field(repr=False, default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_cumulative",
            tuple(itertools.accumulate(self.frequencies)),
        )

    @property
    def total_records(self) -> int:
        """Total number of records the distribution realises."""
        return self._cumulative[-1] if self._cumulative else 0

    def frequency_of(self, value: int) -> int:
        """Exact frequency of one domain value."""
        index = bisect.bisect_left(self.values, value)
        if index < len(self.values) and self.values[index] == value:
            return self.frequencies[index]
        return 0

    def true_range_count(self, lo: int, hi: int) -> int:
        """Exact number of records with value in ``[lo, hi]`` -- the
        ground truth for insert-only accuracy experiments, O(log V)."""
        if lo > hi:
            return 0
        first = bisect.bisect_left(self.values, lo)
        last = bisect.bisect_right(self.values, hi) - 1
        if last < first:
            return 0
        below_first = self._cumulative[first - 1] if first > 0 else 0
        return self._cumulative[last] - below_first

    def record_values(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """The full multiset of record values, optionally shuffled into
        a random ingestion order."""
        expanded = np.repeat(
            np.asarray(self.values, dtype=np.int64),
            np.asarray(self.frequencies, dtype=np.int64),
        )
        if rng is not None:
            rng.shuffle(expanded)
        return expanded


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    return 1.0 / np.power(ranks, skew)


def _spread_weights(
    spread: SpreadDistribution, count: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """Unnormalised spread lengths, ordered per the distribution."""
    if spread is SpreadDistribution.UNIFORM:
        return np.ones(count)
    decreasing = _zipf_weights(count, skew)
    if spread is SpreadDistribution.ZIPF:
        return decreasing
    if spread is SpreadDistribution.ZIPF_INCREASING:
        return decreasing[::-1]
    if spread is SpreadDistribution.ZIPF_RANDOM:
        permuted = decreasing.copy()
        rng.shuffle(permuted)
        return permuted
    half = count // 2
    if spread is SpreadDistribution.CUSP_MIN:
        # Decreasing first half, increasing second half.
        first = _zipf_weights(half, skew)
        second = _zipf_weights(count - half, skew)[::-1]
        return np.concatenate([first, second])
    if spread is SpreadDistribution.CUSP_MAX:
        first = _zipf_weights(half, skew)[::-1]
        second = _zipf_weights(count - half, skew)
        return np.concatenate([first, second])
    raise ConfigurationError(f"unknown spread distribution {spread!r}")


def _frequency_counts(
    frequency: FrequencyDistribution,
    count: int,
    total: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Integer frequencies >= 1 summing exactly to ``total``."""
    if frequency is FrequencyDistribution.UNIFORM:
        weights = np.ones(count)
    elif frequency is FrequencyDistribution.ZIPF:
        weights = _zipf_weights(count, skew)
    elif frequency is FrequencyDistribution.ZIPF_RANDOM:
        weights = _zipf_weights(count, skew)
        rng.shuffle(weights)
    else:
        raise ConfigurationError(f"unknown frequency distribution {frequency!r}")
    return _apportion(weights, total, minimum=1)


def _apportion(weights: np.ndarray, total: int, minimum: int) -> np.ndarray:
    """Scale positive weights to integers >= ``minimum`` summing to
    ``total`` (largest-remainder method; deterministic)."""
    count = len(weights)
    budget = total - minimum * count
    if budget < 0:
        raise ConfigurationError(
            f"cannot apportion {total} into {count} parts of >= {minimum}"
        )
    scaled = weights / weights.sum() * budget
    floors = np.floor(scaled).astype(np.int64)
    remainder = budget - int(floors.sum())
    if remainder > 0:
        fractional = scaled - floors
        # Stable pick of the largest fractional parts.
        order = np.argsort(-fractional, kind="stable")[:remainder]
        floors[order] += 1
    return floors + minimum


def generate_value_set(
    spread: SpreadDistribution,
    domain: Domain,
    num_values: int,
    skew: float,
    rng: np.random.Generator,
) -> tuple[int, ...]:
    """Distinct, sorted domain values whose gaps follow ``spread``.

    The first value sits one spread after the domain start and the
    spreads are scaled so the values span the whole domain.
    """
    weights = _spread_weights(spread, num_values, skew, rng)
    spreads = _apportion(weights, domain.length, minimum=1)
    positions = np.cumsum(spreads) - 1  # last value lands on domain.hi
    return tuple(int(domain.lo + p) for p in positions)


def generate_distribution(spec: DistributionSpec) -> SyntheticDistribution:
    """Realise a :class:`DistributionSpec` into concrete value and
    frequency sets (positively correlated, per the paper)."""
    rng = np.random.default_rng(spec.seed)
    values = generate_value_set(
        spec.spread, spec.domain, spec.num_values, spec.skew, rng
    )
    frequencies = _frequency_counts(
        spec.frequency, spec.num_values, spec.total_records, spec.skew, rng
    )
    return SyntheticDistribution(
        spec=spec, values=values, frequencies=tuple(int(f) for f in frequencies)
    )
