"""Tweet-like record generation (paper Section 4.1.1).

The paper's synthetic experiments "emulated a Twitter Firehose-like
external data source to ingest generated records resembling real
Tweets", each ~1 KB, augmented with a special integer field drawn from
a synthetic distribution and covered by a secondary B-tree index.

:class:`TweetGenerator` realises a :class:`SyntheticDistribution`
exactly: the generated multiset of ``value`` fields matches the
distribution's frequency set record-for-record, so distribution-based
ground truth (``true_range_count``) applies to the ingested dataset.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.workloads.distributions import SyntheticDistribution

__all__ = ["TweetGenerator", "VALUE_FIELD"]

VALUE_FIELD = "value"
"""The indexed synthetic integer field on generated tweets."""

_USERS = [
    "NathanGiesen", "ColineGeyer", "NilaMilliron", "MarcosTorres",
    "ChangEwing", "EmoryUnk", "VerneWoodworth", "SuzannaTillson",
]
_TOPICS = [
    "at&t", "verizon", "t-mobile", "sprint", "iphone", "samsung",
    "platform", "speed", "voice-clarity", "signal", "plan", "network",
]


class TweetGenerator:
    """Deterministic generator of tweet-like documents.

    Args:
        distribution: The synthetic distribution the indexed ``value``
            field realises exactly.
        seed: Shuffle seed for the ingestion order.
        message_bytes: Size of the filler message payload.  The paper
            uses ~1 KB records; shrink it to trade realism for speed.
    """

    def __init__(
        self,
        distribution: SyntheticDistribution,
        seed: int = 0,
        message_bytes: int = 96,
    ) -> None:
        self.distribution = distribution
        self._rng = np.random.default_rng(seed)
        self.message_bytes = message_bytes

    def generate(self) -> Iterator[dict[str, Any]]:
        """All records, PKs sequential, values in shuffled order."""
        record_values = self.distribution.record_values(self._rng)
        for pk, value in enumerate(record_values):
            yield self.make_document(pk, int(value))

    def generate_sorted_by_pk(self) -> Iterator[dict[str, Any]]:
        """Records in PK order (the paper's pre-sorted bulkload input)."""
        return self.generate()  # PKs are assigned sequentially anyway

    def make_document(self, pk: int, value: int) -> dict[str, Any]:
        """One tweet-like document with the indexed value field."""
        user = _USERS[pk % len(_USERS)]
        topic = _TOPICS[(pk // len(_USERS)) % len(_TOPICS)]
        message = (
            f" love {topic} its {'#'*3}{topic} is good:)"
            .ljust(self.message_bytes, "x")[: self.message_bytes]
        )
        return {
            "id": pk,
            "username": user,
            "message": message,
            "location": [(pk * 31 % 360) - 180.0, (pk * 17 % 180) - 90.0],
            "send_time": 1_200_000_000 + pk,
            VALUE_FIELD: value,
        }
