"""A WorldCup'98-like web-log generator (paper Section 4.4).

The paper's real-world experiment uses the 1998 World Cup web-server
trace: 1.35 billion records of four 32-bit and four 8-bit integer
fields.  The trace itself is not redistributable at that scale, so this
generator synthesises records reproducing the qualitative distribution
properties Figure 9's findings rest on:

* **Timestamp / ClientID / ObjectID** -- values confined to a narrow
  band far from the int32 domain extremes, so an equi-width histogram
  over the full domain collapses into one bucket ("for fields
  Timestamp, ClientID and ObjectID all values fell into a single
  bucket");
* **Size** -- highly skewed with a long tail;
* **Status / Server** -- categorical: a handful of spikes separated by
  zero-cardinality values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.types import Domain

__all__ = ["WORLDCUP_FIELDS", "WorldCupField", "WorldCupGenerator"]

_INT32 = Domain(0, 2**31 - 1)
_INT8 = Domain(0, 127)


@dataclass(frozen=True)
class WorldCupField:
    """Metadata of one indexed WorldCup field."""

    name: str
    domain: Domain


WORLDCUP_FIELDS = [
    WorldCupField("timestamp", _INT32),
    WorldCupField("client_id", _INT32),
    WorldCupField("object_id", _INT32),
    WorldCupField("size", _INT32),
    WorldCupField("status", _INT8),
    WorldCupField("server", _INT8),
]
"""The six indexed fields of Figure 9 (``method``/``type`` are excluded
by the paper because almost all their values are duplicates)."""

# Scattered int8 code points with spiky weights (categorical fields).
_STATUS_CODES = np.array([20, 26, 34, 44, 62, 103])  # 200/206/304/404/...
_STATUS_WEIGHTS = np.array([0.80, 0.02, 0.13, 0.03, 0.015, 0.005])
_SERVER_IDS = np.array([1, 4, 5, 9, 12, 17, 21, 25, 26, 29, 40, 57, 64, 86, 101, 115])
_SERVER_WEIGHTS_RAW = 1.0 / np.arange(1, len(_SERVER_IDS) + 1, dtype=np.float64)

_TRACE_START = 894_000_000  # ~May 1998 in Unix seconds
_CLIENT_BASE = 40_000
_OBJECT_BASE = 1_000
_NUM_OBJECTS = 20_000


class WorldCupGenerator:
    """Deterministic synthetic WorldCup-like log records."""

    def __init__(self, num_records: int, seed: int = 0) -> None:
        if num_records < 0:
            raise ValueError(f"negative num_records {num_records}")
        self.num_records = num_records
        self.seed = seed

    def generate(self) -> Iterator[dict[str, Any]]:
        """All log records, PK (``id``) sequential in arrival order."""
        rng = np.random.default_rng(self.seed)
        n = self.num_records
        if n == 0:
            return iter(())

        # Timestamps: dense monotone arrivals in a narrow int32 band.
        timestamps = _TRACE_START + np.cumsum(rng.integers(0, 3, size=n))

        # Clients: lognormal cluster well inside the domain.
        clients = _CLIENT_BASE + np.floor(
            np.exp(rng.normal(11.0, 1.2, size=n))
        ).astype(np.int64)
        clients = np.clip(clients, _CLIENT_BASE, 5_000_000)

        # Objects: Zipf-ranked popularity over a bounded object universe.
        ranks = rng.zipf(1.3, size=n)
        objects = _OBJECT_BASE + (ranks - 1) % _NUM_OBJECTS

        # Sizes: heavy-tailed (Pareto body + occasional huge downloads).
        sizes = np.floor(
            60 * (1.0 + rng.pareto(1.1, size=n))
        ).astype(np.int64)
        sizes = np.clip(sizes, 0, _INT32.hi)

        statuses = rng.choice(_STATUS_CODES, size=n, p=_STATUS_WEIGHTS)
        server_weights = _SERVER_WEIGHTS_RAW / _SERVER_WEIGHTS_RAW.sum()
        servers = rng.choice(_SERVER_IDS, size=n, p=server_weights)

        def records() -> Iterator[dict[str, Any]]:
            for pk in range(n):
                yield {
                    "id": pk,
                    "timestamp": int(timestamps[pk]),
                    "client_id": int(clients[pk]),
                    "object_id": int(objects[pk]),
                    "size": int(sizes[pk]),
                    "status": int(statuses[pk]),
                    "server": int(servers[pk]),
                }

        return records()
