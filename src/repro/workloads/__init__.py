"""Workload generation: synthetic distributions, tweets, WorldCup logs,
query workloads and the string-dictionary hook."""

from repro.workloads.dictionary import StringDictionary
from repro.workloads.distributions import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    SyntheticDistribution,
    generate_distribution,
)
from repro.workloads.queries import QueryType, QueryWorkloadGenerator, RangeQuery
from repro.workloads.tweets import VALUE_FIELD, TweetGenerator
from repro.workloads.worldcup import (
    WORLDCUP_FIELDS,
    WorldCupField,
    WorldCupGenerator,
)

__all__ = [
    "SpreadDistribution",
    "FrequencyDistribution",
    "DistributionSpec",
    "SyntheticDistribution",
    "generate_distribution",
    "QueryType",
    "RangeQuery",
    "QueryWorkloadGenerator",
    "TweetGenerator",
    "VALUE_FIELD",
    "WorldCupGenerator",
    "WorldCupField",
    "WORLDCUP_FIELDS",
    "StringDictionary",
]
