"""Dictionary encoding for variable-length (string) fields.

The synopsis framework operates on fixed-width integer domains;
"variable-length types, e.g. strings, can leverage dictionary-encoding
to reduce them to the former problem" (Section 3.1).  This module
provides that reduction: a :class:`StringDictionary` assigns dense
integer codes in first-seen order, so string fields can be indexed and
summarised like any integer field.

Note the caveat inherited from the paper: synopses over dictionary
codes estimate *equality/categorical* predicates well, but range
predicates over codes only make sense if codes preserve the desired
order (use :meth:`StringDictionary.frozen_sorted` to build an
order-preserving dictionary from a known vocabulary).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DomainError
from repro.types import Domain

__all__ = ["StringDictionary"]


class StringDictionary:
    """Bidirectional string <-> dense integer code mapping."""

    def __init__(self, capacity: int = 2**31) -> None:
        if capacity < 1:
            raise DomainError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._codes: dict[str, int] = {}
        self._strings: list[str] = []
        self._frozen = False

    @classmethod
    def frozen_sorted(cls, vocabulary: Iterable[str]) -> "StringDictionary":
        """An immutable dictionary whose codes preserve lexicographic
        order, enabling meaningful range predicates over codes."""
        dictionary = cls()
        for token in sorted(set(vocabulary)):
            dictionary.encode(token)
        dictionary._frozen = True
        return dictionary

    def encode(self, token: str) -> int:
        """The code of ``token``, assigning a fresh one when unseen."""
        code = self._codes.get(token)
        if code is not None:
            return code
        if self._frozen:
            raise DomainError(f"token {token!r} not in frozen dictionary")
        if len(self._strings) >= self._capacity:
            raise DomainError("dictionary capacity exhausted")
        code = len(self._strings)
        self._codes[token] = code
        self._strings.append(token)
        return code

    def decode(self, code: int) -> str:
        """Inverse of :meth:`encode`."""
        if not 0 <= code < len(self._strings):
            raise DomainError(f"unknown dictionary code {code}")
        return self._strings[code]

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, token: object) -> bool:
        return token in self._codes

    def tokens(self) -> Iterator[str]:
        """All tokens in code order."""
        return iter(self._strings)

    def code_domain(self) -> Domain:
        """The integer domain the assigned codes occupy (for synopses)."""
        if not self._strings:
            raise DomainError("empty dictionary has no code domain")
        return Domain(0, len(self._strings) - 1)
