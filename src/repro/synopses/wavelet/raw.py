"""Raw-frequency wavelet synopsis (the prefix-sum ablation baseline).

The paper's Algorithm 1 encodes the *prefix sum* of the frequency
signal because "using a 'dense' prefix sum as an input for the wavelet
decomposition significantly improves the accuracy of range-sum
queries" (Section 3.2).  This module implements the alternative it
measured against: decomposing the raw sparse frequency vector itself.

A range query over raw-frequency coefficients cannot use the two-point
reconstruction trick; instead the range sum is computed analytically
from the retained coefficients -- each Haar basis function contributes
``value * (|range ∩ right half| - |range ∩ left half|)`` in O(1), so a
query costs O(B) regardless of range width.

Used by ``benchmarks/bench_ablation_prefix_sum.py``; not registered as
a first-class :class:`~repro.synopses.base.SynopsisType` because the
framework ships the paper's (superior) prefix-sum variant.
"""

from __future__ import annotations

from repro.errors import SynopsisError
from repro.synopses.wavelet.coefficient import support_interval
from repro.synopses.wavelet.streaming import StreamingWaveletTransform
from repro.types import Domain

__all__ = ["RawFrequencyWaveletSynopsis", "RawFrequencyWaveletBuilder"]


def _overlap(lo: int, hi_exclusive: int, start: int, end: int) -> int:
    """Size of ``[lo, hi_exclusive) ∩ [start, end)``."""
    return max(0, min(hi_exclusive, end) - max(lo, start))


class RawFrequencyWaveletSynopsis:
    """Top-B Haar coefficients of the raw frequency signal."""

    def __init__(
        self, domain: Domain, budget: int, coefficients: dict[int, float]
    ) -> None:
        if len(coefficients) > budget:
            raise SynopsisError(
                f"{len(coefficients)} coefficients exceed budget {budget}"
            )
        self.domain = domain
        self.budget = budget
        self.levels = domain.levels
        self.coefficients = dict(coefficients)

    @property
    def element_count(self) -> int:
        """Retained coefficients."""
        return len(self.coefficients)

    def estimate(self, lo: int, hi: int) -> float:
        """Analytic range sum over the retained basis functions."""
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo_pos = self.domain.position(clipped[0])
        hi_pos = self.domain.position(clipped[1]) + 1  # half-open
        total = 0.0
        for index, value in self.coefficients.items():
            start, end = support_interval(index, self.levels)
            if index == 0:
                total += value * _overlap(lo_pos, hi_pos, start, end)
                continue
            middle = (start + end) // 2
            right = _overlap(lo_pos, hi_pos, middle, end)
            left = _overlap(lo_pos, hi_pos, start, middle)
            # Detail = (right - left) / 2: +1 on the right half, -1 left.
            total += value * (right - left)
        return max(total, 0.0)


class RawFrequencyWaveletBuilder:
    """Streams sorted values into the raw-frequency transform."""

    def __init__(self, domain: Domain, budget: int) -> None:
        self.domain = domain
        self.budget = budget
        self._transform = StreamingWaveletTransform(
            domain.levels, budget, encode_prefix_sum=False
        )
        self._current_value: int | None = None
        self._current_frequency = 0

    def add(self, value: int) -> None:
        """Observe one value from the non-decreasing stream."""
        if value == self._current_value:
            self._current_frequency += 1
            return
        if self._current_value is not None and value < self._current_value:
            raise SynopsisError("raw wavelet builder requires sorted input")
        self._flush_pending()
        self._current_value = value
        self._current_frequency = 1

    def _flush_pending(self) -> None:
        if self._current_value is not None:
            self._transform.add(
                self.domain.position(self._current_value),
                float(self._current_frequency),
            )

    def build(self) -> RawFrequencyWaveletSynopsis:
        """Finalise (single use)."""
        self._flush_pending()
        coefficients = {c.index: c.value for c in self._transform.finish()}
        return RawFrequencyWaveletSynopsis(self.domain, self.budget, coefficients)
