"""Classic full-array Haar decomposition (the reference implementation).

This is the textbook algorithm from the paper's Appendix B: recursive
pairwise averaging and differencing of the complete signal.  It
allocates arrays proportional to the domain length, so it is only
usable for small domains -- which is exactly why the paper develops the
streaming variant (Algorithm 1).  It exists here as the correctness
oracle: property tests check that the streaming transform produces the
identical coefficient set.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["classic_decompose", "classic_reconstruct", "prefix_sum_signal"]


def _require_power_of_two(n: int) -> None:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"signal length must be a positive power of two, got {n}")


def classic_decompose(signal: Sequence[float]) -> dict[int, float]:
    """Full Haar decomposition; returns non-zero coefficients by index.

    Follows the paper's convention: the average of a pair ``(left,
    right)`` is ``(left + right) / 2`` and the detail is
    ``(right - left) / 2``.  Coefficients are unnormalized.
    """
    _require_power_of_two(len(signal))
    coefficients: dict[int, float] = {}
    current = [float(x) for x in signal]
    while len(current) > 1:
        base = len(current) // 2
        averages = []
        for pair_index in range(base):
            left = current[2 * pair_index]
            right = current[2 * pair_index + 1]
            averages.append((left + right) / 2.0)
            detail = (right - left) / 2.0
            if detail != 0.0:
                coefficients[base + pair_index] = detail
        current = averages
    if current[0] != 0.0:
        coefficients[0] = current[0]
    return coefficients


def classic_reconstruct(coefficients: dict[int, float], length: int) -> list[float]:
    """Invert :func:`classic_decompose` (missing coefficients are 0)."""
    _require_power_of_two(length)
    current = [coefficients.get(0, 0.0)]
    while len(current) < length:
        base = len(current)
        expanded = []
        for pair_index, average in enumerate(current):
            detail = coefficients.get(base + pair_index, 0.0)
            expanded.append(average - detail)  # left child
            expanded.append(average + detail)  # right child
        current = expanded
    return current


def prefix_sum_signal(frequencies: Iterable[float], length: int) -> list[float]:
    """The "dense" prefix-sum signal the paper feeds the decomposition.

    ``frequencies`` lists raw per-position frequencies (length <=
    ``length``; missing tail positions are zero); the result is the
    running sum, extended at the final value through the padded tail --
    converting the sparse frequency vector into the one-dimensional
    datacube of Section 3.2.
    """
    _require_power_of_two(length)
    out: list[float] = []
    running = 0.0
    for value in frequencies:
        running += value
        out.append(running)
    if len(out) > length:
        raise ValueError(
            f"{len(out)} frequencies exceed signal length {length}"
        )
    out.extend([running] * (length - len(out)))
    return out
