"""Wavelet coefficients and error-tree addressing.

The Haar decomposition of a length-``M`` signal (``M = 2^levels``)
forms an *error tree* (paper Appendix B, Figure 11): node 0 holds the
overall average, node 1 the coarsest detail coefficient, and node ``i``
(``1 <= i < M``) a detail coefficient whose children are nodes ``2i``
and ``2i + 1``.  A detail coefficient at tree depth ``d`` (``d =
floor(log2 i)``) sits at resolution level ``levels - d`` and supports a
dyadic interval of ``2^(levels - d)`` signal positions.

Sign convention (matching the paper's worked example): with a detail
coefficient ``c = (right - left) / 2``, descending into the *right*
child adds ``c`` and into the *left* child subtracts it.

Normalization (Appendix B): a coefficient's significance weight grows
with its support -- we use ``|value| * 2^(level/2)``, which orders
coefficients identically to the paper's division by
``sqrt(2)^(logM - level)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WaveletCoefficient",
    "coefficient_level",
    "normalized_weight",
    "preorder_sort_key",
    "support_interval",
]


@dataclass(frozen=True, slots=True)
class WaveletCoefficient:
    """One (error-tree index, unnormalized value) pair."""

    index: int
    value: float


def coefficient_level(index: int, levels: int) -> int:
    """Resolution level of a coefficient (support size ``2^level``).

    The overall average (index 0) and the coarsest detail (index 1)
    both live at the top level ``levels``.
    """
    if index < 0:
        raise ValueError(f"negative coefficient index {index}")
    if index == 0:
        return levels
    depth = index.bit_length() - 1
    if depth > levels:
        raise ValueError(
            f"coefficient index {index} too deep for {levels} levels"
        )
    return levels - depth


def normalized_weight(index: int, value: float, levels: int) -> float:
    """Thresholding weight: larger support makes a coefficient weigh more."""
    return abs(value) * 2.0 ** (coefficient_level(index, levels) / 2.0)


def support_interval(index: int, levels: int) -> tuple[int, int]:
    """Half-open position interval ``[start, end)`` a coefficient's
    basis function is non-zero on.

    The overall average (index 0) and the coarsest detail (index 1)
    both span the whole signal; a detail node at depth ``d`` spans the
    ``2^(levels - d)`` positions of its error-tree subtree.
    """
    if index == 0:
        return 0, 1 << levels
    depth = index.bit_length() - 1
    size = 1 << (levels - depth)
    start = (index - (1 << depth)) * size
    return start, start + size


def preorder_sort_key(index: int) -> tuple:
    """Sort key realising the binary-tree pre-order layout the paper
    stores synopses in (a parent precedes its subtree; a left subtree
    precedes its right sibling's).

    Index 0 (the overall average) sorts first; every detail node is
    keyed by its root-to-node path, so lexicographic comparison of
    paths -- where a parent's path is a strict prefix of its
    descendants' -- yields exactly the pre-order.
    """
    if index == 0:
        return (0, "")
    depth = index.bit_length() - 1
    path = format(index - (1 << depth), f"0{depth}b") if depth else ""
    return (1, path)
