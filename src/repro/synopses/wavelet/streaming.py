"""Streaming prefix-sum Haar decomposition (the paper's Algorithm 1).

The classic decomposition allocates arrays as long as the value domain
-- hopeless for 64-bit domains.  Algorithm 1 instead streams the sorted
``(position, frequency)`` tuples and maintains:

* a *stack of partial averages*, one per resolution level, holding the
  averages of the completed dyadic intervals on the current root-to-
  leaf path of the error tree (levels strictly decrease downwards, so
  the stack depth is at most ``logM``);
* a *bounded priority queue* retaining only the ``B`` most significant
  coefficients by normalized weight.

Because the transform encodes the *prefix sum* of the frequency signal
(the "dense datacube" trick of Section 3.2), the gaps between sparse
input positions carry the constant current prefix.  Each gap is covered
greedily by maximal aligned dyadic intervals -- the paper's
``calcDyadicIntervals`` -- each contributing a single stack entry whose
subtree is internally constant (all its interior detail coefficients
are zero and need never be materialised).  The total work is
``O(n logM)`` for ``n`` distinct positions, independent of the domain
length.

The output is bit-for-bit the same coefficient set as
:func:`repro.synopses.wavelet.classic.classic_decompose` applied to the
full prefix-sum signal -- a property the test suite checks exhaustively.
"""

from __future__ import annotations

from repro.errors import SynopsisError
from repro.synopses.wavelet.coefficient import (
    WaveletCoefficient,
    normalized_weight,
)
from repro.util.bounded_heap import BoundedMinHeap

__all__ = ["StreamingWaveletTransform"]


class StreamingWaveletTransform:
    """One-pass Haar transform of a sparse, sorted frequency stream.

    Args:
        levels: ``log2`` of the (padded) domain length.
        budget: Retain only the ``budget`` heaviest coefficients, or
            ``None`` to keep every non-zero coefficient (used by the
            equivalence tests and by ground-truth tooling).
        encode_prefix_sum: ``True`` (the paper's default) transforms the
            running prefix sum of the frequencies -- the "dense
            datacube" optimisation; ``False`` transforms the raw sparse
            frequency signal itself (the ablation baseline the paper
            argues against in Section 3.2).
    """

    def __init__(
        self,
        levels: int,
        budget: int | None = None,
        encode_prefix_sum: bool = True,
    ) -> None:
        if levels < 0:
            raise SynopsisError(f"levels must be >= 0, got {levels}")
        self.levels = levels
        self.length = 1 << levels
        self.encode_prefix_sum = encode_prefix_sum
        self._heap = BoundedMinHeap(budget) if budget is not None else None
        self._kept: list[WaveletCoefficient] = []  # used when budget is None
        # Stack entries are (level, key, average): the average over the
        # dyadic positions [key * 2^level, (key+1) * 2^level - 1].
        self._stack: list[tuple[int, int, float]] = []
        self._covered = 0  # positions transformed so far
        self._prefix = 0.0  # running sum of frequencies
        self._finished = False

    def add(self, position: int, frequency: float) -> None:
        """Feed the next distinct position (strictly increasing)."""
        if self._finished:
            raise SynopsisError("transform already finished")
        position = int(position)  # normalise numpy integer scalars
        if not 0 <= position < self.length:
            raise SynopsisError(
                f"position {position} outside signal of length {self.length}"
            )
        if position < self._covered:
            raise SynopsisError(
                f"positions must be strictly increasing: {position} after "
                f"{self._covered - 1}"
            )
        # The gap before this tuple carries the unchanged prefix sum
        # (or zeros, in raw-frequency mode).
        self._fill_gap(position)
        self._prefix += frequency
        leaf_value = self._prefix if self.encode_prefix_sum else frequency
        self._push(0, position, leaf_value)
        self._covered += 1

    def finish(self) -> list[WaveletCoefficient]:
        """Close the transform and return the retained coefficients.

        Mirrors lines 7-9 of Algorithm 1: the tail of the domain is
        filled with the final prefix value, and the overall average --
        itself a valid coefficient -- joins the priority queue.
        """
        if self._finished:
            raise SynopsisError("transform already finished")
        self._finished = True
        self._fill_gap(self.length)
        assert len(self._stack) == 1 and self._stack[0][0] == self.levels
        overall_average = self._stack[0][2]
        self._emit(0, overall_average)
        if self._heap is not None:
            return list(self._heap.items())
        return self._kept

    # -- internals ---------------------------------------------------------

    def _fill_gap(self, end: int) -> None:
        """Cover positions ``[covered, end)`` -- all holding the current
        prefix value (zero in raw-frequency mode) -- with maximal
        aligned dyadic intervals."""
        fill_value = self._prefix if self.encode_prefix_sum else 0.0
        while self._covered < end:
            gap = end - self._covered
            if self._covered == 0:
                alignment = self.levels
            else:
                # Largest power of two dividing ``covered``.
                alignment = (self._covered & -self._covered).bit_length() - 1
            level = min(alignment, gap.bit_length() - 1)
            self._push(level, self._covered >> level, fill_value)
            self._covered += 1 << level

    def _push(self, level: int, key: int, average: float) -> None:
        """Push a completed dyadic interval; cascade sibling averaging.

        The stack invariant -- strictly decreasing levels from the
        bottom -- may be violated by the push; restoring it averages
        equal-level siblings, emitting their detail coefficient (the
        paper's "domino effect", Figure 1b).
        """
        self._stack.append((level, key, average))
        while len(self._stack) >= 2 and self._stack[-1][0] == self._stack[-2][0]:
            same_level, right_key, right_value = self._stack.pop()
            _level, left_key, left_value = self._stack.pop()
            assert left_key + 1 == right_key and left_key % 2 == 0
            parent_level = same_level + 1
            detail = (right_value - left_value) / 2.0
            index = (1 << (self.levels - parent_level)) + (right_key >> 1)
            self._emit(index, detail)
            self._stack.append(
                (parent_level, right_key >> 1, (left_value + right_value) / 2.0)
            )

    def _emit(self, index: int, value: float) -> None:
        if value == 0.0:
            return  # zero coefficients never survive thresholding
        coefficient = WaveletCoefficient(index, value)
        if self._heap is not None:
            self._heap.add(normalized_weight(index, value, self.levels), coefficient)
        else:
            self._kept.append(coefficient)
