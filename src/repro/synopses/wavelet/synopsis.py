"""The wavelet synopsis: queries, merging, serialisation.

The retained coefficients encode the *prefix sum* ``W`` of the value
frequencies, so a range query ``[x, y]`` needs just two point
reconstructions, ``W(y) - W(x - 1)``, each a single root-to-leaf walk
of the error tree (Section 3.6) -- no inverse transform required.

Because the Haar transform is linear and the prefix sum of a union of
record sets is the sum of their prefix sums, two wavelet synopses over
the same domain merge by adding coefficients index-wise and then
re-thresholding to the budget; the re-thresholding is where mergeable
synopses "lose some accuracy along the way" (Section 3.5).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.synopses.wavelet.coefficient import (
    WaveletCoefficient,
    normalized_weight,
    preorder_sort_key,
)
from repro.synopses.wavelet.streaming import StreamingWaveletTransform
from repro.types import Domain

__all__ = ["WaveletSynopsis", "WaveletBuilder"]


class WaveletSynopsis(Synopsis):
    """Top-B Haar coefficients of the prefix-sum frequency signal."""

    synopsis_type = SynopsisType.WAVELET

    def __init__(
        self,
        domain: Domain,
        budget: int,
        coefficients: dict[int, float],
        total_count: int,
    ) -> None:
        if len(coefficients) > budget:
            raise SynopsisError(
                f"{len(coefficients)} coefficients exceed budget {budget}"
            )
        super().__init__(domain, budget, total_count)
        self.levels = domain.levels
        self.coefficients = dict(coefficients)

    @property
    def element_count(self) -> int:
        return len(self.coefficients)

    def prefix_value(self, position: int) -> float:
        """Reconstruct ``W(position)``, the encoded prefix sum, via one
        root-to-leaf traversal (positions outside the signal clamp:
        ``W`` is 0 before the domain and constant through the padded
        tail)."""
        if position < 0:
            return 0.0
        position = min(position, (1 << self.levels) - 1)
        value = self.coefficients.get(0, 0.0)
        index = 1
        for shift in range(self.levels - 1, -1, -1):
            coefficient = self.coefficients.get(index, 0.0)
            bit = (position >> shift) & 1
            # Detail is (right - left) / 2: right child adds, left subtracts.
            value += coefficient if bit else -coefficient
            index = 2 * index + bit
        return value

    def estimate(self, lo: int, hi: int) -> float:
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        lo_position = self.domain.position(lo)
        hi_position = self.domain.position(hi)
        estimate = self.prefix_value(hi_position) - self.prefix_value(
            lo_position - 1
        )
        return max(estimate, 0.0)

    def _merge(self, other: Synopsis) -> "WaveletSynopsis":
        assert isinstance(other, WaveletSynopsis)
        combined = dict(self.coefficients)
        for index, value in other.coefficients.items():
            merged_value = combined.get(index, 0.0) + value
            if merged_value == 0.0:
                combined.pop(index, None)
            else:
                combined[index] = merged_value
        thresholded = _threshold(combined, self.budget, self.levels)
        return WaveletSynopsis(
            self.domain,
            self.budget,
            thresholded,
            self.total_count + other.total_count,
        )

    def to_payload(self) -> dict[str, Any]:
        ordered = sorted(self.coefficients, key=preorder_sort_key)
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "total_count": self.total_count,
            # Binary-tree pre-order, the paper's serialisation layout.
            "coefficients": [[i, self.coefficients[i]] for i in ordered],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "WaveletSynopsis":
        """Inverse of :meth:`to_payload`."""
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            {int(i): float(v) for i, v in payload["coefficients"]},
            payload["total_count"],
        )


def _threshold(
    coefficients: dict[int, float], budget: int, levels: int
) -> dict[int, float]:
    """Keep the ``budget`` heaviest coefficients by normalized weight."""
    if len(coefficients) <= budget:
        return coefficients
    ranked = sorted(
        coefficients.items(),
        key=lambda item: normalized_weight(item[0], item[1], levels),
        reverse=True,
    )
    return dict(ranked[:budget])


class WaveletBuilder(SynopsisBuilder):
    """Aggregates the sorted value stream into per-value frequencies and
    feeds them through the streaming transform."""

    def __init__(self, domain: Domain, budget: int) -> None:
        super().__init__(domain, budget)
        self._transform = StreamingWaveletTransform(domain.levels, budget)
        self._current_value: int | None = None
        self._current_frequency = 0

    def _add(self, value: int) -> None:
        if value == self._current_value:
            self._current_frequency += 1
            return
        self._flush_pending()
        self._current_value = value
        self._current_frequency = 1

    def _add_many(self, values: "Sequence[int]") -> None:
        """Batched wavelet step via run-length aggregation.

        Exactness: the streaming transform consumes (position,
        frequency) runs in non-decreasing position order, and the
        run boundaries are fully determined by the value sequence --
        chunking cannot split a run because the pending run carries
        across chunks in ``_current_value``/``_current_frequency``.
        Duplicate values only bump the pending frequency, so the stack
        cascade runs once per distinct value, exactly as per-record
        ``_add`` calls would; coefficients are bit-identical across the
        per-record, list-chunk, and columnar paths (float arithmetic
        included: the same ``transform_add`` calls happen in the same
        order with the same arguments).
        """
        current = self._current_value
        frequency = self._current_frequency
        transform_add = self._transform.add
        position = self.domain.position
        for value in values:
            if value == current:
                frequency += 1
            else:
                if current is not None:
                    transform_add(position(current), float(frequency))
                current = value
                frequency = 1
        self._current_value = current
        self._current_frequency = frequency
        self._count += len(values)

    def _flush_pending(self) -> None:
        if self._current_value is not None:
            self._transform.add(
                self.domain.position(self._current_value),
                float(self._current_frequency),
            )

    def _build(self) -> WaveletSynopsis:
        self._flush_pending()
        coefficients = {
            c.index: c.value for c in self._transform.finish()
        }
        return WaveletSynopsis(
            self.domain, self.budget, coefficients, total_count=self._count
        )
