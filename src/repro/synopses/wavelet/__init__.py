"""Wavelet synopses: classic and streaming Haar decomposition."""

from repro.synopses.wavelet.classic import (
    classic_decompose,
    classic_reconstruct,
    prefix_sum_signal,
)
from repro.synopses.wavelet.coefficient import (
    WaveletCoefficient,
    coefficient_level,
    normalized_weight,
    preorder_sort_key,
)
from repro.synopses.wavelet.streaming import StreamingWaveletTransform
from repro.synopses.wavelet.synopsis import WaveletBuilder, WaveletSynopsis

__all__ = [
    "WaveletCoefficient",
    "coefficient_level",
    "normalized_weight",
    "preorder_sort_key",
    "classic_decompose",
    "classic_reconstruct",
    "prefix_sum_signal",
    "StreamingWaveletTransform",
    "WaveletSynopsis",
    "WaveletBuilder",
]
