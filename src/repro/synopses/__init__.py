"""Statistical synopses: equi-width/equi-height histograms and wavelets.

The synopsis families of Section 3.2, all built by linear-time
streaming algorithms over the sorted record streams that LSM lifecycle
events already produce.
"""

from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.synopses.bucket import BucketHistogram
from repro.synopses.equi_height import EquiHeightBuilder, EquiHeightHistogram
from repro.synopses.equi_width import EquiWidthBuilder, EquiWidthHistogram
from repro.synopses.factory import create_builder, synopsis_from_payload
from repro.synopses.gk import GKSketch, GKSketchBuilder
from repro.synopses.ground_truth import GroundTruthBuilder, GroundTruthSynopsis
from repro.synopses.hll import (
    HBSCodec,
    HyperLogLogBuilder,
    HyperLogLogSynopsis,
    ndv_statistics_key,
)
from repro.synopses.maxdiff import MaxDiffBuilder, MaxDiffHistogram
from repro.synopses.sampling import ReservoirSample, ReservoirSampleBuilder
from repro.synopses.voptimal import VOptimalBuilder, VOptimalHistogram
from repro.synopses.wavelet import (
    StreamingWaveletTransform,
    WaveletBuilder,
    WaveletCoefficient,
    WaveletSynopsis,
    classic_decompose,
    classic_reconstruct,
    prefix_sum_signal,
)

__all__ = [
    "Synopsis",
    "SynopsisBuilder",
    "SynopsisType",
    "EquiWidthHistogram",
    "EquiWidthBuilder",
    "EquiHeightHistogram",
    "EquiHeightBuilder",
    "WaveletSynopsis",
    "WaveletBuilder",
    "WaveletCoefficient",
    "StreamingWaveletTransform",
    "classic_decompose",
    "classic_reconstruct",
    "prefix_sum_signal",
    "GroundTruthSynopsis",
    "GroundTruthBuilder",
    "BucketHistogram",
    "VOptimalHistogram",
    "VOptimalBuilder",
    "MaxDiffHistogram",
    "MaxDiffBuilder",
    "GKSketch",
    "GKSketchBuilder",
    "HBSCodec",
    "HyperLogLogSynopsis",
    "HyperLogLogBuilder",
    "ndv_statistics_key",
    "ReservoirSample",
    "ReservoirSampleBuilder",
    "create_builder",
    "synopsis_from_payload",
]
