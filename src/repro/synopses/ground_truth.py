"""Exact per-value counts masquerading as a synopsis.

Not part of the paper's design -- a diagnostic oracle.  It stores the
full frequency map of the observed stream, so its estimates are exact
for the summarised component.  Tests and ablation benchmarks use it to
separate synopsis approximation error from framework plumbing error
(anti-matter handling, per-component combination, merging): any
discrepancy between a ground-truth "synopsis" pipeline and the true
cardinality is a plumbing bug, not an accuracy artefact.
"""

from __future__ import annotations

from typing import Any

from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.types import Domain

__all__ = ["GroundTruthSynopsis", "GroundTruthBuilder"]


class GroundTruthSynopsis(Synopsis):
    """The exact frequency map of one component's value stream."""

    synopsis_type = SynopsisType.GROUND_TRUTH

    def __init__(
        self, domain: Domain, budget: int, frequencies: dict[int, int]
    ) -> None:
        super().__init__(domain, budget, total_count=sum(frequencies.values()))
        self.frequencies = dict(frequencies)

    @property
    def element_count(self) -> int:
        return len(self.frequencies)

    def estimate(self, lo: int, hi: int) -> float:
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        if len(self.frequencies) <= hi - lo + 1:
            return float(
                sum(f for v, f in self.frequencies.items() if lo <= v <= hi)
            )
        return float(
            sum(self.frequencies.get(v, 0) for v in range(lo, hi + 1))
        )

    def _merge(self, other: Synopsis) -> "GroundTruthSynopsis":
        assert isinstance(other, GroundTruthSynopsis)
        merged = dict(self.frequencies)
        for value, frequency in other.frequencies.items():
            merged[value] = merged.get(value, 0) + frequency
        return GroundTruthSynopsis(self.domain, self.budget, merged)

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "frequencies": sorted(self.frequencies.items()),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GroundTruthSynopsis":
        """Inverse of :meth:`to_payload`."""
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            {int(v): int(f) for v, f in payload["frequencies"]},
        )


class GroundTruthBuilder(SynopsisBuilder):
    """Counts every value exactly (unbounded memory; diagnostics only)."""

    def __init__(self, domain: Domain, budget: int = 1) -> None:
        super().__init__(domain, budget)
        self._frequencies: dict[int, int] = {}

    def _add(self, value: int) -> None:
        self._frequencies[value] = self._frequencies.get(value, 0) + 1

    def _build(self) -> GroundTruthSynopsis:
        return GroundTruthSynopsis(self.domain, self.budget, self._frequencies)
