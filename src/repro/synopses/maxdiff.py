"""MaxDiff(V, A) histograms (Poosala et al.) -- the second baseline.

MaxDiff places bucket borders at the ``budget - 1`` largest differences
in *area* (frequency x spread) between neighbouring attribute values,
isolating the sharpest jumps of the distribution into their own bucket
boundaries.  Poosala et al. rank it with V-optimal for accuracy; the
paper excludes it from the ingestion path because it "require[s]
multiple passes over the sorted data, which can not be achieved in a
streaming environment" (Section 2).  Like the V-optimal baseline, this
implementation buffers the distinct-value vector -- deliberately
violating the streaming budget so the trade-off can be measured.
"""

from __future__ import annotations

import numpy as np

from repro.synopses.base import SynopsisBuilder, SynopsisType
from repro.synopses.bucket import BucketHistogram
from repro.types import Domain

__all__ = ["MaxDiffHistogram", "MaxDiffBuilder"]


class MaxDiffHistogram(BucketHistogram):
    """A histogram with borders at the largest area differences."""

    synopsis_type = SynopsisType.MAX_DIFF


class MaxDiffBuilder(SynopsisBuilder):
    """Buffers (value, frequency) pairs; borders picked at build time."""

    def __init__(self, domain: Domain, budget: int) -> None:
        super().__init__(domain, budget)
        self._values: list[int] = []
        self._frequencies: list[int] = []

    def _add(self, value: int) -> None:
        if self._values and self._values[-1] == value:
            self._frequencies[-1] += 1
            return
        self._values.append(value)
        self._frequencies.append(1)

    def _build(self) -> MaxDiffHistogram:
        if not self._values:
            return MaxDiffHistogram(
                self.domain, self.budget, self.domain.lo - 1, [], []
            )
        values = np.asarray(self._values, dtype=np.int64)
        frequencies = np.asarray(self._frequencies, dtype=np.float64)
        count = len(values)

        # Area of value i = frequency x spread to the next value (the
        # final value's spread is 1 by convention).
        spreads = np.empty(count, dtype=np.float64)
        if count > 1:
            spreads[:-1] = np.diff(values)
        spreads[-1] = 1.0
        areas = frequencies * spreads

        # Borders go after the budget-1 largest adjacent area jumps.
        num_borders = min(self.budget - 1, count - 1)
        if num_borders > 0:
            diffs = np.abs(np.diff(areas))
            # Stable top-k so ties resolve deterministically.
            order = np.argsort(-diffs, kind="stable")[:num_borders]
            split_after = np.sort(order)  # border after value index i
        else:
            split_after = np.array([], dtype=np.int64)

        borders, counts = [], []
        start = 0
        for split in list(split_after) + [count - 1]:
            end = int(split) + 1
            borders.append(int(values[end - 1]))
            counts.append(int(frequencies[start:end].sum()))
            start = end
        return MaxDiffHistogram(
            self.domain, self.budget, int(values[0]) - 1, borders, counts
        )
