"""Shared machinery for bucket histograms with data-dependent borders.

Equi-height, V-optimal and MaxDiff histograms all store the same
structure -- a sequence of strictly increasing right borders plus a
count per bucket -- and answer range queries the same way, under the
continuous-value assumption.  Their *construction* differs (and is
where the paper's streaming argument lives); estimation is shared here.

None of these are mergeable: the borders depend on the data, so two
histograms over disjoint record sets disagree about where buckets lie
(Section 3.5's argument for equi-height applies to all three).
"""

from __future__ import annotations

from typing import Any

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis
from repro.types import Domain

__all__ = ["BucketHistogram"]


class BucketHistogram(Synopsis):
    """A histogram of variable-width buckets.

    Bucket ``i`` covers the inclusive value range
    ``(borders[i-1], borders[i]]``; the left edge of bucket 0 is
    ``first_left`` (one below the smallest summarised value, so empty
    domain prefixes contribute nothing).
    """

    def __init__(
        self,
        domain: Domain,
        budget: int,
        first_left: int,
        borders: list[int],
        counts: list[int],
    ) -> None:
        if len(borders) != len(counts):
            raise SynopsisError("borders and counts must align")
        if len(borders) > budget:
            raise SynopsisError(
                f"{len(borders)} buckets exceed budget {budget}"
            )
        previous = first_left
        for border in borders:
            if border <= previous:
                raise SynopsisError(
                    "bucket borders must be strictly increasing"
                )
            previous = border
        super().__init__(domain, budget, total_count=sum(counts))
        self.first_left = first_left
        self.borders = borders
        self.counts = counts

    @property
    def element_count(self) -> int:
        return len(self.borders)

    def estimate(self, lo: int, hi: int) -> float:
        """Range estimate under the continuous-value assumption."""
        clipped = self.domain.intersect(lo, hi)
        if clipped is None or not self.borders:
            return 0.0
        lo, hi = clipped
        total = 0.0
        left = self.first_left
        for border, count in zip(self.borders, self.counts):
            bucket_lo, bucket_hi = left + 1, border
            left = border
            overlap = min(hi, bucket_hi) - max(lo, bucket_lo) + 1
            if overlap <= 0:
                continue
            total += count * (overlap / (bucket_hi - bucket_lo + 1))
        return max(total, 0.0)

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "first_left": self.first_left,
            "borders": list(self.borders),
            "counts": list(self.counts),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "BucketHistogram":
        """Inverse of :meth:`to_payload`."""
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            payload["first_left"],
            list(payload["borders"]),
            list(payload["counts"]),
        )
