"""The synopsis protocol.

A synopsis is a fixed-budget statistical summary of the values observed
in one LSM component (paper Section 3.2).  All synopsis types share:

* a construction budget of ``budget`` *elements*, where one element is
  one histogram bucket or one wavelet coefficient -- by construction
  each occupies the same space, so storage costs compare directly;
* a builder consuming a *non-decreasing* stream of integer values (the
  sorted order is imposed for free by the index being flushed/merged);
* a range estimator ``estimate(lo, hi)`` answering how many observed
  values fall into the inclusive range;
* a ``mergeable`` flag: equi-width histograms and wavelets can be
  combined into one synopsis, equi-height histograms cannot
  (Section 3.5).

Synopses serialise to plain payload dicts so the simulated cluster can
ship them over its byte-counting network channel.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from array import array
from typing import Any, ClassVar, Iterable, Sequence

from repro.errors import MergeabilityError, SynopsisError
from repro.types import Domain
from repro.util.npbackend import INT64_TYPECODE, int64_view

__all__ = ["SynopsisType", "Synopsis", "SynopsisBuilder"]


class SynopsisType(enum.Enum):
    """The synopsis families implemented by the framework.

    The first three are the paper's shipped synopses.  ``V_OPTIMAL``
    and ``MAX_DIFF`` are the accuracy-superior baselines from Poosala
    et al. that the paper *excludes* from the ingestion path for their
    construction cost (Section 1/2) -- implemented here so that
    trade-off can be measured.  ``GK_SKETCH`` and ``RESERVOIR_SAMPLE``
    are the paper's named future-work directions (Section 5): both
    tolerate *unsorted* input, so they extend statistics to
    non-indexed attributes.  ``HLL_SKETCH`` is the distinct-value
    family (docs/SKETCHES.md): order-insensitive, exactly mergeable by
    register union, and answering NDV instead of record counts.
    """

    EQUI_WIDTH = "equi_width"
    EQUI_HEIGHT = "equi_height"
    WAVELET = "wavelet"
    GROUND_TRUTH = "ground_truth"
    V_OPTIMAL = "v_optimal"
    MAX_DIFF = "max_diff"
    GK_SKETCH = "gk_sketch"
    RESERVOIR_SAMPLE = "reservoir_sample"
    HLL_SKETCH = "hll_sketch"

    @property
    def mergeable(self) -> bool:
        """Whether two synopses of this type can be combined into one."""
        return self in (
            SynopsisType.EQUI_WIDTH,
            SynopsisType.WAVELET,
            SynopsisType.GROUND_TRUTH,
            SynopsisType.GK_SKETCH,
            SynopsisType.HLL_SKETCH,
        )

    @property
    def requires_sorted_input(self) -> bool:
        """Whether the builder needs the key-sorted LSM stream.

        Sketches and samples work on any order -- the property the
        paper's future work needs for non-indexed attributes.
        """
        return self not in (
            SynopsisType.GK_SKETCH,
            SynopsisType.RESERVOIR_SAMPLE,
            SynopsisType.HLL_SKETCH,
        )


class Synopsis(ABC):
    """An immutable statistical summary of one value stream."""

    synopsis_type: ClassVar[SynopsisType]

    def __init__(self, domain: Domain, budget: int, total_count: int) -> None:
        if budget < 1:
            raise SynopsisError(f"budget must be >= 1, got {budget}")
        if total_count < 0:
            raise SynopsisError(f"negative total_count {total_count}")
        self.domain = domain
        self.budget = budget
        self.total_count = total_count

    @property
    def mergeable(self) -> bool:
        """Whether this synopsis can be merged with a compatible one."""
        return self.synopsis_type.mergeable

    @property
    @abstractmethod
    def element_count(self) -> int:
        """Number of budget elements actually used (<= budget)."""

    @abstractmethod
    def estimate(self, lo: int, hi: int) -> float:
        """Estimated number of observed values in the inclusive range
        ``[lo, hi]``; never negative."""

    def merge_with(self, other: "Synopsis") -> "Synopsis":
        """Combine two synopses summarising disjoint record sets.

        Raises :class:`~repro.errors.MergeabilityError` for inherently
        unmergeable types (equi-height histograms) or incompatible
        parameters.
        """
        self._check_merge_compatible(other)
        return self._merge(other)

    def _check_merge_compatible(self, other: "Synopsis") -> None:
        if not self.mergeable:
            raise MergeabilityError(
                f"{self.synopsis_type.value} synopses are not mergeable"
            )
        if other.synopsis_type is not self.synopsis_type:
            raise MergeabilityError(
                f"cannot merge {self.synopsis_type.value} with "
                f"{other.synopsis_type.value}"
            )
        if other.domain != self.domain or other.budget != self.budget:
            raise MergeabilityError(
                "cannot merge synopses with different domains or budgets"
            )

    def _merge(self, other: "Synopsis") -> "Synopsis":
        raise MergeabilityError(
            f"{self.synopsis_type.value} does not implement merging"
        )  # pragma: no cover - overridden by mergeable types

    @abstractmethod
    def to_payload(self) -> dict[str, Any]:
        """A JSON-able representation (shipped over the network sim)."""

    def payload_bytes(self) -> int:
        """Approximate serialised size: 16 bytes per element plus a
        small fixed header (one element = border+count or index+value,
        i.e. two 8-byte words -- the paper's like-for-like accounting)."""
        return 32 + 16 * self.element_count


class SynopsisBuilder(ABC):
    """Streaming builder fed by the bulkload record stream.

    When ``requires_sorted_input`` is set (the default -- histograms
    and wavelets exploit the index order), ``add`` must be called with
    a non-decreasing sequence of integer values (duplicates allowed --
    secondary keys repeat).  Sketch/sample builders clear the flag and
    accept any order.  ``build`` finalises and returns the synopsis;
    builders are single-use.
    """

    requires_sorted_input: ClassVar[bool] = True

    def __init__(self, domain: Domain, budget: int) -> None:
        if budget < 1:
            raise SynopsisError(f"budget must be >= 1, got {budget}")
        self.domain = domain
        self.budget = budget
        self._last_value: int | None = None
        self._count = 0
        self._built = False

    def add(self, value: int) -> None:
        """Observe one value from the sorted stream."""
        if self._built:
            raise SynopsisError("builder already finalised")
        if value not in self.domain:
            raise SynopsisError(
                f"value {value} outside domain "
                f"[{self.domain.lo}, {self.domain.hi}]"
            )
        value = int(value)  # normalise numpy integer scalars
        if (
            self.requires_sorted_input
            and self._last_value is not None
            and value < self._last_value
        ):
            raise SynopsisError(
                f"builder requires non-decreasing input: {value} after "
                f"{self._last_value}"
            )
        self._last_value = value
        self._count += 1
        self._add(value)

    def add_many(self, values: Iterable[int]) -> None:
        """Observe a chunk of values from the stream (batched hot path).

        Semantically identical to calling :meth:`add` once per value --
        builders override :meth:`_add_many` with a tight loop, and the
        validation (finalised-builder, domain membership, sort order) is
        amortised over the whole chunk.  The batched and per-record
        paths produce bit-identical synopses; the test suite asserts
        this for every registered synopsis family.

        A typed ``array('q')`` chunk (the columnar pipeline's zero-copy
        key column, docs/DATAPATH.md) is consumed without the
        normalising copy -- its elements are already plain 64-bit ints
        -- and, when the numpy backend is on, validated through a
        zero-copy vectorised pass that checks the identical predicates.
        """
        if self._built:
            raise SynopsisError("builder already finalised")
        chunk: Sequence[int]
        if isinstance(values, array) and values.typecode == INT64_TYPECODE:
            chunk = values  # iteration/indexing yield plain Python ints
            view = int64_view(values)
        else:
            chunk = [int(value) for value in values]  # normalise numpy scalars
            view = None
        if not chunk:
            return
        lo, hi = self.domain.lo, self.domain.hi
        if view is not None:
            in_domain = lo <= int(view.min()) and int(view.max()) <= hi
        else:
            in_domain = lo <= min(chunk) and max(chunk) <= hi
        if not in_domain:
            bad = next(v for v in chunk if v < lo or v > hi)
            raise SynopsisError(
                f"value {bad} outside domain [{lo}, {hi}]"
            )
        if self.requires_sorted_input:
            if self._last_value is not None and chunk[0] < self._last_value:
                raise SynopsisError(
                    f"builder requires non-decreasing input: {chunk[0]} "
                    f"after {self._last_value}"
                )
            if view is not None:
                is_sorted = bool((view[1:] >= view[:-1]).all())
            else:
                is_sorted = all(
                    left <= right for left, right in zip(chunk, chunk[1:])
                )
            if not is_sorted:
                for left, right in zip(chunk, chunk[1:]):
                    if right < left:
                        raise SynopsisError(
                            f"builder requires non-decreasing input: {right} "
                            f"after {left}"
                        )
        self._last_value = chunk[-1]
        self._add_many(chunk)

    def memory_bytes(self) -> int:
        """Accounted transient footprint while the builder rides a
        flush/merge (docs/MEMORY.md): the budget-element state at 16
        bytes per element plus a fixed header -- the same like-for-like
        accounting as :meth:`Synopsis.payload_bytes`.  Builders whose
        working set exceeds their budget elements (e.g. buffering
        quantile sketches) override this."""
        return 64 + 16 * self.budget

    def build(self) -> Synopsis:
        """Finalise and return the synopsis (single use)."""
        if self._built:
            raise SynopsisError("builder already finalised")
        self._built = True
        return self._build()

    @abstractmethod
    def _add(self, value: int) -> None:
        """Type-specific streaming step."""

    def _add_many(self, values: Sequence[int]) -> None:
        """Type-specific batched step over pre-validated values.

        ``values`` is either a plain list or a typed ``array('q')``
        column; both iterate as plain Python ints.  The default is the
        per-record fallback; hot builders override it with a loop that
        binds attributes once.  Overrides must keep ``_count``
        bookkeeping identical to the per-record path (some builders,
        e.g. GK sketches and reservoir samples, read the running count
        inside ``_add``).
        """
        for value in values:
            self._count += 1
            self._add(value)

    @abstractmethod
    def _build(self) -> Synopsis:
        """Type-specific finalisation."""
