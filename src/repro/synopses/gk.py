"""Greenwald-Khanna quantile sketches (the paper's future work).

Section 5: "Another potential direction is to relax the condition of
relying on a sorted order ... Methods based on sketches [31] seem to be
a promising data summary variant for this scenario."  Reference [31] is
Greenwald & Khanna's space-efficient online quantile summary; this
module implements it and adapts it to the framework's synopsis
protocol, so statistics can be collected on *non-indexed* attributes
whose values arrive in arbitrary order.

The summary is a sorted list of tuples ``(value, g, delta)`` where
``g`` is the gap in minimum rank to the previous tuple and ``delta``
the rank uncertainty; the invariant ``g + delta <= 2*eps*n`` bounds any
rank estimate's error by ``eps * n``.  The element budget fixes
``eps = 1/budget`` and the summary is additionally hard-capped at
``budget`` tuples (by merging the lowest-impact neighbours), so its
catalog footprint matches the other synopsis families element for
element.

Merging two sketches concatenates their tuple streams in value order
and re-compresses; the error bound degrades additively (the standard
mergeable-summaries result), mirroring how wavelet merges lose accuracy
to re-thresholding.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.types import Domain

__all__ = ["GKSketch", "GKSketchBuilder"]


class _Tuple:
    """One (value, g, delta) summary entry."""

    __slots__ = ("value", "g", "delta")

    def __init__(self, value: int, g: int, delta: int) -> None:
        self.value = value
        self.g = g
        self.delta = delta


def _compress(tuples: list[_Tuple], threshold: float) -> list[_Tuple]:
    """Greedy pairwise merge honouring the GK invariant.

    The right neighbour absorbs the left (``g`` adds, the survivor's
    ``delta`` is unchanged) whenever the combined uncertainty stays
    under ``threshold``; the extreme tuples (exact min/max) are never
    absorbed.
    """
    if len(tuples) <= 2:
        return tuples
    result = [tuples[0]]
    for entry in tuples[1:]:
        previous = result[-1]
        if (
            len(result) > 1  # never absorb the minimum
            and previous.g + entry.g + entry.delta <= threshold
        ):
            entry.g += previous.g
            result[-1] = entry
        else:
            result.append(entry)
    return result


def _hard_cap(tuples: list[_Tuple], budget: int) -> list[_Tuple]:
    """Force the summary under ``budget`` tuples by repeatedly merging
    the neighbour pair with the smallest combined uncertainty."""
    while len(tuples) > budget and len(tuples) > 2:
        best_index = min(
            range(1, len(tuples) - 1),
            key=lambda i: tuples[i].g + tuples[i + 1].g + tuples[i + 1].delta,
        )
        absorbed = tuples.pop(best_index)
        tuples[best_index].g += absorbed.g
    return tuples


class GKSketch(Synopsis):
    """An immutable Greenwald-Khanna rank summary."""

    synopsis_type = SynopsisType.GK_SKETCH

    def __init__(
        self,
        domain: Domain,
        budget: int,
        entries: list[tuple[int, int, int]],
        total_count: int,
    ) -> None:
        if len(entries) > budget:
            raise SynopsisError(
                f"{len(entries)} sketch tuples exceed budget {budget}"
            )
        super().__init__(domain, budget, total_count)
        self.entries = list(entries)
        self._values = [value for value, _g, _delta in entries]
        ranks = []
        running = 0
        for _value, g, _delta in entries:
            running += g
            ranks.append(running)
        self._min_ranks = ranks

    @property
    def element_count(self) -> int:
        return len(self.entries)

    def rank(self, value: int) -> float:
        """Estimated number of summarised values ``<= value``."""
        if not self.entries or value < self.entries[0][0]:
            return 0.0
        if value >= self.entries[-1][0]:
            return float(self.total_count)
        index = bisect.bisect_right(self._values, value) - 1
        delta = self.entries[index][2]
        return self._min_ranks[index] + delta / 2.0

    def estimate(self, lo: int, hi: int) -> float:
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        return max(self.rank(hi) - self.rank(lo - 1), 0.0)

    def _merge(self, other: Synopsis) -> "GKSketch":
        assert isinstance(other, GKSketch)
        combined = sorted(
            [_Tuple(*entry) for entry in self.entries + other.entries],
            key=lambda t: t.value,
        )
        total = self.total_count + other.total_count
        threshold = 2.0 * total / self.budget
        compressed = _hard_cap(_compress(combined, threshold), self.budget)
        return GKSketch(
            self.domain,
            self.budget,
            [(t.value, t.g, t.delta) for t in compressed],
            total,
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "total_count": self.total_count,
            "entries": [list(entry) for entry in self.entries],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GKSketch":
        """Inverse of :meth:`to_payload`."""
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            [tuple(entry) for entry in payload["entries"]],
            payload["total_count"],
        )


class GKSketchBuilder(SynopsisBuilder):
    """Online GK insertion; tolerates arbitrary input order."""

    requires_sorted_input = False

    def __init__(self, domain: Domain, budget: int) -> None:
        super().__init__(domain, budget)
        self._epsilon = 1.0 / budget
        self._tuples: list[_Tuple] = []
        self._values_cache: list[int] = []
        self._since_compress = 0
        self._compress_period = max(1, int(1.0 / (2.0 * self._epsilon)))

    def _add(self, value: int) -> None:
        n = self._count  # already incremented by the base class
        index = bisect.bisect_left(self._values_cache, value)
        if index == 0 or index == len(self._tuples):
            delta = 0  # new minimum or maximum is exact
        else:
            delta = max(0, int(2 * self._epsilon * n) - 1)
        self._tuples.insert(index, _Tuple(value, 1, delta))
        self._values_cache.insert(index, value)
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self._run_compress()

    def _add_many(self, values: "Sequence[int]") -> None:
        """Batched GK insertion (inlined ``_add``, identical algorithm).

        Exactness: the sketch is order- and cadence-sensitive -- each
        inserted tuple's ``delta`` is computed from the running
        ``_count`` at insertion time, and COMPRESS fires exactly when
        ``_count % period == 0``.  This loop preserves both: values are
        inserted one at a time in stream order with ``_count`` advanced
        first, so per-record ``add`` calls, list chunks, and the
        columnar pipeline's typed key columns all yield bit-identical
        tuple lists.  It must not be vectorised or re-chunked
        internally: moving a COMPRESS boundary changes which tuples
        merge.  (_run_compress rebinds the tuple/cache lists, so they
        are re-read every iteration.)
        """
        epsilon2 = 2.0 * self._epsilon
        period = self._compress_period
        for value in values:
            self._count += 1
            tuples = self._tuples
            cache = self._values_cache
            index = bisect.bisect_left(cache, value)
            if index == 0 or index == len(tuples):
                delta = 0  # new minimum or maximum is exact
            else:
                delta = max(0, int(epsilon2 * self._count) - 1)
            tuples.insert(index, _Tuple(value, 1, delta))
            cache.insert(index, value)
            self._since_compress += 1
            if self._since_compress >= period:
                self._run_compress()

    def _run_compress(self) -> None:
        threshold = 2.0 * self._epsilon * self._count
        self._tuples = _compress(self._tuples, threshold)
        self._values_cache = [t.value for t in self._tuples]
        self._since_compress = 0

    def _build(self) -> GKSketch:
        self._run_compress()
        self._tuples = _hard_cap(self._tuples, self.budget)
        return GKSketch(
            self.domain,
            self.budget,
            [(t.value, t.g, t.delta) for t in self._tuples],
            self._count,
        )
