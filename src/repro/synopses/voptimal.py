"""V-optimal histograms (Ioannidis & Poosala) -- the accuracy baseline.

Poosala et al. identified V-optimal histograms as the most accurate
bucketisation: borders are placed to minimise the total within-bucket
frequency variance.  The paper *excludes* them from its framework
because the dynamic-programming construction is super-linear ("This
would effectively eliminate synopses-collecting algorithms with high
asymptotic complexity (like V-optimal histograms)", Section 1); this
implementation exists to measure exactly that trade-off
(``benchmarks/bench_ablation_voptimal.py``): construction cost that
explodes with the number of distinct values, against an accuracy edge
over the streaming histograms.

Construction buffers the full distinct-value frequency vector -- a
deliberate violation of the streaming budget, which is the point.
The DP is the classic O(B * V^2) recurrence over prefix sums of ``f``
and ``f^2``, vectorised with numpy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynopsisError
from repro.synopses.base import SynopsisBuilder, SynopsisType
from repro.synopses.bucket import BucketHistogram
from repro.types import Domain

__all__ = ["VOptimalHistogram", "VOptimalBuilder", "v_optimal_partition"]


class VOptimalHistogram(BucketHistogram):
    """A histogram with variance-minimising bucket borders."""

    synopsis_type = SynopsisType.V_OPTIMAL


def v_optimal_partition(frequencies: np.ndarray, num_buckets: int) -> list[int]:
    """Split a frequency vector into variance-minimising segments.

    Returns the exclusive end index of each segment (the last entry is
    ``len(frequencies)``).  Classic dynamic program: ``err[k][i]`` is
    the minimal sum of squared errors partitioning the first ``i``
    items into ``k`` segments, computed from prefix sums so each
    segment cost is O(1).
    """
    count = len(frequencies)
    if count == 0:
        return []
    num_buckets = min(num_buckets, count)
    prefix = np.concatenate([[0.0], np.cumsum(frequencies, dtype=np.float64)])
    prefix_sq = np.concatenate(
        [[0.0], np.cumsum(np.square(frequencies, dtype=np.float64))]
    )

    def segment_cost(j: np.ndarray, i: int) -> np.ndarray:
        """SSE of the segment (j, i] for a vector of split points j."""
        total = prefix[i] - prefix[j]
        total_sq = prefix_sq[i] - prefix_sq[j]
        lengths = i - j
        return total_sq - np.square(total) / lengths

    # err[i] holds the best error for the current k; k = 1 is one
    # segment (0, i].  choices[k][i] = best split point before i.
    indices = np.arange(count + 1)
    err = np.empty(count + 1)
    err[0] = np.inf
    err[1:] = prefix_sq[1:] - np.square(prefix[1:]) / indices[1:]
    choices = np.zeros((num_buckets + 1, count + 1), dtype=np.int64)

    for k in range(2, num_buckets + 1):
        new_err = np.full(count + 1, np.inf)
        for i in range(k, count + 1):
            splits = indices[k - 1 : i]
            candidate = err[splits] + segment_cost(splits, i)
            best = int(np.argmin(candidate))
            new_err[i] = candidate[best]
            choices[k][i] = splits[best]
        err = new_err

    # Reconstruct the segment ends by walking the choices backwards.
    ends = [count]
    position = count
    for k in range(num_buckets, 1, -1):
        position = int(choices[k][position])
        ends.append(position)
    ends.reverse()
    return ends


class VOptimalBuilder(SynopsisBuilder):
    """Buffers the frequency vector and solves the partition DP.

    NOT a streaming algorithm: memory is O(distinct values) and build
    time O(budget * V^2).  ``max_distinct_values`` guards against
    accidentally running the quadratic DP on huge inputs.
    """

    def __init__(
        self, domain: Domain, budget: int, max_distinct_values: int = 20_000
    ) -> None:
        super().__init__(domain, budget)
        self.max_distinct_values = max_distinct_values
        self._values: list[int] = []
        self._frequencies: list[int] = []

    def _add(self, value: int) -> None:
        if self._values and self._values[-1] == value:
            self._frequencies[-1] += 1
            return
        if len(self._values) >= self.max_distinct_values:
            raise SynopsisError(
                f"V-optimal construction exceeds {self.max_distinct_values} "
                "distinct values; this baseline is quadratic by design"
            )
        self._values.append(value)
        self._frequencies.append(1)

    def _build(self) -> VOptimalHistogram:
        if not self._values:
            return VOptimalHistogram(
                self.domain, self.budget, self.domain.lo - 1, [], []
            )
        frequencies = np.asarray(self._frequencies, dtype=np.float64)
        ends = v_optimal_partition(frequencies, self.budget)
        borders, counts = [], []
        start = 0
        for end in ends:
            borders.append(self._values[end - 1])
            counts.append(int(frequencies[start:end].sum()))
            start = end
        return VOptimalHistogram(
            self.domain, self.budget, self._values[0] - 1, borders, counts
        )
