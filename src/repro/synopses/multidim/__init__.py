"""Two-dimensional synopses for composite-key indexes (paper §5)."""

from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.synopses.multidim.factory2d import (
    create_builder_2d,
    synopsis_2d_from_payload,
)
from repro.synopses.multidim.grid import GridHistogram2D, GridHistogram2DBuilder
from repro.synopses.multidim.ground_truth2d import (
    GroundTruth2D,
    GroundTruth2DBuilder,
)
from repro.synopses.multidim.wavelet2d import (
    DEFAULT_GRID_LEVELS,
    Wavelet2DBuilder,
    Wavelet2DSynopsis,
    haar_transform_dense,
)

__all__ = [
    "Synopsis2D",
    "Synopsis2DBuilder",
    "Synopsis2DType",
    "GridHistogram2D",
    "GridHistogram2DBuilder",
    "Wavelet2DSynopsis",
    "Wavelet2DBuilder",
    "haar_transform_dense",
    "DEFAULT_GRID_LEVELS",
    "GroundTruth2D",
    "GroundTruth2DBuilder",
    "create_builder_2d",
    "synopsis_2d_from_payload",
]
