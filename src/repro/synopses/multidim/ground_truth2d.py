"""Exact 2-D oracle synopsis (diagnostics only, like its 1-D sibling)."""

from __future__ import annotations

from typing import Any

from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.types import Domain

__all__ = ["GroundTruth2D", "GroundTruth2DBuilder"]


class GroundTruth2D(Synopsis2D):
    """The exact frequency map of one component's pair stream."""

    synopsis_type = Synopsis2DType.GROUND_TRUTH

    def __init__(
        self,
        domains: tuple[Domain, Domain],
        budget: int,
        frequencies: dict[tuple[int, int], int],
    ) -> None:
        super().__init__(domains, budget, total_count=sum(frequencies.values()))
        self.frequencies = dict(frequencies)

    @property
    def element_count(self) -> int:
        return len(self.frequencies)

    def estimate(self, lo_x: int, hi_x: int, lo_y: int, hi_y: int) -> float:
        clipped = self._clip(lo_x, hi_x, lo_y, hi_y)
        if clipped is None:
            return 0.0
        lo_x, hi_x, lo_y, hi_y = clipped
        return float(
            sum(
                count
                for (x, y), count in self.frequencies.items()
                if lo_x <= x <= hi_x and lo_y <= y <= hi_y
            )
        )

    def _merge(self, other: Synopsis2D) -> "GroundTruth2D":
        assert isinstance(other, GroundTruth2D)
        merged = dict(self.frequencies)
        for key, count in other.frequencies.items():
            merged[key] = merged.get(key, 0) + count
        return GroundTruth2D(self.domains, self.budget, merged)

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domains": [
                [self.domains[0].lo, self.domains[0].hi],
                [self.domains[1].lo, self.domains[1].hi],
            ],
            "budget": self.budget,
            "frequencies": [
                [x, y, count] for (x, y), count in sorted(self.frequencies.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GroundTruth2D":
        """Inverse of :meth:`to_payload`."""
        domains = (
            Domain(*payload["domains"][0]),
            Domain(*payload["domains"][1]),
        )
        return cls(
            domains,
            payload["budget"],
            {(int(x), int(y)): int(c) for x, y, c in payload["frequencies"]},
        )


class GroundTruth2DBuilder(Synopsis2DBuilder):
    """Counts every pair exactly (unbounded memory; diagnostics only)."""

    def __init__(self, domains: tuple[Domain, Domain], budget: int = 1) -> None:
        super().__init__(domains, budget)
        self._frequencies: dict[tuple[int, int], int] = {}

    def _add(self, x: int, y: int) -> None:
        key = (x, y)
        self._frequencies[key] = self._frequencies.get(key, 0) + 1

    def _build(self) -> GroundTruth2D:
        return GroundTruth2D(self.domains, self.budget, self._frequencies)
