"""Construction and deserialisation dispatch for 2-D synopsis types."""

from __future__ import annotations

from typing import Any

from repro.errors import SynopsisError
from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.synopses.multidim.grid import GridHistogram2D, GridHistogram2DBuilder
from repro.synopses.multidim.ground_truth2d import (
    GroundTruth2D,
    GroundTruth2DBuilder,
)
from repro.synopses.multidim.wavelet2d import Wavelet2DBuilder, Wavelet2DSynopsis
from repro.types import Domain

__all__ = ["create_builder_2d", "synopsis_2d_from_payload"]

_CLASSES: dict[Synopsis2DType, type[Synopsis2D]] = {
    Synopsis2DType.GRID: GridHistogram2D,
    Synopsis2DType.WAVELET: Wavelet2DSynopsis,
    Synopsis2DType.GROUND_TRUTH: GroundTruth2D,
}


def create_builder_2d(
    synopsis_type: Synopsis2DType,
    domains: tuple[Domain, Domain],
    budget: int,
) -> Synopsis2DBuilder:
    """Instantiate the builder for a 2-D synopsis type."""
    if synopsis_type is Synopsis2DType.GRID:
        return GridHistogram2DBuilder(domains, budget)
    if synopsis_type is Synopsis2DType.WAVELET:
        return Wavelet2DBuilder(domains, budget)
    if synopsis_type is Synopsis2DType.GROUND_TRUTH:
        return GroundTruth2DBuilder(domains, budget)
    raise SynopsisError(f"unknown 2-D synopsis type {synopsis_type!r}")


def synopsis_2d_from_payload(payload: dict[str, Any]) -> Synopsis2D:
    """Rebuild a 2-D synopsis from its network payload."""
    try:
        synopsis_type = Synopsis2DType(payload["type"])
    except (KeyError, ValueError) as exc:
        raise SynopsisError(f"malformed 2-D synopsis payload: {exc}") from exc
    cls = _CLASSES[synopsis_type]
    return cls.from_payload(payload)  # type: ignore[attr-defined]
