"""Equi-width grid histograms: the 2-D analogue of Section 3.2's
equi-width histogram (multidimensional histograms per Wang & Sevcik
[49], simplified to a fixed grid).

The budget is split evenly across the two axes -- ``floor(sqrt(B))``
cells per side -- and each cell counts the pairs falling into its
rectangle.  Estimation applies the continuous-value assumption
independently in both dimensions (a partially overlapped cell
contributes the product of its per-axis overlap fractions).  The grid
is data-independent, so two grids merge by element-wise addition, like
their 1-D counterpart.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import SynopsisError
from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.types import Domain

__all__ = ["GridHistogram2D", "GridHistogram2DBuilder"]


def _cells_per_side(budget: int) -> int:
    return max(1, int(math.isqrt(budget)))


def _cell_width(domain: Domain, cells: int) -> int:
    return -(-domain.length // cells)


class GridHistogram2D(Synopsis2D):
    """A fixed grid of counts over the cross product of two domains."""

    synopsis_type = Synopsis2DType.GRID

    def __init__(
        self,
        domains: tuple[Domain, Domain],
        budget: int,
        counts: np.ndarray,
    ) -> None:
        cells = _cells_per_side(budget)
        width_x = _cell_width(domains[0], cells)
        width_y = _cell_width(domains[1], cells)
        expected = (
            -(-domains[0].length // width_x),
            -(-domains[1].length // width_y),
        )
        if counts.shape != expected:
            raise SynopsisError(
                f"grid shape {counts.shape} does not match expected {expected}"
            )
        super().__init__(domains, budget, total_count=int(counts.sum()))
        self.widths = (width_x, width_y)
        self.counts = counts

    @property
    def element_count(self) -> int:
        return int(self.counts.size)

    def _axis_overlaps(
        self, axis: int, lo: int, hi: int
    ) -> tuple[int, int, np.ndarray]:
        """First/last touched cell index and per-cell overlap fractions."""
        domain = self.domains[axis]
        width = self.widths[axis]
        first = (lo - domain.lo) // width
        last = (hi - domain.lo) // width
        fractions = np.empty(last - first + 1)
        for offset, cell in enumerate(range(first, last + 1)):
            cell_lo = domain.lo + cell * width
            cell_hi = min(cell_lo + width - 1, domain.hi)
            overlap = min(hi, cell_hi) - max(lo, cell_lo) + 1
            fractions[offset] = overlap / (cell_hi - cell_lo + 1)
        return first, last, fractions

    def estimate(self, lo_x: int, hi_x: int, lo_y: int, hi_y: int) -> float:
        clipped = self._clip(lo_x, hi_x, lo_y, hi_y)
        if clipped is None:
            return 0.0
        lo_x, hi_x, lo_y, hi_y = clipped
        first_x, last_x, frac_x = self._axis_overlaps(0, lo_x, hi_x)
        first_y, last_y, frac_y = self._axis_overlaps(1, lo_y, hi_y)
        block = self.counts[first_x : last_x + 1, first_y : last_y + 1]
        weight = np.outer(frac_x, frac_y)
        return max(float((block * weight).sum()), 0.0)

    def _merge(self, other: Synopsis2D) -> "GridHistogram2D":
        assert isinstance(other, GridHistogram2D)
        return GridHistogram2D(
            self.domains, self.budget, self.counts + other.counts
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domains": [
                [self.domains[0].lo, self.domains[0].hi],
                [self.domains[1].lo, self.domains[1].hi],
            ],
            "budget": self.budget,
            "counts": self.counts.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GridHistogram2D":
        """Inverse of :meth:`to_payload`."""
        domains = (
            Domain(*payload["domains"][0]),
            Domain(*payload["domains"][1]),
        )
        return cls(
            domains,
            payload["budget"],
            np.asarray(payload["counts"], dtype=np.int64),
        )


class GridHistogram2DBuilder(Synopsis2DBuilder):
    """Streams sorted pairs into the fixed grid."""

    def __init__(self, domains: tuple[Domain, Domain], budget: int) -> None:
        super().__init__(domains, budget)
        cells = _cells_per_side(budget)
        self._width_x = _cell_width(domains[0], cells)
        self._width_y = _cell_width(domains[1], cells)
        shape = (
            -(-domains[0].length // self._width_x),
            -(-domains[1].length // self._width_y),
        )
        self._counts = np.zeros(shape, dtype=np.int64)

    def _add(self, x: int, y: int) -> None:
        row = (x - self.domains[0].lo) // self._width_x
        col = (y - self.domains[1].lo) // self._width_y
        self._counts[row, col] += 1

    def _build(self) -> GridHistogram2D:
        return GridHistogram2D(self.domains, self.budget, self._counts)
