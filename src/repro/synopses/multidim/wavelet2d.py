"""Two-dimensional wavelet synopses (standard/tensor Haar decomposition).

Follows the datacube-wavelet line the paper cites ([48] Vitter et al.,
[50] Wang et al.): the value space is quantized onto a ``G x G`` grid
(``G = 2^grid_levels``), the cell-count matrix is decomposed with the
*standard* 2-D Haar transform (full 1-D transform of every row, then of
every column), and the ``budget`` heaviest coefficients by normalized
weight are retained.

Each retained coefficient ``(i, j)`` multiplies the separable basis
``phi_i(x) * phi_j(y)``, so a rectangle estimate is an O(budget) sum of
``value * w_i(range_x) * w_j(range_y)`` where ``w`` is the signed
fractional overlap of the range with the basis function's halves --
no inverse transform, mirroring the 1-D raw-frequency machinery.

Quantization keeps construction memory at ``O(G^2)`` regardless of the
domain sizes; sub-cell resolution degrades gracefully under the same
continuous-value assumption histograms use.  (A fully streaming 2-D
transform is possible but out of scope -- the paper's own 1-D framework
also defers multidimensional streaming to future work.)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SynopsisError
from repro.synopses.multidim.base2d import (
    Synopsis2D,
    Synopsis2DBuilder,
    Synopsis2DType,
)
from repro.synopses.wavelet.coefficient import coefficient_level, support_interval
from repro.types import Domain

__all__ = [
    "Wavelet2DSynopsis",
    "Wavelet2DBuilder",
    "haar_transform_dense",
    "DEFAULT_GRID_LEVELS",
]

DEFAULT_GRID_LEVELS = 6
"""64 x 64 quantization cells by default."""


def haar_transform_dense(vector: np.ndarray) -> np.ndarray:
    """Full 1-D Haar transform into error-tree linear indexing.

    ``out[0]`` is the overall average; ``out[i]`` the detail of
    error-tree node ``i`` -- the dense counterpart of
    :func:`repro.synopses.wavelet.classic.classic_decompose`.
    """
    n = len(vector)
    if n & (n - 1) or n == 0:
        raise SynopsisError(f"transform length must be a power of two, got {n}")
    out = np.empty(n, dtype=np.float64)
    current = vector.astype(np.float64)
    while len(current) > 1:
        half = len(current) // 2
        left = current[0::2]
        right = current[1::2]
        out[half : 2 * half] = (right - left) / 2.0
        current = (left + right) / 2.0
    out[0] = current[0]
    return out


def _signed_overlap(index: int, levels: int, a: float, b: float) -> float:
    """Integral of basis ``phi_index`` over the fractional cell range
    ``[a, b)``: +1 on the right half of the support, -1 on the left
    (matching the 1-D detail convention); the average basis is 1
    everywhere."""
    start, end = support_interval(index, levels)
    if index == 0:
        return max(0.0, min(b, float(end)) - max(a, float(start)))
    middle = (start + end) / 2.0
    right = max(0.0, min(b, float(end)) - max(a, middle))
    left = max(0.0, min(b, middle) - max(a, float(start)))
    return right - left


class Wavelet2DSynopsis(Synopsis2D):
    """Top-B coefficients of the quantized 2-D Haar decomposition."""

    synopsis_type = Synopsis2DType.WAVELET

    def __init__(
        self,
        domains: tuple[Domain, Domain],
        budget: int,
        grid_levels: int,
        coefficients: dict[tuple[int, int], float],
        total_count: int,
    ) -> None:
        if len(coefficients) > budget:
            raise SynopsisError(
                f"{len(coefficients)} coefficients exceed budget {budget}"
            )
        super().__init__(domains, budget, total_count)
        self.grid_levels = grid_levels
        self.grid_size = 1 << grid_levels
        self.coefficients = dict(coefficients)

    @property
    def element_count(self) -> int:
        return len(self.coefficients)

    def _fractional_cells(self, axis: int, lo: int, hi: int) -> tuple[float, float]:
        domain = self.domains[axis]
        scale = self.grid_size / domain.length
        return (lo - domain.lo) * scale, (hi - domain.lo + 1) * scale

    def estimate(self, lo_x: int, hi_x: int, lo_y: int, hi_y: int) -> float:
        clipped = self._clip(lo_x, hi_x, lo_y, hi_y)
        if clipped is None:
            return 0.0
        lo_x, hi_x, lo_y, hi_y = clipped
        ax, bx = self._fractional_cells(0, lo_x, hi_x)
        ay, by = self._fractional_cells(1, lo_y, hi_y)
        weights_x: dict[int, float] = {}
        weights_y: dict[int, float] = {}
        total = 0.0
        for (i, j), value in self.coefficients.items():
            wx = weights_x.get(i)
            if wx is None:
                wx = _signed_overlap(i, self.grid_levels, ax, bx)
                weights_x[i] = wx
            if wx == 0.0:
                continue
            wy = weights_y.get(j)
            if wy is None:
                wy = _signed_overlap(j, self.grid_levels, ay, by)
                weights_y[j] = wy
            total += value * wx * wy
        return max(total, 0.0)

    def _merge(self, other: Synopsis2D) -> "Wavelet2DSynopsis":
        assert isinstance(other, Wavelet2DSynopsis)
        if other.grid_levels != self.grid_levels:
            raise SynopsisError("cannot merge wavelets on different grids")
        combined = dict(self.coefficients)
        for key, value in other.coefficients.items():
            merged = combined.get(key, 0.0) + value
            if merged == 0.0:
                combined.pop(key, None)
            else:
                combined[key] = merged
        thresholded = _threshold(combined, self.budget, self.grid_levels)
        return Wavelet2DSynopsis(
            self.domains,
            self.budget,
            self.grid_levels,
            thresholded,
            self.total_count + other.total_count,
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domains": [
                [self.domains[0].lo, self.domains[0].hi],
                [self.domains[1].lo, self.domains[1].hi],
            ],
            "budget": self.budget,
            "grid_levels": self.grid_levels,
            "total_count": self.total_count,
            "coefficients": [
                [i, j, value] for (i, j), value in sorted(self.coefficients.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Wavelet2DSynopsis":
        """Inverse of :meth:`to_payload`."""
        domains = (
            Domain(*payload["domains"][0]),
            Domain(*payload["domains"][1]),
        )
        return cls(
            domains,
            payload["budget"],
            payload["grid_levels"],
            {(int(i), int(j)): float(v) for i, j, v in payload["coefficients"]},
            payload["total_count"],
        )


def _weight(key: tuple[int, int], value: float, levels: int) -> float:
    level_sum = coefficient_level(key[0], levels) + coefficient_level(
        key[1], levels
    )
    return abs(value) * 2.0 ** (level_sum / 2.0)


def _threshold(
    coefficients: dict[tuple[int, int], float], budget: int, levels: int
) -> dict[tuple[int, int], float]:
    if len(coefficients) <= budget:
        return coefficients
    ranked = sorted(
        coefficients.items(),
        key=lambda item: _weight(item[0], item[1], levels),
        reverse=True,
    )
    return dict(ranked[:budget])


class Wavelet2DBuilder(Synopsis2DBuilder):
    """Accumulates the quantized grid, transforms at build time."""

    def __init__(
        self,
        domains: tuple[Domain, Domain],
        budget: int,
        grid_levels: int = DEFAULT_GRID_LEVELS,
    ) -> None:
        super().__init__(domains, budget)
        if grid_levels < 0:
            raise SynopsisError(f"grid_levels must be >= 0, got {grid_levels}")
        self.grid_levels = grid_levels
        size = 1 << grid_levels
        self._grid = np.zeros((size, size), dtype=np.float64)
        self._scale_x = size / domains[0].length
        self._scale_y = size / domains[1].length

    def _add(self, x: int, y: int) -> None:
        row = int((x - self.domains[0].lo) * self._scale_x)
        col = int((y - self.domains[1].lo) * self._scale_y)
        self._grid[row, col] += 1.0

    def _build(self) -> Wavelet2DSynopsis:
        # Standard decomposition: transform every row, then every column.
        transformed = np.apply_along_axis(haar_transform_dense, 1, self._grid)
        transformed = np.apply_along_axis(haar_transform_dense, 0, transformed)
        coefficients = {
            (int(i), int(j)): float(transformed[i, j])
            for i, j in zip(*np.nonzero(transformed))
        }
        thresholded = _threshold(coefficients, self.budget, self.grid_levels)
        return Wavelet2DSynopsis(
            self.domains,
            self.budget,
            self.grid_levels,
            thresholded,
            total_count=self._count,
        )
