"""Two-dimensional synopses (the paper's multidimensional future work).

Section 5: "we plan to extend the proposed statistics-collection
approach ... to multidimensional index types (e.g., B-Trees with
composite keys and R-Trees)", citing the multidimensional histogram
[49] and wavelet [48, 50] literature.  This subpackage provides that
extension for two-attribute composite keys: the builder consumes
``(x, y)`` pairs in the lexicographic order a composite-key B-tree's
bulkload stream delivers, and the synopsis answers *rectangle* queries
``lo_x <= x <= hi_x AND lo_y <= y <= hi_y`` -- the predicate shape
where the classic attribute-independence assumption (estimate each
dimension separately and multiply selectivities) breaks down on
correlated data.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, ClassVar

from repro.errors import MergeabilityError, SynopsisError
from repro.types import Domain

__all__ = ["Synopsis2DType", "Synopsis2D", "Synopsis2DBuilder"]


class Synopsis2DType(enum.Enum):
    """The implemented two-dimensional synopsis families."""

    GRID = "grid_2d"  # equi-width grid histogram [49]
    WAVELET = "wavelet_2d"  # standard (tensor) Haar decomposition [48]
    GROUND_TRUTH = "ground_truth_2d"  # exact oracle, diagnostics only

    @property
    def mergeable(self) -> bool:
        """Whether two synopses of this type can be combined."""
        return True  # all three have data-independent structure


class Synopsis2D(ABC):
    """An immutable summary of a stream of ``(x, y)`` value pairs."""

    synopsis_type: ClassVar[Synopsis2DType]

    def __init__(
        self,
        domains: tuple[Domain, Domain],
        budget: int,
        total_count: int,
    ) -> None:
        if budget < 1:
            raise SynopsisError(f"budget must be >= 1, got {budget}")
        if total_count < 0:
            raise SynopsisError(f"negative total_count {total_count}")
        self.domains = domains
        self.budget = budget
        self.total_count = total_count

    @property
    def mergeable(self) -> bool:
        """Whether this synopsis can merge with a compatible one."""
        return self.synopsis_type.mergeable

    @property
    @abstractmethod
    def element_count(self) -> int:
        """Budget elements actually used."""

    @abstractmethod
    def estimate(self, lo_x: int, hi_x: int, lo_y: int, hi_y: int) -> float:
        """Estimated pairs inside the inclusive rectangle; never negative."""

    def merge_with(self, other: "Synopsis2D") -> "Synopsis2D":
        """Combine two synopses over disjoint record sets."""
        if other.synopsis_type is not self.synopsis_type:
            raise MergeabilityError(
                f"cannot merge {self.synopsis_type.value} with "
                f"{other.synopsis_type.value}"
            )
        if other.domains != self.domains or other.budget != self.budget:
            raise MergeabilityError(
                "cannot merge 2-D synopses with different domains or budgets"
            )
        return self._merge(other)

    @abstractmethod
    def _merge(self, other: "Synopsis2D") -> "Synopsis2D":
        """Type-specific merge (structures are compatible by contract)."""

    @abstractmethod
    def to_payload(self) -> dict[str, Any]:
        """JSON-able representation for the network simulation."""

    def payload_bytes(self) -> int:
        """Approximate serialised size (16 bytes per element + header),
        matching the 1-D accounting so space comparisons are fair."""
        return 48 + 16 * self.element_count

    def _clip(
        self, lo_x: int, hi_x: int, lo_y: int, hi_y: int
    ) -> tuple[int, int, int, int] | None:
        x = self.domains[0].intersect(lo_x, hi_x)
        y = self.domains[1].intersect(lo_y, hi_y)
        if x is None or y is None:
            return None
        return (*x, *y)


class Synopsis2DBuilder(ABC):
    """Streaming builder over lexicographically sorted ``(x, y)`` pairs."""

    def __init__(self, domains: tuple[Domain, Domain], budget: int) -> None:
        if budget < 1:
            raise SynopsisError(f"budget must be >= 1, got {budget}")
        self.domains = domains
        self.budget = budget
        self._last_pair: tuple[int, int] | None = None
        self._count = 0
        self._built = False

    def add(self, x: int, y: int) -> None:
        """Observe one pair (non-decreasing lexicographic order)."""
        if self._built:
            raise SynopsisError("builder already finalised")
        x, y = int(x), int(y)
        if x not in self.domains[0] or y not in self.domains[1]:
            raise SynopsisError(f"pair ({x}, {y}) outside declared domains")
        if self._last_pair is not None and (x, y) < self._last_pair:
            raise SynopsisError(
                f"builder requires lexicographically sorted pairs: "
                f"({x}, {y}) after {self._last_pair}"
            )
        self._last_pair = (x, y)
        self._count += 1
        self._add(x, y)

    def build(self) -> Synopsis2D:
        """Finalise (single use)."""
        if self._built:
            raise SynopsisError("builder already finalised")
        self._built = True
        return self._build()

    @abstractmethod
    def _add(self, x: int, y: int) -> None:
        """Type-specific streaming step."""

    @abstractmethod
    def _build(self) -> Synopsis2D:
        """Type-specific finalisation."""
