"""Reservoir-sampling synopses (the paper's future work).

Section 5: "we would like to explore sampling-based statistics-
collection methods and assess their accuracy and runtime overhead in
comparison to precomputed synopses."  This module provides the natural
candidate: a classic Algorithm-R reservoir sample of the component's
values, with the estimate scaled up by ``N / sample_size``.

The paper's stated reservations are reflected honestly:

* the reservoir costs one stored value per element -- "high memory
  costs associated with maintaining samples" (Section 2) -- so a
  sample's element budget buys far less resolution than a histogram
  whose buckets each summarise many records;
* samples over disjoint record sets are not merged here (an unbiased
  merge needs weighted subsampling, i.e. fresh randomness at query
  time); the estimator falls back to per-component combination,
  which remains unbiased because each sample scales by its own count.

Sampling tolerates arbitrary input order, so like the GK sketch it can
summarise non-indexed attributes.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

import numpy as np

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.types import Domain

__all__ = ["ReservoirSample", "ReservoirSampleBuilder"]


class ReservoirSample(Synopsis):
    """A uniform sample of a component's values, with scale-up."""

    synopsis_type = SynopsisType.RESERVOIR_SAMPLE

    def __init__(
        self,
        domain: Domain,
        budget: int,
        sample: list[int],
        total_count: int,
    ) -> None:
        if len(sample) > budget:
            raise SynopsisError(
                f"sample of {len(sample)} exceeds budget {budget}"
            )
        if total_count < len(sample):
            raise SynopsisError("total_count smaller than the sample")
        super().__init__(domain, budget, total_count)
        self.sample = sorted(sample)

    @property
    def element_count(self) -> int:
        return len(self.sample)

    def estimate(self, lo: int, hi: int) -> float:
        """Horvitz-Thompson style scale-up of the in-sample count."""
        clipped = self.domain.intersect(lo, hi)
        if clipped is None or not self.sample:
            return 0.0
        lo, hi = clipped
        in_sample = bisect.bisect_right(self.sample, hi) - bisect.bisect_left(
            self.sample, lo
        )
        return in_sample * self.total_count / len(self.sample)

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "total_count": self.total_count,
            "sample": list(self.sample),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ReservoirSample":
        """Inverse of :meth:`to_payload`."""
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            list(payload["sample"]),
            payload["total_count"],
        )


class ReservoirSampleBuilder(SynopsisBuilder):
    """Algorithm R over the component's value stream.

    Deterministic: the reservoir's RNG is seeded per builder (``seed``),
    so repeated runs produce identical synopses -- a property every
    other builder in the framework shares and the experiment harness
    relies on.
    """

    requires_sorted_input = False

    def __init__(self, domain: Domain, budget: int, seed: int = 0) -> None:
        super().__init__(domain, budget)
        self._rng = np.random.default_rng(seed)
        self._reservoir: list[int] = []

    def _add(self, value: int) -> None:
        if len(self._reservoir) < self.budget:
            self._reservoir.append(value)
            return
        slot = int(self._rng.integers(0, self._count))
        if slot < self.budget:
            self._reservoir[slot] = value

    def _add_many(self, values: "Sequence[int]") -> None:
        """Batched reservoir step (Vitter's Algorithm R, unchanged).

        Exactness: sampling is RNG-sequence-sensitive, so this loop
        must stay sequential -- exactly one ``draw(0, self._count)``
        per value once the reservoir is full, in stream order, with
        ``_count`` advanced before each draw.  Because the per-record
        path, this loop, and the columnar pipeline (which feeds whole
        key columns here, numpy backend on or off) consume the same
        values in the same order, the RNG draw sequence -- and hence
        the reservoir -- is bit-identical across all of them.  No
        vectorised variant exists: it would reorder the draws.
        """
        reservoir = self._reservoir
        budget = self.budget
        draw = self._rng.integers
        for value in values:
            self._count += 1
            if len(reservoir) < budget:
                reservoir.append(value)
                continue
            slot = int(draw(0, self._count))
            if slot < budget:
                reservoir[slot] = value

    def _build(self) -> ReservoirSample:
        return ReservoirSample(
            self.domain, self.budget, self._reservoir, self._count
        )
