"""Construction and deserialisation dispatch for synopsis types."""

from __future__ import annotations

from typing import Any

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.synopses.equi_height import EquiHeightBuilder, EquiHeightHistogram
from repro.synopses.equi_width import EquiWidthBuilder, EquiWidthHistogram
from repro.synopses.gk import GKSketch, GKSketchBuilder
from repro.synopses.hll import HyperLogLogBuilder, HyperLogLogSynopsis
from repro.synopses.ground_truth import GroundTruthBuilder, GroundTruthSynopsis
from repro.synopses.maxdiff import MaxDiffBuilder, MaxDiffHistogram
from repro.synopses.sampling import ReservoirSample, ReservoirSampleBuilder
from repro.synopses.voptimal import VOptimalBuilder, VOptimalHistogram
from repro.synopses.wavelet.synopsis import WaveletBuilder, WaveletSynopsis
from repro.types import Domain

__all__ = ["create_builder", "synopsis_from_payload"]

_SYNOPSIS_CLASSES: dict[SynopsisType, type[Synopsis]] = {
    SynopsisType.EQUI_WIDTH: EquiWidthHistogram,
    SynopsisType.EQUI_HEIGHT: EquiHeightHistogram,
    SynopsisType.WAVELET: WaveletSynopsis,
    SynopsisType.GROUND_TRUTH: GroundTruthSynopsis,
    SynopsisType.V_OPTIMAL: VOptimalHistogram,
    SynopsisType.MAX_DIFF: MaxDiffHistogram,
    SynopsisType.GK_SKETCH: GKSketch,
    SynopsisType.RESERVOIR_SAMPLE: ReservoirSample,
    SynopsisType.HLL_SKETCH: HyperLogLogSynopsis,
}


def create_builder(
    synopsis_type: SynopsisType,
    domain: Domain,
    budget: int,
    expected_records: int,
) -> SynopsisBuilder:
    """Instantiate the streaming builder for ``synopsis_type``.

    ``expected_records`` is only consumed by equi-height histograms
    (their bucket-height invariant); other types ignore it.
    """
    if synopsis_type is SynopsisType.EQUI_WIDTH:
        return EquiWidthBuilder(domain, budget)
    if synopsis_type is SynopsisType.EQUI_HEIGHT:
        return EquiHeightBuilder(domain, budget, expected_records)
    if synopsis_type is SynopsisType.WAVELET:
        return WaveletBuilder(domain, budget)
    if synopsis_type is SynopsisType.GROUND_TRUTH:
        return GroundTruthBuilder(domain, budget)
    if synopsis_type is SynopsisType.V_OPTIMAL:
        return VOptimalBuilder(domain, budget)
    if synopsis_type is SynopsisType.MAX_DIFF:
        return MaxDiffBuilder(domain, budget)
    if synopsis_type is SynopsisType.GK_SKETCH:
        return GKSketchBuilder(domain, budget)
    if synopsis_type is SynopsisType.RESERVOIR_SAMPLE:
        return ReservoirSampleBuilder(domain, budget)
    if synopsis_type is SynopsisType.HLL_SKETCH:
        # The budget is the register count 2**p (one byte each).
        return HyperLogLogBuilder(domain, budget)
    raise SynopsisError(f"unknown synopsis type {synopsis_type!r}")


def synopsis_from_payload(payload: dict[str, Any]) -> Synopsis:
    """Rebuild a synopsis from its network payload."""
    try:
        synopsis_type = SynopsisType(payload["type"])
    except (KeyError, ValueError) as exc:
        raise SynopsisError(f"malformed synopsis payload: {exc}") from exc
    cls = _SYNOPSIS_CLASSES[synopsis_type]
    return cls.from_payload(payload)  # type: ignore[attr-defined]
