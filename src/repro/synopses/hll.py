"""HyperLogLog distinct-value sketches with Huffman-Bucket compression.

The paper's synopsis families answer *range cardinality* only; the
number-of-distinct-values (NDV) statistic that join-cardinality and
``DISTINCT`` planning need is the ROADMAP's "mergeable distinct-value
sketches" item.  This module implements it as a new synopsis family:

* :class:`HyperLogLogSynopsis` -- a dense HyperLogLog: ``m = 2**p``
  one-byte registers (``array('B')``), a seeded 64-bit hash, and the
  standard bias-corrected estimator with small-range (linear counting)
  and large-range corrections [Flajolet et al., AOFA 2007].  Register
  union (element-wise max) is *exact*: unlike histogram or wavelet
  merges it loses nothing, so the master's lazy merge path can fold
  per-component sketches without recomputation.
* :class:`HBSCodec` -- the Huffman-Bucket register coding (after
  Karppa's *Huffman-Bucket Sketch*, PAPERS.md): registers concentrate
  sharply around ``log2(n/m)``, so a canonical Huffman code over the
  observed register values compresses the dense array losslessly for
  the wire/persisted form.  ``decode(encode(x))`` is bit-identical to
  ``x`` by construction and by property test.

The family plugs into the standard synopsis protocol.  Two deliberate
deviations from the histogram families, both documented in
docs/SKETCHES.md:

* ``budget`` counts *registers* (one byte each), not 16-byte elements,
  and must be a power of two (``budget = 2**precision``);
  :meth:`payload_bytes` is overridden accordingly.
* :meth:`estimate` answers *distinct* values in a range (the NDV
  estimate scaled by the range's share of the domain, a uniformity
  assumption) -- the family's real API is :meth:`cardinality`, consumed
  by the estimator's ``estimate_ndv``.
"""

from __future__ import annotations

import heapq
import math
import struct
from array import array
from typing import Any, Sequence

from repro.errors import MergeabilityError, SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.types import Domain
from repro.util.npbackend import (
    INT64_TYPECODE,
    int64_view,
    numpy_backend_enabled,
)

__all__ = [
    "DEFAULT_HASH_SEED",
    "HBSCodec",
    "HyperLogLogSynopsis",
    "HyperLogLogBuilder",
    "hash64",
    "ndv_statistics_key",
]

_MASK64 = (1 << 64) - 1
_TWO64 = float(1 << 64)

DEFAULT_HASH_SEED = 0x9E3779B97F4A7C15
"""Default hash seed (the 64-bit golden-ratio constant)."""


def ndv_statistics_key(statistics_key: str) -> str:
    """Catalog key of the NDV sketch lane riding a statistics target."""
    return f"{statistics_key}#ndv"


def hash64(value: int, seed: int = DEFAULT_HASH_SEED) -> int:
    """Seeded 64-bit mix (splitmix64 finaliser) of an integer value.

    Deterministic across platforms and processes -- crash recovery
    re-derives sketches by rescanning components, and the rebuilt
    registers must be bit-identical to the pre-crash ones.
    """
    x = (int(value) + seed) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _alpha(m: int) -> float:
    """The bias-correction constant of the raw HLL estimator."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    # The asymptotic formula; also used below 16 registers, where the
    # sketch is degenerate anyway (supported only for the tiny-budget
    # contract tests).
    return 0.7213 / (1.0 + 1.079 / m)


class HBSCodec:
    """Lossless Huffman-Bucket coding of an HLL register array.

    Register values follow a sharply peaked (geometric-tailed)
    distribution, so a Huffman code built from the *actual* register
    histogram gets close to the empirical entropy -- typically 3-4x
    smaller than the dense byte array -- while staying trivially
    decodable.  The code is *canonical* (codewords assigned in
    (length, symbol) order), so encoding is a pure function of the
    register contents: identical registers always produce identical
    bytes, which the catalog's payload-equality dedup relies on.

    Wire format (big-endian):

    * uniform frame (0 or 1 distinct register values):
      ``B:0  I:register_count  B:value``
    * Huffman frame:
      ``B:1  I:register_count  B:symbol_count``
      then ``symbol_count`` pairs of ``B:value  B:code_length``,
      then the concatenated codewords, zero-padded to a byte boundary.
    """

    _HEADER = struct.Struct(">BIB")
    _UNIFORM = 0
    _HUFFMAN = 1

    @classmethod
    def encode(cls, registers: "array[int]") -> bytes:
        frequencies: dict[int, int] = {}
        for value in registers:
            frequencies[value] = frequencies.get(value, 0) + 1
        if len(frequencies) <= 1:
            value = registers[0] if len(registers) else 0
            return cls._HEADER.pack(cls._UNIFORM, len(registers), value)
        lengths = cls._code_lengths(frequencies)
        codes = cls._canonical_codes(lengths)
        out = bytearray(
            cls._HEADER.pack(cls._HUFFMAN, len(registers), len(lengths))
        )
        for symbol in sorted(lengths):
            out += struct.pack(">BB", symbol, lengths[symbol])
        buffer = 0
        pending = 0
        for value in registers:
            code, length = codes[value]
            buffer = (buffer << length) | code
            pending += length
            while pending >= 8:
                pending -= 8
                out.append((buffer >> pending) & 0xFF)
        if pending:
            out.append((buffer << (8 - pending)) & 0xFF)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "array[int]":
        try:
            frame, count, arg = cls._HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise SynopsisError(f"truncated HBS frame: {exc}") from exc
        offset = cls._HEADER.size
        if frame == cls._UNIFORM:
            return array("B", bytes([arg]) * count)
        if frame != cls._HUFFMAN:
            raise SynopsisError(f"unknown HBS frame type {frame}")
        lengths: dict[int, int] = {}
        for _ in range(arg):
            symbol, length = struct.unpack_from(">BB", data, offset)
            offset += 2
            lengths[symbol] = length
        codes = cls._canonical_codes(lengths)
        # (length, code) -> symbol, walked bit by bit below.
        table = {
            (length, code): symbol
            for symbol, (code, length) in codes.items()
        }
        registers = array("B", bytes(count))
        position = 0
        code = 0
        length = 0
        payload = memoryview(data)[offset:]
        for byte in payload:
            for shift in range(7, -1, -1):
                code = (code << 1) | ((byte >> shift) & 1)
                length += 1
                symbol = table.get((length, code))
                if symbol is not None:
                    registers[position] = symbol
                    position += 1
                    code = 0
                    length = 0
                    if position == count:
                        return registers
        raise SynopsisError(
            f"HBS frame exhausted after {position}/{count} registers"
        )

    @staticmethod
    def _code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
        """Huffman code lengths with deterministic tie-breaking.

        The heap orders by (frequency, smallest contained symbol); the
        resulting *lengths* feed the canonical assignment, so any
        residual tree ambiguity cannot reach the wire.
        """
        heap: list[tuple[int, int, list[int]]] = [
            (frequency, symbol, [symbol])
            for symbol, frequency in frequencies.items()
        ]
        heapq.heapify(heap)
        lengths = dict.fromkeys(frequencies, 0)
        while len(heap) > 1:
            freq_a, tie_a, symbols_a = heapq.heappop(heap)
            freq_b, tie_b, symbols_b = heapq.heappop(heap)
            for symbol in symbols_a + symbols_b:
                lengths[symbol] += 1
            heapq.heappush(
                heap,
                (freq_a + freq_b, min(tie_a, tie_b), symbols_a + symbols_b),
            )
        return lengths

    @staticmethod
    def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
        """Canonical codewords: assigned in (length, symbol) order."""
        code = 0
        previous_length = 0
        codes: dict[int, tuple[int, int]] = {}
        for symbol in sorted(lengths, key=lambda s: (lengths[s], s)):
            length = lengths[symbol]
            code <<= length - previous_length
            codes[symbol] = (code, length)
            code += 1
            previous_length = length
        return codes


def _check_register_budget(budget: int) -> int:
    """Validate a register-count budget; returns the precision ``p``."""
    if budget < 2 or budget & (budget - 1):
        raise SynopsisError(
            f"hll budget is the register count 2**p and must be a power "
            f"of two >= 2, got {budget}"
        )
    return budget.bit_length() - 1


class HyperLogLogSynopsis(Synopsis):
    """An immutable HyperLogLog sketch of one value stream's NDV."""

    synopsis_type = SynopsisType.HLL_SKETCH

    def __init__(
        self,
        domain: Domain,
        budget: int,
        registers: "array[int]",
        total_count: int,
        hash_seed: int = DEFAULT_HASH_SEED,
    ) -> None:
        precision = _check_register_budget(budget)
        if len(registers) != budget:
            raise SynopsisError(
                f"{len(registers)} registers do not match budget {budget}"
            )
        super().__init__(domain, budget, total_count)
        self.precision = precision
        self.hash_seed = hash_seed
        self.registers = registers
        self._encoded: bytes | None = None

    @property
    def element_count(self) -> int:
        return self.budget

    def register_bytes(self) -> int:
        """Dense (resident) register size: one byte per register."""
        return self.budget

    def encoded_bytes(self) -> int:
        """Size of the HBS-compressed wire form."""
        return len(self._encode())

    def payload_bytes(self) -> int:
        """Resident size: one byte per register plus the fixed header
        (catalog/cache accounting uses the dense form it holds)."""
        return 32 + self.budget

    def cardinality(self) -> float:
        """The bias-corrected NDV estimate over the observed stream."""
        m = self.budget
        harmonic = 0.0
        zeros = 0
        for register in self.registers:
            harmonic += 2.0 ** -register
            if register == 0:
                zeros += 1
        raw = _alpha(m) * m * m / harmonic
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)  # small-range linear counting
        if raw > _TWO64 / 30.0:
            return -_TWO64 * math.log1p(-raw / _TWO64)  # large-range
        return raw

    def estimate(self, lo: int, hi: int) -> float:
        """Distinct values expected in ``[lo, hi]`` under uniformity.

        The sketch has no positional information, so the range answer
        scales the NDV estimate by the range's share of the domain --
        an explicitly weaker contract than the histogram families'
        record counts (docs/SKETCHES.md).
        """
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        span = self.domain.hi - self.domain.lo + 1
        return self.cardinality() * ((hi - lo + 1) / span)

    def _merge(self, other: Synopsis) -> "HyperLogLogSynopsis":
        assert isinstance(other, HyperLogLogSynopsis)
        if other.hash_seed != self.hash_seed:
            raise MergeabilityError(
                "cannot union hll sketches built with different hash seeds"
            )
        merged = array(
            "B",
            map(max, self.registers, other.registers),
        )
        return HyperLogLogSynopsis(
            self.domain,
            self.budget,
            merged,
            self.total_count + other.total_count,
            self.hash_seed,
        )

    def _encode(self) -> bytes:
        # Registers are immutable once built, so the wire form is
        # memoised: to_payload runs once per network publish *and* per
        # catalog dedup comparison.
        if self._encoded is None:
            self._encoded = HBSCodec.encode(self.registers)
        return self._encoded

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "total_count": self.total_count,
            "seed": self.hash_seed,
            "hbs": self._encode().hex(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "HyperLogLogSynopsis":
        """Inverse of :meth:`to_payload` (decodes the HBS frame)."""
        registers = HBSCodec.decode(bytes.fromhex(payload["hbs"]))
        return cls(
            Domain(*payload["domain"]),
            payload["budget"],
            registers,
            payload["total_count"],
            payload["seed"],
        )


class HyperLogLogBuilder(SynopsisBuilder):
    """Streaming HLL construction; tolerates arbitrary input order."""

    requires_sorted_input = False

    def __init__(
        self,
        domain: Domain,
        budget: int,
        hash_seed: int = DEFAULT_HASH_SEED,
    ) -> None:
        precision = _check_register_budget(budget)
        super().__init__(domain, budget)
        self.precision = precision
        self.hash_seed = hash_seed
        self._registers = array("B", bytes(budget))
        self._value_bits = 64 - precision
        self._value_mask = (1 << self._value_bits) - 1

    def memory_bytes(self) -> int:
        """One byte per register plus a fixed header -- the dense
        array *is* the whole working set."""
        return 64 + self.budget

    def _observe_hash(self, hashed: int) -> None:
        index = hashed >> self._value_bits
        w = hashed & self._value_mask
        rank = self._value_bits - w.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def _add(self, value: int) -> None:
        self._observe_hash(hash64(value, self.hash_seed))

    def _add_many(self, values: Sequence[int]) -> None:
        """Batched register update (the columnar ingest lane).

        A typed ``array('q')`` chunk with the numpy backend enabled is
        hashed and ranked vectorised; otherwise a tight scalar loop
        runs.  Both paths perform the identical 64-bit integer
        arithmetic (numpy ``uint64`` wraps exactly like the masked
        Python ints) and registers update through an order-insensitive
        max, so every chunking and both backends are register-identical
        to per-record ``add`` -- the oracle property the test battery
        asserts.
        """
        if (
            numpy_backend_enabled()
            and isinstance(values, array)
            and values.typecode == INT64_TYPECODE
        ):
            view = int64_view(values)
            if view is not None:
                self._add_many_numpy(view)
                self._count += len(values)
                return
        seed = self.hash_seed
        registers = self._registers
        value_bits = self._value_bits
        value_mask = self._value_mask
        for value in values:
            x = (value + seed) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            x ^= x >> 31
            index = x >> value_bits
            w = x & value_mask
            rank = value_bits - w.bit_length() + 1
            if rank > registers[index]:
                registers[index] = rank
        self._count += len(values)

    def _add_many_numpy(self, view: Any) -> None:
        """Vectorised splitmix64 + rank over an ``int64`` view."""
        import numpy as np

        u64 = np.uint64
        x = view.astype(np.uint64)  # two's-complement wrap == & _MASK64
        x += u64(self.hash_seed & _MASK64)
        x = (x ^ (x >> u64(30))) * u64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> u64(27))) * u64(0x94D049BB133111EB)
        x ^= x >> u64(31)
        index = (x >> u64(self._value_bits)).astype(np.int64)
        w = x & u64(self._value_mask)
        # Exact bit_length via binary reduction (float log2 would round
        # wrong near 2**53); bit_length(0) == 0 gives the max rank.
        bits = np.zeros(len(w), dtype=np.uint8)
        for shift in (32, 16, 8, 4, 2, 1):
            high = w >> u64(shift)
            has_high = high > 0
            bits[has_high] += shift
            w = np.where(has_high, high, w)
        bits += (w > 0).astype(np.uint8)
        rank = (self._value_bits + 1 - bits).astype(np.uint8)
        registers = np.frombuffer(self._registers, dtype=np.uint8)
        np.maximum.at(registers, index, rank)

    def _build(self) -> HyperLogLogSynopsis:
        return HyperLogLogSynopsis(
            self.domain,
            self.budget,
            self._registers,
            self._count,
            self.hash_seed,
        )
