"""Equi-width histograms.

"The algorithm for creating an equi-width histogram is straightforward:
first we calculate the histogram invariant -- bucket width, depending
on the total bucket budget and domain size of the indexed field.  After
that buckets can be populated left-to-right as the records are received
from the sorted input stream." (Section 3.2)

Equi-width histograms are naturally mergeable: two histograms over the
same domain with the same budget have identical bucket borders, so a
merge is an element-wise sum of bucket counts (Section 3.5).
"""

from __future__ import annotations

from array import array
from typing import Any, Sequence

from repro.errors import SynopsisError
from repro.synopses.base import Synopsis, SynopsisBuilder, SynopsisType
from repro.types import Domain
from repro.util.npbackend import INT64_TYPECODE, bucket_counts, int64_view

__all__ = ["EquiWidthHistogram", "EquiWidthBuilder"]


def _bucket_width(domain: Domain, budget: int) -> int:
    """The histogram invariant: the fixed width of every bucket."""
    return -(-domain.length // budget)  # ceil division


class EquiWidthHistogram(Synopsis):
    """A histogram of fixed-width buckets covering the whole domain."""

    synopsis_type = SynopsisType.EQUI_WIDTH

    def __init__(
        self, domain: Domain, budget: int, counts: list[int]
    ) -> None:
        width = _bucket_width(domain, budget)
        expected_buckets = -(-domain.length // width)
        if len(counts) != expected_buckets:
            raise SynopsisError(
                f"expected {expected_buckets} buckets, got {len(counts)}"
            )
        super().__init__(domain, budget, total_count=sum(counts))
        self.width = width
        self.counts = counts

    @property
    def element_count(self) -> int:
        return len(self.counts)

    def bucket_range(self, index: int) -> tuple[int, int]:
        """Inclusive value range ``[lo, hi]`` covered by bucket ``index``
        (the last bucket may be clipped by the domain border)."""
        lo = self.domain.lo + index * self.width
        hi = min(lo + self.width - 1, self.domain.hi)
        return lo, hi

    def estimate(self, lo: int, hi: int) -> float:
        """Range estimate under the continuous-value assumption: a
        partially overlapped bucket contributes proportionally to the
        overlapped fraction of its width."""
        clipped = self.domain.intersect(lo, hi)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        first = (lo - self.domain.lo) // self.width
        last = (hi - self.domain.lo) // self.width
        total = 0.0
        for index in range(first, last + 1):
            bucket_lo, bucket_hi = self.bucket_range(index)
            overlap = min(hi, bucket_hi) - max(lo, bucket_lo) + 1
            bucket_len = bucket_hi - bucket_lo + 1
            total += self.counts[index] * (overlap / bucket_len)
        return max(total, 0.0)

    def _merge(self, other: Synopsis) -> "EquiWidthHistogram":
        assert isinstance(other, EquiWidthHistogram)
        merged = [a + b for a, b in zip(self.counts, other.counts)]
        return EquiWidthHistogram(self.domain, self.budget, merged)

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.synopsis_type.value,
            "domain": [self.domain.lo, self.domain.hi],
            "budget": self.budget,
            "counts": list(self.counts),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "EquiWidthHistogram":
        """Inverse of :meth:`to_payload`."""
        domain = Domain(*payload["domain"])
        return cls(domain, payload["budget"], list(payload["counts"]))


class EquiWidthBuilder(SynopsisBuilder):
    """Streams sorted values into fixed-width buckets, left to right."""

    def __init__(self, domain: Domain, budget: int) -> None:
        super().__init__(domain, budget)
        self._width = _bucket_width(domain, budget)
        num_buckets = -(-domain.length // self._width)
        self._counts = [0] * num_buckets

    def _add(self, value: int) -> None:
        self._counts[(value - self.domain.lo) // self._width] += 1

    def _add_many(self, values: Sequence[int]) -> None:
        """Batched bucket fill.

        Exactness: bucket assignment is pure integer arithmetic
        (``(value - lo) // width``) with no order dependence, so the
        scalar loop, the per-record path, and the vectorised
        ``bincount`` tally over a typed column (numpy backend on) all
        produce identical counts -- not merely statistically equal.
        """
        counts = self._counts
        lo = self.domain.lo
        width = self._width
        if isinstance(values, array) and values.typecode == INT64_TYPECODE:
            view = int64_view(values)
            if view is not None:
                for index, tally in enumerate(
                    bucket_counts(view, lo, width, len(counts))
                ):
                    counts[index] += tally
                self._count += len(values)
                return
        for value in values:
            counts[(value - lo) // width] += 1
        self._count += len(values)

    def _build(self) -> EquiWidthHistogram:
        return EquiWidthHistogram(self.domain, self.budget, self._counts)
