"""Equi-height (equi-depth) histograms.

"Building an equi-height histogram is done in a similar manner [to
equi-width], but with the exception that it is parameterized with the
total number of records in the input stream to calculate its invariant
-- bucket height." (Section 3.2)  The record count is known up front
for every LSM event: a flush knows its memtable size, a merge sums its
input components' counts, a bulkload gets the count from the sort
operator feeding it.

A bucket is stored as its right border plus the number of records that
fell into it.  Borders adapt to the data, which is why equi-height
histograms handle clustered real-world values (the paper's WorldCup
fields) far better than equi-width ones -- but the data-dependent
borders are also why two equi-height histograms cannot be merged
(Section 3.5).
"""

from __future__ import annotations

from repro.errors import SynopsisError
from repro.synopses.base import SynopsisBuilder, SynopsisType
from repro.synopses.bucket import BucketHistogram
from repro.types import Domain

__all__ = ["EquiHeightHistogram", "EquiHeightBuilder"]


class EquiHeightHistogram(BucketHistogram):
    """A histogram whose buckets each hold roughly the same count."""

    synopsis_type = SynopsisType.EQUI_HEIGHT


class EquiHeightBuilder(SynopsisBuilder):
    """Streams sorted values into buckets closed at the height invariant.

    Args:
        domain: Value domain of the summarised field.
        budget: Bucket budget.
        expected_records: Total number of records in the stream, known
            up front from the LSM event (see module docstring).  The
            bucket height is ``ceil(expected_records / budget)``.
    """

    def __init__(self, domain: Domain, budget: int, expected_records: int) -> None:
        super().__init__(domain, budget)
        if expected_records < 0:
            raise SynopsisError(
                f"negative expected_records {expected_records}"
            )
        self.expected_records = expected_records
        self._height = max(1, -(-expected_records // budget))
        self._borders: list[int] = []
        self._counts: list[int] = []
        self._current_count = 0
        self._first_value: int | None = None
        self._pending_border: int | None = None

    def _add(self, value: int) -> None:
        if self._first_value is None:
            self._first_value = value
        # A bucket whose height invariant was reached closes only once
        # the value changes, so a run of duplicates never straddles a
        # border (borders stay strictly increasing).
        if self._pending_border is not None and value != self._pending_border:
            self._borders.append(self._pending_border)
            self._counts.append(self._current_count)
            self._current_count = 0
            self._pending_border = None
        self._current_count += 1
        # Reaching the invariant marks the bucket for closing -- unless
        # the budget is nearly exhausted (the stream may hold more
        # records than expected, e.g. when a merge's expected count was
        # only an upper bound), in which case the final bucket absorbs
        # the tail.
        if (
            self._current_count >= self._height
            and len(self._borders) < self.budget - 1
        ):
            self._pending_border = value

    def _build(self) -> EquiHeightHistogram:
        if self._current_count > 0:
            assert self._last_value is not None
            self._borders.append(self._last_value)
            self._counts.append(self._current_count)
        first_left = (
            self._first_value - 1
            if self._first_value is not None
            else self.domain.lo - 1
        )
        return EquiHeightHistogram(
            self.domain, self.budget, first_left, self._borders, self._counts
        )
