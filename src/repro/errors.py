"""Exception hierarchy for the repro library.

Every exception raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class DomainError(ReproError):
    """A value fell outside its declared fixed-width integer domain."""


class StorageError(ReproError):
    """The simulated storage layer was used incorrectly."""


class ComponentStateError(StorageError):
    """An LSM component was used in an illegal lifecycle state."""


class BulkloadError(StorageError):
    """A bulkload stream violated its contract (e.g. unsorted input)."""


class WALError(StorageError):
    """The write-ahead log was used incorrectly or failed verification."""


class ManifestError(StorageError):
    """The component manifest is corrupt or was used incorrectly."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state."""


class SchedulerError(StorageError):
    """A background maintenance task failed or the scheduler was misused."""


class SynopsisError(ReproError):
    """A statistical synopsis was built or queried incorrectly."""


class MergeabilityError(SynopsisError):
    """A merge was attempted on synopses that cannot be combined."""


class CatalogError(ReproError):
    """The statistics catalog was queried for missing/invalid entries."""


class ClusterError(ReproError):
    """A simulated cluster operation failed."""


class FeedError(ClusterError):
    """A data feed misbehaved: missing source, a malformed record the
    caller asked to be strict about, or a consumer that exhausted its
    reconnect budget."""


class FeedDisconnectedError(FeedError):
    """The feed's transport dropped mid-stream (an injected or genuine
    disconnect).  The consumer reconnects with backoff and resumes from
    its in-memory position; only a crash falls back to the durable
    cursor."""


class OverloadedError(ClusterError):
    """The estimate service shed this request (admission queue full
    after the retry budget, or the caller's wait timed out).  The typed
    rejection of graceful degradation: callers back off or accept a
    degraded (possibly-stale) answer instead of queueing unboundedly."""


class NetworkUnavailableError(ClusterError):
    """A send was lost in flight or refused by an unavailable node.

    This is the simulated stand-in for a send timeout: the transport
    could not confirm delivery, so the sender must assume the worst and
    retry (the message may or may not have arrived -- at-least-once
    semantics).  Raised only when a :class:`~repro.cluster.faults.FaultPlan`
    is installed; the perfect default wire never raises it.
    """


class QueryError(ReproError):
    """A query or predicate was malformed."""


class BenchmarkError(ReproError):
    """A perf-suite report or baseline was malformed or incomparable."""
