"""The optional numpy backend behind the columnar data path.

The columnar chunk pipeline (docs/DATAPATH.md) stores typed integer
columns as stdlib ``array('q')`` buffers.  That representation is the
*only* storage format -- the numpy backend never changes what a chunk
holds, it changes how consumers *compute* over it: when the flag is on,
hot validation passes (domain min/max, sortedness) and the equi-width
bucket fill wrap the column's buffer in a zero-copy ``int64`` view via
``numpy.frombuffer`` and run vectorised.  Because both backends read
the identical bytes and perform the identical integer arithmetic, the
results are bit-identical by construction -- the oracle property tests
assert it anyway.

The flag is process-wide, defaulting to the ``REPRO_COLUMNAR_NUMPY``
environment variable (CI runs the tier-1 suite once with it set).  It
is a *compute* switch, so flipping it mid-stream is safe: chunks built
under one setting are consumed correctly under the other.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Any, Iterator

try:  # numpy is a declared dependency, but stay importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

__all__ = [
    "INT64_TYPECODE",
    "numpy_available",
    "numpy_backend_enabled",
    "set_numpy_backend",
    "numpy_backend",
    "int64_view",
    "bucket_counts",
]

INT64_TYPECODE = "q"
"""The stdlib ``array`` typecode of every typed integer column."""

_ENV_FLAG = "REPRO_COLUMNAR_NUMPY"

_enabled = _np is not None and os.environ.get(_ENV_FLAG, "0") not in ("", "0")


def numpy_available() -> bool:
    """Whether numpy importing succeeded in this process."""
    return _np is not None


def numpy_backend_enabled() -> bool:
    """Whether columnar consumers should compute through numpy views."""
    return _enabled


def set_numpy_backend(enabled: bool) -> None:
    """Switch the process-wide columnar compute backend.

    Raises ``RuntimeError`` when enabling without numpy installed.
    """
    global _enabled
    if enabled and _np is None:  # pragma: no cover - numpy ships baked in
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    _enabled = bool(enabled)


@contextmanager
def numpy_backend(enabled: bool) -> Iterator[None]:
    """Scoped backend switch (the oracle tests run both settings)."""
    previous = _enabled
    set_numpy_backend(enabled)
    try:
        yield
    finally:
        set_numpy_backend(previous)


def int64_view(column: "array[int]") -> Any | None:
    """A zero-copy ``int64`` ndarray over a typed column's buffer, or
    ``None`` when the numpy backend is off.

    The view shares the column's memory (``numpy.frombuffer`` of the
    array's buffer), so it must be treated as read-only -- columns are
    immutable once a chunk is built (docs/DATAPATH.md ownership rules).
    """
    if not _enabled or _np is None:
        return None
    return _np.frombuffer(column, dtype=_np.int64)


def bucket_counts(
    view: Any, lo: int, width: int, num_buckets: int
) -> list[int]:
    """Histogram an ``int64`` view into equi-width buckets.

    Computes ``(value - lo) // width`` per element -- the identical
    integer arithmetic as the scalar loop (numpy's ``//`` matches
    Python floor division for int64) -- and tallies with ``bincount``.
    Returns plain Python ints.
    """
    assert _np is not None
    return _np.bincount(
        (view - lo) // width, minlength=num_buckets
    ).tolist()
