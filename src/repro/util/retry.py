"""The one seeded retry/backoff policy shared by every reconnecting
component.

Extracted from ``cluster/node.py`` so the statistics sink's delivery
retries and the feed consumers' reconnect loops draw from a single
implementation: exponential backoff with proportional jitter, a
cumulative per-operation time budget, and an injectable ``sleep`` hook
so tests and the chaos harnesses keep backoff purely simulated.
Jitter is sampled from a caller-supplied :class:`random.Random`, so a
seeded component stays bit-reproducible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff behaviour of a retrying component.

    One attempt plus up to ``max_attempts - 1`` retries, with
    exponential backoff (``base_backoff * 2^retry``, capped at
    ``max_backoff``) and proportional jitter.  ``timeout`` is the
    per-operation budget: once the cumulative backoff would exceed it,
    the caller gives up for now (the statistics sink parks the message
    in its outbox; a feed consumer surfaces a
    :class:`~repro.errors.FeedError`).

    ``sleep`` is the wall-clock hook; tests and the chaos harnesses
    install a no-op to keep backoff purely simulated.
    """

    max_attempts: int = 4
    base_backoff: float = 0.001
    max_backoff: float = 0.05
    jitter: float = 0.5
    timeout: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ValueError(
                "need 0 <= base_backoff <= max_backoff, got "
                f"{self.base_backoff}/{self.max_backoff}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_for(self, retry: int, rng: random.Random) -> float:
        """The jittered pause before retry number ``retry`` (0-based)."""
        base = min(self.base_backoff * (2.0 ** retry), self.max_backoff)
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    @classmethod
    def immediate(cls, max_attempts: int = 4) -> "RetryPolicy":
        """A policy that retries without sleeping (tests, chaos runs)."""
        return cls(
            max_attempts=max_attempts,
            base_backoff=0.0,
            max_backoff=0.0,
            jitter=0.0,
            sleep=lambda _s: None,
        )
