"""An AVL-tree based sorted map.

The LSM in-memory component (Appendix A of the paper: records within a
component are kept in "a order-preserving tree data structure to allow
efficient lookup") needs a mutable ordered dictionary with in-order
iteration and range scans.  The standard library offers none, so we
implement a classic AVL tree.  Keys may be any totally ordered values;
in this library they are integers or ``(secondary, primary)`` tuples.

Operations:

* ``put(key, value)`` / ``get(key)`` / ``remove(key)`` -- O(log n)
* ``items()`` / ``range_items(lo, hi)`` -- in-order iteration
* ``min_key()`` / ``max_key()`` -- O(log n)
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["SortedMap"]


class _Node:
    """A single AVL node (slots keep memtables compact)."""

    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class SortedMap:
    """A mutable ordered mapping backed by an AVL tree."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def get(self, key: Any, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default`` when absent."""
        node = self._find(key)
        return node.value if node is not None else default

    def put(self, key: Any, value: Any) -> None:
        """Insert ``key`` or replace its value when already present."""
        self._root, inserted = self._insert(self._root, key, value)
        if inserted:
            self._size += 1

    def remove(self, key: Any) -> bool:
        """Delete ``key``; returns whether it was present."""
        self._root, removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        return removed

    def clear(self) -> None:
        """Drop all entries."""
        self._root = None
        self._size = 0

    def min_key(self) -> Any:
        """Smallest key; raises ``KeyError`` on an empty map."""
        if self._root is None:
            raise KeyError("min_key() on empty SortedMap")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Any:
        """Largest key; raises ``KeyError`` on an empty map."""
        if self._root is None:
            raise KeyError("max_key() on empty SortedMap")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in ascending key order (iterative in-order walk)."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        """All keys in ascending order."""
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """All values in ascending key order."""
        for _key, value in self.items():
            yield value

    def range_items(self, lo: Any = None, hi: Any = None) -> Iterator[tuple[Any, Any]]:
        """Entries with ``lo <= key <= hi`` in ascending key order.

        ``None`` bounds are open (no constraint on that side).
        """
        stack: list[_Node] = []
        node = self._root
        # Descend pruning subtrees entirely below ``lo``.
        while node is not None:
            if lo is not None and node.key < lo:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            if hi is not None and node.key > hi:
                return
            yield node.key, node.value
            node = node.right
            while node is not None:
                if lo is not None and node.key < lo:
                    node = node.right
                else:
                    stack.append(node)
                    node = node.left

    # -- internal recursive helpers -------------------------------------

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def _insert(
        self, node: Optional[_Node], key: Any, value: Any
    ) -> tuple[_Node, bool]:
        if node is None:
            return _Node(key, value), True
        if key < node.key:
            node.left, inserted = self._insert(node.left, key, value)
        elif node.key < key:
            node.right, inserted = self._insert(node.right, key, value)
        else:
            node.value = value
            return node, False
        return _rebalance(node), inserted

    def _delete(
        self, node: Optional[_Node], key: Any
    ) -> tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key)
        elif node.key < key:
            node.right, removed = self._delete(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            # Two children: splice in the in-order successor.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _removed = self._delete(node.right, successor.key)
        return _rebalance(node), removed
