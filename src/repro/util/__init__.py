"""Internal utility data structures shared across the library."""

from repro.util.bounded_heap import BoundedMinHeap
from repro.util.sortedmap import SortedMap

__all__ = ["SortedMap", "BoundedMinHeap"]
