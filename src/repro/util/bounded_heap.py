"""A bounded min-heap keeping the top-B items by weight.

The streaming wavelet decomposition (Algorithm 1 of the paper) retains
only the ``B`` most significant (largest normalized absolute value)
coefficients while the transform runs.  A min-heap of size ``B`` supports
this in O(log B) per insertion: when full, a new item is admitted only if
it outweighs the current minimum, which it then evicts.

Ties are broken deterministically by insertion order (earlier wins), so
repeated runs over the same stream produce identical synopses.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["BoundedMinHeap"]


class BoundedMinHeap:
    """Keep the ``capacity`` heaviest items seen so far."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        # Entries are (weight, -insertion_index, item); the negated
        # index makes comparison total and puts the *latest* of several
        # tied-weight items at the heap root, so it is evicted first and
        # earlier insertions win ties (the documented contract).
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, weight: float, item: Any) -> Any | None:
        """Offer ``item`` with ``weight``; return the evicted item, if any.

        Returns ``None`` when nothing was evicted, the evicted item when
        the heap was full and a lighter item got pushed out, or ``item``
        itself when it was too light to be admitted.
        """
        entry = (weight, -self._counter, item)
        self._counter += 1
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, entry)
            return None
        if entry[0] <= self._heap[0][0]:
            return item
        evicted = heapq.heappushpop(self._heap, entry)
        return evicted[2]

    def min_weight(self) -> float:
        """Weight of the lightest retained item."""
        if not self._heap:
            raise IndexError("min_weight() on empty heap")
        return self._heap[0][0]

    def items(self) -> Iterator[Any]:
        """Retained items in no particular order."""
        for _weight, _index, item in self._heap:
            yield item

    def weighted_items(self) -> Iterator[tuple[float, Any]]:
        """Retained ``(weight, item)`` pairs in no particular order."""
        for weight, _index, item in self._heap:
            yield weight, item
