"""Statistics driving the query optimizer (paper Section 3.6).

Builds a dataset, lets the statistics framework populate the catalog
during ingestion, then shows the two optimizer decisions the paper
motivates: skipping low-selectivity index probes, and choosing between
an indexed nested-loop join and a hash join.  The chosen access path is
executed both ways to verify the estimate-driven pick is the cheaper
one in actual (simulated) I/O.

Run:  python examples/optimizer_integration.py
"""

from repro import (
    Dataset,
    Domain,
    IndexSpec,
    SimulatedDisk,
    StatisticsConfig,
    StatisticsManager,
    SynopsisType,
)
from repro.query import (
    AccessMethod,
    QueryExecutor,
    QueryOptimizer,
    RangePredicate,
)

VALUE_DOMAIN = Domain(0, 9_999)
NUM_RECORDS = 30_000


def weighted_io(io) -> float:
    """Random reads cost ~10x sequential ones on the simulated disk."""
    return io.random_reads * 10 + io.sequential_reads


def main() -> None:
    dataset = Dataset(
        "orders",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[IndexSpec("amount_idx", "amount", VALUE_DOMAIN)],
    )
    stats = StatisticsManager(StatisticsConfig(SynopsisType.EQUI_HEIGHT, 256))
    stats.attach(dataset)
    print(f"Bulkloading {NUM_RECORDS} orders...")
    dataset.bulkload(
        {"id": pk, "amount": (pk * 7919) % 10_000} for pk in range(NUM_RECORDS)
    )

    optimizer = QueryOptimizer(stats.estimator)
    executor = QueryExecutor(dataset)

    print("\n-- Decision 1: index probe vs. full scan --")
    for label, predicate in [
        ("needle  ", RangePredicate("amount", 5_000, 5_001)),
        ("haystack", RangePredicate("amount", 0, 9_999)),
    ]:
        plan = optimizer.plan_range_query(dataset, predicate, NUM_RECORDS)
        probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
        actual_winner = (
            AccessMethod.INDEX_PROBE
            if weighted_io(probe.io) <= weighted_io(scan.io)
            else AccessMethod.FULL_SCAN
        )
        print(
            f"{label}: estimate={plan.estimated_cardinality:8.1f} "
            f"(true {probe.cardinality:6d})  planned={plan.method.value:11s} "
            f"actual-cheaper={actual_winner.value:11s} "
            f"{'OK' if plan.method is actual_winner else 'MISS'}"
        )

    print("\n-- Decision 2: indexed nested-loop vs. hash join --")
    for label, predicate in [
        ("selective outer", RangePredicate("amount", 7_777, 7_778)),
        ("wide outer     ", RangePredicate("amount", 0, 9_999)),
    ]:
        plan = optimizer.plan_join(
            dataset, predicate, outer_total=NUM_RECORDS, inner_total=1_000_000
        )
        print(
            f"{label}: outer estimate={plan.estimated_outer_cardinality:8.1f}  "
            f"INLJ cost={plan.inlj_cost:10.0f}  hash cost={plan.hash_join_cost:8.0f}  "
            f"-> {plan.method.value}"
        )


if __name__ == "__main__":
    main()
