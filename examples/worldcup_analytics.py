"""Real-world-shaped data: synopsis accuracy on WorldCup-like logs.

Indexes six fields of a synthetic WorldCup'98-style web log and
contrasts the three synopsis families, reproducing Figure 9's findings
in miniature: equi-width histograms collapse on clustered fields
(Timestamp/ClientID/ObjectID), equi-height histograms and wavelets
adapt, and spiky categorical fields are hard for everyone.

Run:  python examples/worldcup_analytics.py
"""

from repro.core import (
    CardinalityEstimator,
    LocalStatisticsSink,
    MergedSynopsisCache,
    StatisticsCatalog,
    StatisticsCollector,
    StatisticsConfig,
)
from repro.eval.truth import FrequencyIndex
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads import WORLDCUP_FIELDS, WorldCupGenerator

NUM_RECORDS = 15_000
BUDGET = 64


def main() -> None:
    dataset = Dataset(
        "worldcup",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[
            IndexSpec(f"{field.name}_idx", field.name, field.domain)
            for field in WORLDCUP_FIELDS
        ],
        memtable_capacity=1_500,
        merge_policy=ConstantMergePolicy(5),
    )

    # One collector per synopsis family, all piggybacking on the same
    # ingestion -- the framework's superpower.
    slots = {}
    for synopsis_type in (
        SynopsisType.EQUI_WIDTH,
        SynopsisType.EQUI_HEIGHT,
        SynopsisType.WAVELET,
    ):
        catalog = StatisticsCatalog()
        cache = MergedSynopsisCache()
        collector = StatisticsCollector(
            StatisticsConfig(synopsis_type, BUDGET),
            LocalStatisticsSink(catalog, cache),
        )
        for field in WORLDCUP_FIELDS:
            collector.register_index(
                dataset.secondary_tree(f"{field.name}_idx").name, field.domain
            )
        dataset.event_bus.subscribe(collector)
        slots[synopsis_type] = CardinalityEstimator(catalog, cache)

    print(f"Ingesting {NUM_RECORDS} log records (Constant merge policy, 5 components)...")
    documents = list(WorldCupGenerator(NUM_RECORDS, seed=4).generate())
    for document in documents:
        dataset.insert(document)
    dataset.flush()

    print(f"\nPer-field relative error of a 1%-of-range query (budget {BUDGET}):")
    header = f"{'field':>10} {'true':>7}" + "".join(
        f" {t.value:>12}" for t in slots
    )
    print(header)
    for field in WORLDCUP_FIELDS:
        truth = FrequencyIndex(doc[field.name] for doc in documents)
        assert truth.min_value is not None and truth.max_value is not None
        length = max(1, (truth.max_value - truth.min_value) // 100)
        mid = (truth.min_value + truth.max_value) // 2
        lo, hi = mid, min(mid + length, field.domain.hi)
        true_count = truth.count(lo, hi)
        cells = []
        index_name = dataset.secondary_tree(f"{field.name}_idx").name
        for estimator in slots.values():
            estimate = estimator.estimate(index_name, lo, hi)
            cells.append(f"{estimate:>12.1f}")
        print(f"{field.name:>10} {true_count:>7}" + " ".join([""] + cells))

    print(
        "\nNote how the equi-width column degenerates on the clustered "
        "int32 fields\n(timestamp/client_id/object_id): every record falls "
        "into one domain-wide bucket."
    )


if __name__ == "__main__":
    main()
