"""Continuous ingestion on a cluster: the paper's Twitter-Firehose setup.

Spins up the simulated 4+1-node shared-nothing cluster, streams
tweet-like records through a push (socket) feed and then a changeable
feed with updates and deletes, and shows the master's catalog staying
in sync with the data -- no statistics job ever runs; estimates are
served by the cluster controller without touching a storage node.

Run:  python examples/twitter_firehose.py
"""

from repro.cluster import (
    ChangeableFeed,
    DatasetFeedAdapter,
    FeedOperation,
    FeedRecord,
    LSMCluster,
    SocketFeed,
)
from repro.core import StatisticsConfig
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    TweetGenerator,
    generate_distribution,
)

VALUE_DOMAIN = Domain(0, 2**16 - 1)
NUM_TWEETS = 12_000


def show_estimates(cluster: LSMCluster, title: str) -> None:
    print(f"\n{title}")
    print(f"{'value range':>18}  {'true':>6}  {'estimate':>9}")
    for lo, hi in [(0, VALUE_DOMAIN.hi), (1_000, 2_999), (30_000, 30_499)]:
        true_count = cluster.count_secondary_range("tweets", "value_idx", lo, hi)
        estimate = cluster.estimate("tweets", "value_idx", lo, hi)
        print(f"[{lo:>7}, {hi:>7}]  {true_count:>6}  {estimate:>9.1f}")


def main() -> None:
    cluster = LSMCluster(
        num_nodes=4,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=256),
    )
    cluster.create_dataset(
        "tweets",
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=1_000,
        merge_policy_factory=lambda: ConstantMergePolicy(5),
    )
    adapter = DatasetFeedAdapter(cluster, "tweets")

    distribution = generate_distribution(
        DistributionSpec(
            SpreadDistribution.ZIPF_RANDOM,
            FrequencyDistribution.ZIPF,
            VALUE_DOMAIN,
            num_values=800,
            total_records=NUM_TWEETS,
            seed=7,
        )
    )
    tweets = list(TweetGenerator(distribution, seed=7).generate())

    print(f"Streaming {NUM_TWEETS} tweets through a socket feed...")
    feed = SocketFeed(iter(tweets))
    feed.run(adapter)
    adapter.flush()
    print(
        f"Feed bytes: {feed.bytes_received:,}; synopsis traffic to master: "
        f"{cluster.network.stats.bytes_sent:,} bytes in "
        f"{cluster.master.stats_messages_received} messages"
    )
    print(f"Live components: {cluster.component_count('tweets', 'value_idx')}")
    show_estimates(cluster, "After the firehose (insert-only):")

    print("\nApplying a changeable feed: 15% updates + 15% deletes...")
    changes = [
        FeedRecord(
            FeedOperation.UPDATE,
            {**tweets[pk], "value": (tweets[pk]["value"] + 17_000) % VALUE_DOMAIN.length},
        )
        for pk in range(0, NUM_TWEETS, 7)
    ]
    changes += [
        FeedRecord(FeedOperation.DELETE, tweets[pk])
        for pk in range(1, NUM_TWEETS, 7)
    ]
    changeable = ChangeableFeed(changes, stage_size=2_000)
    counts = changeable.run(adapter)
    print(
        f"Applied {counts[FeedOperation.UPDATE]} updates and "
        f"{counts[FeedOperation.DELETE]} deletes in "
        f"{changeable.stages_completed + 1} stages"
    )
    show_estimates(cluster, "After churn (anti-matter synopses subtract):")

    result = cluster.estimate_detailed("tweets", "value_idx", 0, VALUE_DOMAIN.hi)
    print(
        f"\nEstimation overhead on the master: "
        f"{result.overhead_seconds * 1e3:.3f} ms "
        f"({'cache hit' if result.from_cache else f'{result.synopses_consulted} synopses combined'})"
    )


if __name__ == "__main__":
    main()
