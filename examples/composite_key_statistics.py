"""Composite-key (2-D) statistics: the paper's future work, running.

Indexes an (x, y) attribute pair with a composite-key B-tree, attaches
the 2-D statistics framework, and shows why it exists: on correlated
attributes, rectangle estimates from per-attribute statistics under the
independence assumption are wildly wrong, while the 2-D grid synopsis
-- maintained through the same LSM lifecycle events as everything else
-- tracks the truth.

Run:  python examples/composite_key_statistics.py
"""

from repro.core import (
    SpatialStatisticsConfig,
    SpatialStatisticsManager,
    StatisticsConfig,
    StatisticsManager,
)
from repro.lsm.dataset import CompositeIndexSpec, Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.synopses.multidim import Synopsis2DType
from repro.types import Domain

X_DOMAIN = Domain(0, 999)   # e.g. order amount
Y_DOMAIN = Domain(0, 999)   # e.g. shipping cost (correlated with amount)
NUM_RECORDS = 10_000


def main() -> None:
    dataset = Dataset(
        "orders",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[
            IndexSpec("amount_idx", "amount", X_DOMAIN),
            IndexSpec("shipping_idx", "shipping", Y_DOMAIN),
            CompositeIndexSpec(
                "amount_shipping_idx",
                ("amount", "shipping"),
                (X_DOMAIN, Y_DOMAIN),
            ),
        ],
        memtable_capacity=2_000,
    )
    # 1-D statistics for the marginals, 2-D for the composite index --
    # all piggybacking on the same flushes.
    marginals = StatisticsManager(StatisticsConfig(SynopsisType.EQUI_WIDTH, 256))
    marginals.attach(dataset)
    spatial = SpatialStatisticsManager(
        SpatialStatisticsConfig(Synopsis2DType.GRID, budget=1024)
    )
    spatial.attach(dataset)

    print(f"Ingesting {NUM_RECORDS} orders (shipping ~ amount / 2 + noise)...")
    for pk in range(NUM_RECORDS):
        amount = (pk * 17) % 1000
        shipping = min(999, amount // 2 + (pk % 50))
        dataset.insert({"id": pk, "amount": amount, "shipping": shipping})
    dataset.flush()

    print(f"\n{'rectangle':>38} {'true':>6} {'indep.':>8} {'2-D grid':>9}")
    rectangles = [
        ("cheap orders, cheap shipping", (0, 199, 0, 149)),
        ("cheap orders, PRICY shipping", (0, 199, 500, 999)),
        ("expensive orders, matching band", (800, 999, 400, 549)),
    ]
    for label, (lo_x, hi_x, lo_y, hi_y) in rectangles:
        true = dataset.count_composite_range(
            "amount_shipping_idx", lo_x, hi_x, lo_y, hi_y
        )
        sel_x = marginals.estimate(dataset, "amount_idx", lo_x, hi_x)
        sel_y = marginals.estimate(dataset, "shipping_idx", lo_y, hi_y)
        independence = sel_x * sel_y / NUM_RECORDS
        grid = spatial.estimate(
            dataset, "amount_shipping_idx", lo_x, hi_x, lo_y, hi_y
        )
        print(f"{label:>38} {true:>6} {independence:>8.1f} {grid:>9.1f}")

    print(
        "\nThe independence assumption invents matches in the anti-"
        "correlated rectangle\nand destroys them in the correlated band; "
        "the 2-D synopsis tracks both."
    )


if __name__ == "__main__":
    main()
