"""Quickstart: LSM-piggybacked statistics on a single dataset.

Creates a dataset with a secondary B-tree index, attaches the
statistics framework, ingests records through the LSM flush lifecycle,
and compares cardinality estimates against true counts -- including
after deletes, which the anti-matter synopsis twin absorbs.

Run:  python examples/quickstart.py
"""

from repro import (
    Dataset,
    Domain,
    IndexSpec,
    SimulatedDisk,
    StatisticsConfig,
    StatisticsManager,
    SynopsisType,
)

VALUE_DOMAIN = Domain(0, 9_999)


def main() -> None:
    dataset = Dataset(
        "sensor_readings",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**31 - 1),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=2_000,  # flush every 2k records
    )

    # One line of wiring: statistics ride along on every flush/merge.
    stats = StatisticsManager(StatisticsConfig(SynopsisType.WAVELET, budget=256))
    stats.attach(dataset)

    print("Ingesting 10,000 readings through the LSM lifecycle...")
    for pk in range(10_000):
        dataset.insert({"id": pk, "value": (pk * 37) % 10_000})
    dataset.flush()

    print(f"Disk components: {len(dataset.secondary_tree('value_idx').components)}")
    print(f"Catalogued synopses: {stats.catalog.entry_count()}\n")

    print(f"{'range':>16}  {'true':>6}  {'estimate':>9}")
    for lo, hi in [(0, 9_999), (1_000, 1_999), (5_000, 5_127), (42, 42)]:
        true_count = dataset.count_secondary_range("value_idx", lo, hi)
        estimate = stats.estimate(dataset, "value_idx", lo, hi)
        print(f"[{lo:>6}, {hi:>6}]  {true_count:>6}  {estimate:>9.1f}")

    print("\nDeleting every reading with an even id...")
    for pk in range(0, 10_000, 2):
        dataset.delete(pk)
    dataset.flush()  # the tombstones land in an anti-matter synopsis

    print(f"{'range':>16}  {'true':>6}  {'estimate':>9}   (after deletes)")
    for lo, hi in [(0, 9_999), (1_000, 1_999)]:
        true_count = dataset.count_secondary_range("value_idx", lo, hi)
        estimate = stats.estimate(dataset, "value_idx", lo, hi)
        print(f"[{lo:>6}, {hi:>6}]  {true_count:>6}  {estimate:>9.1f}")

    io = dataset.primary.disk.stats
    print(
        f"\nSimulated I/O: {io.pages_written} pages written, "
        f"{io.pages_read} read -- statistics added none of it."
    )


if __name__ == "__main__":
    main()
